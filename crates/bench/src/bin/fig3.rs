//! Regenerates Figure 3: the MOSBENCH summary — per-core throughput at
//! 48 cores relative to one core, stock vs PK, for all seven
//! applications.

use pk_workloads::summary;

fn main() {
    pk_bench::header(
        "Figure 3",
        "MOSBENCH results summary. 1.0 indicates perfect scalability \
         (48 cores yielding a speedup of 48). Each pair of bars compares \
         an application before and after the kernel and application \
         modifications.",
    );
    println!("{:<12} {:>8} {:>8}", "app", "Stock", "PK");
    let bars = summary::figure3(48);
    for b in &bars {
        let bar = |v: f64| "#".repeat((v * 40.0).round() as usize);
        println!("{:<12} {:>8.2} {:>8.2}", b.app, b.stock, b.pk);
        println!("{:<12} {}", "", bar(b.stock));
        println!("{:<12} {}", "", bar(b.pk));
    }
    println!(
        "\nMost applications scale significantly better with the \
         modifications; all fall short of perfect scalability."
    );
}
