//! Artifact entry point: regenerates every figure and table in one run
//! by invoking the per-figure binaries' logic in sequence.
//!
//! `cargo run --release -p pk-bench --bin all_figures > figures.txt`

use std::process::Command;

fn main() {
    let bins = [
        "machine_check",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "validate_sim",
        "ablate_threshold",
        "ablate_dlookup",
        "ablate_accept",
        "ablate_fixes",
        "ablate_flowsteer",
        "udpmicro",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("running {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll figures and ablations regenerated.");
}
