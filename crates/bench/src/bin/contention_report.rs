//! The paper's diagnostic method as a tool: for any workload × kernel
//! config × core count, print the top-N contended resources with their
//! share of total cycles — re-deriving Figure 1's bottleneck column
//! from the model solve and the discrete-event measurement instead of
//! a hardcoded table.
//!
//! Usage:
//!
//! ```text
//! contention_report [WORKLOAD] [stock|pk] [CORES] [--top N] [--all] [--no-des] [--functional]
//!                   [--topology SxC]
//! ```
//!
//! `--topology 16x12` swaps in a scaled machine (16 sockets × 12
//! cores), so `CORES` may range up to 192 — the §7 "past 48 cores"
//! extrapolation. Oversubscribing the topology is a config error.
//!
//! Defaults: Exim on the stock kernel at 48 cores, top 10 — the
//! configuration behind Figure 4's collapse, whose report must name
//! the vfsmount-table lock first.

use pk_bench::{contention_report_des_on, contention_report_on, header};
use pk_percpu::CoreId;
use pk_sim::MachineSpec;
use pk_workloads::exim::EximDriver;
use pk_workloads::{roster, KernelChoice};

/// Deterministic seed and per-core op count for the DES cross-check.
const DES_OPS_PER_CORE: u64 = 2_000;
const DES_SEED: u64 = 42;

fn usage() -> ! {
    eprintln!(
        "usage: contention_report [WORKLOAD] [stock|pk] [CORES] [--top N] [--all] [--no-des] [--functional] [--topology SxC]"
    );
    eprintln!("workloads: {}", roster::NAMES.join(", "));
    std::process::exit(2);
}

struct Args {
    workload: String,
    choice: KernelChoice,
    cores: usize,
    top: usize,
    all: bool,
    des: bool,
    functional: bool,
    machine: MachineSpec,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "exim".to_string(),
        choice: KernelChoice::Stock,
        cores: 48,
        top: 10,
        all: false,
        des: true,
        functional: false,
        machine: MachineSpec::paper(),
    };
    let mut positional = 0;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--top" => {
                args.top = raw
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--all" => args.all = true,
            "--topology" => {
                let spec = raw.next().unwrap_or_else(|| usage());
                args.machine = MachineSpec::parse_topology(&spec).unwrap_or_else(|e| {
                    eprintln!("contention_report: {e}");
                    std::process::exit(2)
                });
            }
            "--no-des" => args.des = false,
            "--functional" => args.functional = true,
            "--help" | "-h" => usage(),
            _ => {
                match positional {
                    0 => args.workload = a,
                    1 => {
                        args.choice = match a.to_ascii_lowercase().as_str() {
                            "stock" => KernelChoice::Stock,
                            "pk" => KernelChoice::Pk,
                            _ => usage(),
                        }
                    }
                    2 => args.cores = a.parse().unwrap_or_else(|_| usage()),
                    _ => usage(),
                }
                positional += 1;
            }
        }
    }
    args
}

fn report_one(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    top: usize,
    des: bool,
    machine: MachineSpec,
) {
    let Some(analytic) = contention_report_on(workload, choice, cores, machine) else {
        eprintln!("unknown workload: {workload}");
        usage();
    };
    println!("{}", analytic.render(top));
    if let Some(bottleneck) = analytic.top() {
        println!(
            "bottleneck: {} ({:.1}% of cycles)\n",
            bottleneck.name,
            bottleneck.share * 100.0
        );
    }
    if des {
        let measured =
            contention_report_des_on(workload, choice, cores, DES_OPS_PER_CORE, DES_SEED, machine)
                .expect("same roster as the analytic report");
        println!("cross-check — discrete-event measurement (seed {DES_SEED}):");
        println!("{}", measured.render(top));
    }
}

/// Runs the functional Exim driver and prints the kernel's own
/// measured contention counters: the same resource names as the model
/// stations, but from real lock acquisitions.
fn functional_exim(choice: KernelChoice, cores: usize) {
    header(
        "functional kernel measurement",
        "EximDriver on the userspace kernel; counters from Kernel::obs_snapshot()",
    );
    let driver = EximDriver::new(choice, cores).expect("boot exim");
    for core in 0..cores {
        for user in 0..2 {
            driver
                .run_connection(CoreId(core), core * 2 + user)
                .expect("delivery succeeds");
        }
    }
    println!(
        "delivered {} messages on {} cores\n",
        driver.delivered(),
        cores
    );
    print!("{}", driver.kernel().obs_snapshot());
}

fn main() {
    let args = parse_args();
    if let Err(e) = args.machine.validate_cores(args.cores) {
        eprintln!("contention_report: {e}");
        std::process::exit(2);
    }
    if args.all {
        for workload in roster::NAMES {
            for choice in [KernelChoice::Stock, KernelChoice::Pk] {
                header(
                    &format!("{workload} / {}", choice.label()),
                    "cycle attribution from the MVA solve",
                );
                report_one(
                    workload,
                    choice,
                    args.cores,
                    args.top,
                    args.des,
                    args.machine,
                );
            }
        }
    } else {
        report_one(
            &args.workload,
            args.choice,
            args.cores,
            args.top,
            args.des,
            args.machine,
        );
        if args.functional && args.workload.eq_ignore_ascii_case("exim") {
            functional_exim(args.choice, args.cores);
        }
    }
}
