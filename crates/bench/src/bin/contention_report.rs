//! The paper's diagnostic method as a tool: for any workload × kernel
//! config × core count, print the top-N contended resources with their
//! share of total cycles — re-deriving Figure 1's bottleneck column
//! from the model solve and the discrete-event measurement instead of
//! a hardcoded table.
//!
//! Usage:
//!
//! ```text
//! contention_report [WORKLOAD] [stock|coarse|pk|adaptive] [CORES] [--top N] [--all] [--no-des]
//!                   [--functional] [--topology SxC]
//! ```
//!
//! The `adaptive` axis first converges the [`pk_adapt::AdaptController`]
//! over the workload's model (printing its decision log), then reports
//! on whatever fix subset the controller promoted.
//!
//! `--topology 16x12` swaps in a scaled machine (16 sockets × 12
//! cores), so `CORES` may range up to 192 — the §7 "past 48 cores"
//! extrapolation. Oversubscribing the topology is a config error.
//!
//! Defaults: Exim on the stock kernel at 48 cores, top 10 — the
//! configuration behind Figure 4's collapse, whose report must name
//! the vfsmount-table lock first.

use pk_adapt::{render_log, AdaptController, AdaptPolicy};
use pk_bench::{
    contention_report_config_des_on, contention_report_config_on, contention_report_des_on,
    contention_report_on, header,
};
use pk_kernel::KernelConfig;
use pk_percpu::CoreId;
use pk_sim::MachineSpec;
use pk_workloads::exim::EximDriver;
use pk_workloads::{roster, KernelChoice};

/// Which kernel axis a report runs on: one of the three fixed
/// personalities (stock, coarse-clustered, PK), or the adaptive one
/// (converge the controller first, then report on whatever config it
/// landed on).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    Fixed(KernelChoice),
    Adaptive,
}

impl Axis {
    fn label(self) -> &'static str {
        match self {
            Self::Fixed(c) => c.label(),
            Self::Adaptive => "adaptive",
        }
    }
}

/// Deterministic seed and per-core op count for the DES cross-check.
const DES_OPS_PER_CORE: u64 = 2_000;
const DES_SEED: u64 = 42;

fn usage() -> ! {
    eprintln!(
        "usage: contention_report [WORKLOAD] [stock|coarse|pk|adaptive] [CORES] [--top N] [--all] [--no-des] [--functional] [--topology SxC]"
    );
    eprintln!("workloads: {}", roster::NAMES.join(", "));
    std::process::exit(2);
}

struct Args {
    workload: String,
    axis: Axis,
    cores: usize,
    top: usize,
    all: bool,
    des: bool,
    functional: bool,
    machine: MachineSpec,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "exim".to_string(),
        axis: Axis::Fixed(KernelChoice::Stock),
        cores: 48,
        top: 10,
        all: false,
        des: true,
        functional: false,
        machine: MachineSpec::paper(),
    };
    let mut positional = 0;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--top" => {
                args.top = raw
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--all" => args.all = true,
            "--topology" => {
                let spec = raw.next().unwrap_or_else(|| usage());
                args.machine = MachineSpec::parse_topology(&spec).unwrap_or_else(|e| {
                    eprintln!("contention_report: {e}");
                    std::process::exit(2)
                });
            }
            "--no-des" => args.des = false,
            "--functional" => args.functional = true,
            "--help" | "-h" => usage(),
            _ => {
                match positional {
                    0 => args.workload = a,
                    1 => {
                        args.axis = match a.to_ascii_lowercase().as_str() {
                            "stock" => Axis::Fixed(KernelChoice::Stock),
                            "coarse" => Axis::Fixed(KernelChoice::Coarse),
                            "pk" => Axis::Fixed(KernelChoice::Pk),
                            "adaptive" => Axis::Adaptive,
                            _ => usage(),
                        }
                    }
                    2 => args.cores = a.parse().unwrap_or_else(|_| usage()),
                    _ => usage(),
                }
                positional += 1;
            }
        }
    }
    args
}

fn report_one(
    workload: &str,
    axis: Axis,
    cores: usize,
    top: usize,
    des: bool,
    machine: MachineSpec,
) {
    let (analytic, config) = match axis {
        Axis::Fixed(choice) => (contention_report_on(workload, choice, cores, machine), None),
        Axis::Adaptive => {
            let Some(config) = converge_adaptive(workload, cores, machine) else {
                eprintln!("unknown workload: {workload}");
                usage();
            };
            (
                contention_report_config_on(workload, &config, cores, machine),
                Some(config),
            )
        }
    };
    let Some(analytic) = analytic else {
        eprintln!("unknown workload: {workload}");
        usage();
    };
    println!("{}", analytic.render(top));
    if let Some(bottleneck) = analytic.top() {
        println!(
            "bottleneck: {} ({:.1}% of cycles)\n",
            bottleneck.name,
            bottleneck.share * 100.0
        );
    }
    if des {
        let measured = match (axis, &config) {
            (Axis::Fixed(choice), _) => contention_report_des_on(
                workload,
                choice,
                cores,
                DES_OPS_PER_CORE,
                DES_SEED,
                machine,
            ),
            (Axis::Adaptive, Some(config)) => contention_report_config_des_on(
                workload,
                config,
                cores,
                DES_OPS_PER_CORE,
                DES_SEED,
                machine,
            ),
            (Axis::Adaptive, None) => unreachable!("adaptive axis always carries its config"),
        }
        .expect("same roster as the analytic report");
        println!("cross-check — discrete-event measurement (seed {DES_SEED}):");
        println!("{}", measured.render(top));
    }
}

/// Converges the adaptive controller for `workload` and prints its
/// decision log; returns the post-adaptation config. `None` for
/// unknown workloads.
fn converge_adaptive(workload: &str, cores: usize, machine: MachineSpec) -> Option<KernelConfig> {
    // Probe the name before moving it into the build closure.
    roster::model_with_config(workload, &KernelConfig::adaptive(cores), machine)?;
    let name = workload.to_string();
    let build = move |cfg: &KernelConfig| {
        roster::model_with_config(&name, cfg, machine)
            .expect("probed above")
            .network(cores)
    };
    let out = AdaptController::new(
        KernelConfig::adaptive(cores),
        AdaptPolicy::default(),
        DES_SEED,
    )
    .converge_des(build, cores);
    println!(
        "adaptive controller (seed {DES_SEED}): {} epochs, converged={}, \
         {} promoted, max direction changes {}",
        out.epochs,
        out.converged,
        out.config.enabled_count(),
        out.max_direction_changes()
    );
    print!("{}", render_log(&out.decisions));
    println!();
    Some(out.config)
}

/// Runs the functional Exim driver and prints the kernel's own
/// measured contention counters: the same resource names as the model
/// stations, but from real lock acquisitions.
fn functional_exim(choice: KernelChoice, cores: usize) {
    header(
        "functional kernel measurement",
        "EximDriver on the userspace kernel; counters from Kernel::obs_snapshot()",
    );
    let driver = EximDriver::new(choice, cores).expect("boot exim");
    for core in 0..cores {
        for user in 0..2 {
            driver
                .run_connection(CoreId(core), core * 2 + user)
                .expect("delivery succeeds");
        }
    }
    println!(
        "delivered {} messages on {} cores\n",
        driver.delivered(),
        cores
    );
    print!("{}", driver.kernel().obs_snapshot());
}

fn main() {
    let args = parse_args();
    if let Err(e) = args.machine.validate_cores(args.cores) {
        eprintln!("contention_report: {e}");
        std::process::exit(2);
    }
    if args.all {
        for workload in roster::NAMES {
            for axis in [
                Axis::Fixed(KernelChoice::Stock),
                Axis::Fixed(KernelChoice::Coarse),
                Axis::Fixed(KernelChoice::Pk),
                Axis::Adaptive,
            ] {
                header(
                    &format!("{workload} / {}", axis.label()),
                    "cycle attribution from the MVA solve",
                );
                report_one(workload, axis, args.cores, args.top, args.des, args.machine);
            }
        }
    } else {
        report_one(
            &args.workload,
            args.axis,
            args.cores,
            args.top,
            args.des,
            args.machine,
        );
        if args.functional && args.workload.eq_ignore_ascii_case("exim") {
            // The functional driver runs a booted kernel, so the
            // adaptive axis boots the zero-fix adaptive personality.
            let choice = match args.axis {
                Axis::Fixed(c) => c,
                Axis::Adaptive => KernelChoice::Stock,
            };
            functional_exim(choice, args.cores);
        }
    }
}
