//! Regenerates Figure 7: PostgreSQL read-only workload.

use pk_workloads::postgres::{self, PgVariant};

fn main() {
    pk_bench::header(
        "Figure 7",
        "PostgreSQL read-only workload throughput (queries/sec/core) and \
         runtime breakdown, 1-48 cores.",
    );
    let series: Vec<(String, Vec<pk_sim::SweepPoint>)> =
        [PgVariant::Stock, PgVariant::StockModPg, PgVariant::PkModPg]
            .into_iter()
            .map(|v| (v.label().to_string(), postgres::figure(v, true)))
            .collect();
    pk_bench::print_throughput("queries/sec/core", 1.0, &series);
    pk_bench::print_cpu_breakdown("Stock + mod PG", "usec/query", 1.0, &series[1].1);
    pk_bench::print_cpu_breakdown("PK + mod PG", "usec/query", 1.0, &series[2].1);
    println!();
    for (label, sweep) in &series {
        pk_bench::print_ratio(label, sweep);
    }
}
