//! Prints the simulated machine's parameters next to the paper's
//! published numbers (section 5.1) so the substitution is auditable.

use pk_sim::{DramModel, L3Model, MachineSpec, NicModel};

fn main() {
    pk_bench::header(
        "Machine parameters (section 5.1)",
        "Every constant the simulator uses, traced to the paper.",
    );
    let m = MachineSpec::paper();
    println!(
        "sockets x cores/socket:   {} x {} = {} cores",
        m.sockets,
        m.cores_per_socket,
        m.cores()
    );
    println!("clock:                    {:.1} GHz", m.clock_hz / 1e9);
    println!(
        "L1 / L2 / L3 latency:     {} / {} / {} cycles",
        m.l1_cycles, m.l2_cycles, m.l3_cycles
    );
    println!(
        "DRAM local / far:         {} / {} cycles",
        m.dram_local_cycles, m.dram_far_cycles
    );
    println!(
        "coherence miss estimate:  {} cycles",
        m.coherence_miss_cycles
    );
    println!(
        "usable L3 per socket:     {} MB (6 MB - 1 MB probe filter)",
        m.l3_bytes_per_socket >> 20
    );
    println!(
        "DRAM peak bandwidth:      {:.1} GB/s",
        m.dram_peak_bytes_per_sec / 1e9
    );
    println!(
        "NIC wire rate:            {:.0} Gbit/s",
        m.nic_wire_bits_per_sec / 1e9
    );
    let nic = NicModel::new(m);
    println!("NIC pps, 1 queue:         {:.1} Mpps", nic.max_pps(1) / 1e6);
    println!(
        "NIC pps, 48 queues:       {:.1} Mpps",
        nic.max_pps(48) / 1e6
    );
    let dram = DramModel::new(m);
    println!(
        "DRAM-bound ops at 1 KB:   {:.1} Mops/s",
        dram.max_ops_per_sec(1024.0) / 1e6
    );
    let l3 = L3Model::new(m);
    println!(
        "L3 miss fraction at 2x capacity working set: {:.2}",
        l3.miss_fraction((m.l3_bytes_per_socket * 2) as f64)
    );
}
