//! Roster-wide lockdep harness.
//!
//! Drives all seven MOSBENCH workloads — functional drivers where they
//! exist, plus the discrete-event models perturbed by
//! `sim.lock_holder_preempt` — under both kernel configs with the
//! pk-lockdep validator observing every lock acquisition. The validator
//! state is global and accumulates across runs, so after the roster
//! completes, [`pk_lockdep::edges`] holds the union lock-order graph
//! and [`pk_lockdep::violations`] every discipline breach.
//!
//! Single-core drivers are wrapped in [`pk_lockdep::ActingCore`] so the
//! per-core discipline checks are live; the internally-threaded drivers
//! (gmake, pedsort, metis) declare no acting core and exercise only the
//! lock-order and epoch rules.

use pk_fault::{FaultPlane, FaultSchedule};
use pk_kernel::Kernel;
use pk_lockdep::ActingCore;
use pk_percpu::CoreId;
use pk_sim::des;
use pk_workloads::apache::ApacheDriver;
use pk_workloads::exim::EximDriver;
use pk_workloads::gmake_exec::{BuildGraph, ParallelMake};
use pk_workloads::memcached::MemcachedDriver;
use pk_workloads::metis::MetisDriver;
use pk_workloads::pedsort_indexer::Indexer;
use pk_workloads::postgres::{PgVariant, PostgresDriver};
use pk_workloads::{metis, roster, KernelChoice};
use std::sync::Arc;

/// Simulated operations per core for the DES leg.
const DES_OPS_PER_CORE: u64 = 1_000;

/// One workload × config outcome under the validator.
#[derive(Debug, Clone)]
pub struct LockdepRow {
    /// Workload name from the roster.
    pub workload: &'static str,
    /// Kernel config label (`stock` / `PK`).
    pub config: &'static str,
    /// Operations the functional driver completed (0 = DES-only).
    pub functional_ops: u64,
    /// Schedule-perturbation faults injected into the DES leg.
    pub des_faults: u64,
    /// Lock acquisitions observed by the validator so far (cumulative).
    pub acquisitions: u64,
    /// Violations recorded so far (cumulative; a growing number pins
    /// the offending row).
    pub violations: usize,
}

fn variant_of(choice: KernelChoice) -> PgVariant {
    match choice {
        KernelChoice::Stock | KernelChoice::Coarse => PgVariant::Stock,
        KernelChoice::Pk => PgVariant::PkModPg,
    }
}

fn metis_variant(choice: KernelChoice) -> metis::MetisVariant {
    match choice {
        KernelChoice::Stock | KernelChoice::Coarse => metis::MetisVariant::StockSmallPages,
        KernelChoice::Pk => metis::MetisVariant::PkSuperPages,
    }
}

/// Runs the functional driver for `name` (if any) with per-core work
/// wrapped in [`ActingCore`] declarations. Returns ops completed.
fn run_functional(name: &str, choice: KernelChoice, cores: usize) -> u64 {
    match name {
        "exim" => {
            let d = EximDriver::new(choice, cores).expect("boot exim");
            for conn in 0..cores * 3 {
                let core = conn % cores;
                let _ac = ActingCore::enter(core);
                let _ = d.run_connection(CoreId(core), conn);
            }
            d.delivered()
        }
        "memcached" => {
            let d = MemcachedDriver::new(choice, cores);
            for round in 0..cores as u32 * 3 {
                let core = round as usize % cores;
                let _ac = ActingCore::enter(core);
                d.client_batch(round, core);
            }
            loop {
                let mut progress = false;
                for core in 0..cores {
                    let _ac = ActingCore::enter(core);
                    if d.server_poll(core) > 0 {
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
            d.served()
        }
        "apache" => {
            let d = ApacheDriver::new(choice, cores);
            for i in 0..cores as u32 * 8 {
                d.client_connect(0x0a00_0000 + i);
            }
            loop {
                let mut progress = false;
                for core in 0..cores {
                    let _ac = ActingCore::enter(core);
                    if d.serve_one(core).is_some() {
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
            d.served()
        }
        "postgres" => {
            let d = PostgresDriver::new(variant_of(choice), cores, 256).expect("boot postgres");
            for i in 0..cores as u64 * 32 {
                let core = (i as usize) % cores;
                let _ac = ActingCore::enter(core);
                let _ = d.query(core, i % 256, i % 4 == 0);
            }
            d.queries()
        }
        "gmake" => {
            let k = Arc::new(Kernel::new(choice.config(cores)));
            let objects = 12;
            k.vfs().mkdir_p("/src", CoreId(0)).expect("mkdir /src");
            for i in 0..objects {
                k.vfs()
                    .write_file(
                        &format!("/src/f{i}.c"),
                        format!("source {i}").as_bytes(),
                        CoreId(0),
                    )
                    .expect("write source");
            }
            let report = ParallelMake::new(cores * 2)
                .build(&k, &BuildGraph::kernel_build(objects))
                .expect("gmake build");
            report.processes
        }
        "pedsort" => {
            // Both pedsort variants share the functional indexer; the
            // threads/processes split only matters to the DES model.
            let k = Arc::new(Kernel::new(choice.config(cores)));
            k.vfs().mkdir_p("/corpus", CoreId(0)).expect("mkdir corpus");
            for i in 0..8 {
                k.vfs()
                    .write_file(
                        &format!("/corpus/doc{i}"),
                        format!(
                            "alpha beta gamma delta doc{i} token{} token{}",
                            i * 7,
                            i * 13
                        )
                        .as_bytes(),
                        CoreId(0),
                    )
                    .expect("write corpus");
            }
            let stats = Indexer::new(Arc::clone(&k))
                .run("/corpus", "/out", cores.min(4))
                .expect("indexer run");
            stats.distinct_terms as u64
        }
        "metis" => {
            let d = MetisDriver::new(metis_variant(choice), cores);
            let docs: Vec<String> = (0..16)
                .map(|i| format!("word{} word{} shared common doc{i}", i % 5, i % 11))
                .collect();
            d.run_job(&docs, cores.min(4)).expect("metis job") as u64
        }
        _ => 0,
    }
}

/// DES leg: simulates the workload's queueing model with lock-holder
/// preemption armed from `seed`, so the validator also sees the
/// schedules the simulator perturbs. Returns faults injected.
fn run_des(name: &str, choice: KernelChoice, cores: usize, seed: u64) -> u64 {
    let Some(model) = roster::model(name, choice) else {
        return 0;
    };
    let net = model.network(cores);
    let plane = FaultPlane::with_seed(seed);
    plane.set("sim.lock_holder_preempt", FaultSchedule::EveryNth(211));
    plane.enable();
    let _ = des::simulate_with_faults(&net, cores, DES_OPS_PER_CORE, seed, &plane);
    plane.injected_total()
}

/// Drives the whole roster × {stock, PK} under the validator.
pub fn run_roster(seed: u64, cores: usize) -> Vec<LockdepRow> {
    let mut rows = Vec::new();
    for name in roster::NAMES {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let functional_ops = run_functional(name, choice, cores);
            let des_faults = run_des(name, choice, cores, seed);
            rows.push(LockdepRow {
                workload: name,
                config: choice.label(),
                functional_ops,
                des_faults,
                acquisitions: pk_lockdep::acquisition_count(),
                violations: pk_lockdep::violation_count(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_runs_clean_under_the_validator() {
        let rows = run_roster(42, 4);
        assert_eq!(rows.len(), roster::NAMES.len() * 2);
        for r in &rows {
            assert!(
                r.functional_ops > 0,
                "{} ({}) did no functional work",
                r.workload,
                r.config
            );
        }
        // PK models hold locks so briefly that EveryNth(211) may never
        // fire for an individual row; the roster as a whole must still
        // have exercised perturbed schedules.
        let total_faults: u64 = rows.iter().map(|r| r.des_faults).sum();
        assert!(total_faults > 0, "DES leg injected no faults at all");
        // The roster itself must be violation-free; negative tests
        // construct their violations in their own processes.
        assert_eq!(
            pk_lockdep::violations(),
            vec![],
            "roster produced lockdep violations"
        );
        if pk_lockdep::enabled() {
            assert!(pk_lockdep::acquisition_count() > 0);
            assert!(!pk_lockdep::edges().is_empty(), "no lock-order edges seen");
        }
    }
}
