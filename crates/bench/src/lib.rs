//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures, printing the same rows/series the paper plots. The helpers
//! here render core sweeps as aligned text tables so the binaries stay
//! one-screen small.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use pk_sim::SweepPoint;

/// Prints a figure header.
pub fn header(title: &str, caption: &str) {
    println!("\n=== {title} ===");
    println!("{caption}\n");
}

/// Prints one or more labelled sweeps as a throughput-per-core table,
/// in the units given (e.g. "msgs/sec/core").
pub fn print_throughput(unit: &str, scale: f64, series: &[(String, Vec<SweepPoint>)]) {
    print!("{:>6}", "cores");
    for (label, _) in series {
        print!("  {label:>18}");
    }
    println!("    ({unit})");
    let n = series[0].1.len();
    for i in 0..n {
        print!("{:>6}", series[0].1[i].cores);
        for (_, sweep) in series {
            let p = &sweep[i];
            let capped = if p.hw_capped { "*" } else { " " };
            print!("  {:>17.1}{capped}", p.per_core_per_sec * scale);
        }
        println!();
    }
    println!("  (*: bound by a hardware ceiling — NIC or DRAM)");
}

/// Prints the CPU-time breakdown (user/system per operation) for one
/// sweep, in the units given (e.g. "µsec/message").
pub fn print_cpu_breakdown(label: &str, unit: &str, scale: f64, sweep: &[SweepPoint]) {
    println!("\n{label} CPU time ({unit}):");
    println!("{:>6}  {:>12}  {:>12}  {:>24}", "cores", "user", "system", "bottleneck");
    for p in sweep {
        println!(
            "{:>6}  {:>12.2}  {:>12.2}  {:>24}",
            p.cores,
            p.user_usec * scale,
            p.system_usec * scale,
            p.bottleneck
        );
    }
}

/// Prints the scalability summary line the tests assert on: per-core
/// throughput at max cores relative to one core.
pub fn print_ratio(label: &str, sweep: &[SweepPoint]) {
    let first = sweep.first().expect("non-empty sweep");
    let last = sweep.last().expect("non-empty sweep");
    println!(
        "{label}: per-core throughput at {} cores = {:.2}x of 1 core",
        last.cores,
        last.per_core_per_sec / first.per_core_per_sec
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_sim::{CoreSweep, MachineSpec, Network, Station, WorkloadModel};

    struct Flat;

    impl WorkloadModel for Flat {
        fn name(&self) -> String {
            "flat".into()
        }

        fn machine(&self) -> MachineSpec {
            MachineSpec::paper()
        }

        fn network(&self, _cores: usize) -> Network {
            let mut n = Network::new();
            n.push(Station::delay("user", 1000.0, false));
            n
        }
    }

    #[test]
    fn printers_do_not_panic() {
        let sweep = CoreSweep::run(&Flat);
        header("Figure X", "caption");
        print_throughput("ops/sec/core", 1.0, &[("flat".to_string(), sweep.clone())]);
        print_cpu_breakdown("flat", "µsec/op", 1.0, &sweep);
        print_ratio("flat", &sweep);
    }
}
