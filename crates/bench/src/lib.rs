//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures, printing the same rows/series the paper plots. The helpers
//! here render core sweeps as aligned text tables so the binaries stay
//! one-screen small.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod chaos;
pub mod latency;
pub mod lockdep;
pub mod profile;
pub mod scale;
pub mod tail;

/// Serializes tests that read deltas of the process-global `rcu.*`
/// counters: concurrent churn from a sibling test would perturb the
/// exact counts they assert on.
#[cfg(test)]
pub(crate) fn rcu_serial() -> std::sync::MutexGuard<'static, ()> {
    static RCU_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    RCU_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

use pk_obs::ContentionReport;
use pk_sim::SweepPoint;
use pk_workloads::KernelChoice;

/// Builds the contention report for one workload × kernel config ×
/// core count from the analytic (MVA) solve: the paper's "which
/// resource eats the cycles" diagnostic, derived from the model's
/// per-station residence rather than a hardcoded bottleneck table.
///
/// Returns `None` for workload names [`pk_workloads::roster::model`]
/// does not know.
pub fn contention_report(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
) -> Option<ContentionReport> {
    contention_report_on(workload, choice, cores, pk_sim::MachineSpec::paper())
}

/// [`contention_report`] on an arbitrary machine topology. `cores`
/// must fit `machine` (callers validate and surface the typed
/// [`pk_sim::TopologyError`] before getting here).
pub fn contention_report_on(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    machine: pk_sim::MachineSpec,
) -> Option<ContentionReport> {
    machine
        .validate_cores(cores)
        .expect("core count validated by the caller");
    let model = pk_workloads::roster::model_on(workload, choice, machine)?;
    let solved = model.network(cores).solve(cores);
    Some(ContentionReport::from_snapshot(
        display_name(&model.name()),
        choice.label(),
        cores,
        &solved.snapshot(),
    ))
}

/// Like [`contention_report`], but from the discrete-event simulator's
/// *measured* per-station waits and cache-line transfer counts — the
/// cross-check that the attribution is not an artifact of the MVA
/// approximation. Deterministic for a fixed `seed`.
pub fn contention_report_des(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
) -> Option<ContentionReport> {
    contention_report_des_on(
        workload,
        choice,
        cores,
        ops_per_core,
        seed,
        pk_sim::MachineSpec::paper(),
    )
}

/// [`contention_report_des`] on an arbitrary machine topology.
pub fn contention_report_des_on(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    machine: pk_sim::MachineSpec,
) -> Option<ContentionReport> {
    machine
        .validate_cores(cores)
        .expect("core count validated by the caller");
    let model = pk_workloads::roster::model_on(workload, choice, machine)?;
    let net = model.network(cores);
    let measured = pk_sim::des::simulate(&net, cores, ops_per_core, seed);
    Some(ContentionReport::from_snapshot(
        display_name(&model.name()),
        choice.label(),
        cores,
        &measured.snapshot(&net),
    ))
}

/// [`contention_report_on`] for an arbitrary kernel fix subset — the
/// axis the adaptive personality's controller moves along. The report's
/// config column carries [`pk_workloads::config_label`], so an
/// adaptive config renders as `Adaptive(n promoted)`.
pub fn contention_report_config_on(
    workload: &str,
    config: &pk_kernel::KernelConfig,
    cores: usize,
    machine: pk_sim::MachineSpec,
) -> Option<ContentionReport> {
    machine
        .validate_cores(cores)
        .expect("core count validated by the caller");
    let model = pk_workloads::roster::model_with_config(workload, config, machine)?;
    let solved = model.network(cores).solve(cores);
    Some(ContentionReport::from_snapshot(
        display_name(&model.name()),
        pk_workloads::config_label(config),
        cores,
        &solved.snapshot(),
    ))
}

/// [`contention_report_des_on`] for an arbitrary kernel fix subset.
pub fn contention_report_config_des_on(
    workload: &str,
    config: &pk_kernel::KernelConfig,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    machine: pk_sim::MachineSpec,
) -> Option<ContentionReport> {
    machine
        .validate_cores(cores)
        .expect("core count validated by the caller");
    let model = pk_workloads::roster::model_with_config(workload, config, machine)?;
    let net = model.network(cores);
    let measured = pk_sim::des::simulate(&net, cores, ops_per_core, seed);
    Some(ContentionReport::from_snapshot(
        display_name(&model.name()),
        pk_workloads::config_label(config),
        cores,
        &measured.snapshot(&net),
    ))
}

/// Model names embed their config (`Exim/Stock`); the report prints
/// the config separately, so keep only the application part.
fn display_name(model_name: &str) -> String {
    model_name
        .split('/')
        .next()
        .unwrap_or(model_name)
        .to_string()
}

/// Prints a figure header.
pub fn header(title: &str, caption: &str) {
    println!("\n=== {title} ===");
    println!("{caption}\n");
}

/// Prints one or more labelled sweeps as a throughput-per-core table,
/// in the units given (e.g. "msgs/sec/core").
pub fn print_throughput(unit: &str, scale: f64, series: &[(String, Vec<SweepPoint>)]) {
    print!("{:>6}", "cores");
    for (label, _) in series {
        print!("  {label:>18}");
    }
    println!("    ({unit})");
    let n = series[0].1.len();
    for i in 0..n {
        print!("{:>6}", series[0].1[i].cores);
        for (_, sweep) in series {
            let p = &sweep[i];
            let capped = if p.hw_capped { "*" } else { " " };
            print!("  {:>17.1}{capped}", p.per_core_per_sec * scale);
        }
        println!();
    }
    println!("  (*: bound by a hardware ceiling — NIC or DRAM)");
}

/// Prints the CPU-time breakdown (user/system per operation) for one
/// sweep, in the units given (e.g. "µsec/message").
pub fn print_cpu_breakdown(label: &str, unit: &str, scale: f64, sweep: &[SweepPoint]) {
    println!("\n{label} CPU time ({unit}):");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>24}",
        "cores", "user", "system", "bottleneck"
    );
    for p in sweep {
        println!(
            "{:>6}  {:>12.2}  {:>12.2}  {:>24}",
            p.cores,
            p.user_usec * scale,
            p.system_usec * scale,
            p.bottleneck
        );
    }
}

/// Prints the scalability summary line the tests assert on: per-core
/// throughput at max cores relative to one core.
pub fn print_ratio(label: &str, sweep: &[SweepPoint]) {
    let first = sweep.first().expect("non-empty sweep");
    let last = sweep.last().expect("non-empty sweep");
    println!(
        "{label}: per-core throughput at {} cores = {:.2}x of 1 core",
        last.cores,
        last.per_core_per_sec / first.per_core_per_sec
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_sim::{CoreSweep, MachineSpec, Network, Station, WorkloadModel};

    struct Flat;

    impl WorkloadModel for Flat {
        fn name(&self) -> String {
            "flat".into()
        }

        fn machine(&self) -> MachineSpec {
            MachineSpec::paper()
        }

        fn network(&self, _cores: usize) -> Network {
            let mut n = Network::new();
            n.push(Station::delay("user", 1000.0, false));
            n
        }
    }

    #[test]
    fn printers_do_not_panic() {
        let sweep = CoreSweep::run(&Flat);
        header("Figure X", "caption");
        print_throughput("ops/sec/core", 1.0, &[("flat".to_string(), sweep.clone())]);
        print_cpu_breakdown("flat", "µsec/op", 1.0, &sweep);
        print_ratio("flat", &sweep);
    }
}
