//! Cycle-attribution profiling of the workload models (`profile_report`).
//!
//! Runs the discrete-event simulator with a `pk-trace` tracer attached,
//! folds the drained span stream into the paper's "top functions by %
//! of cycles" tables (§4), and re-derives the headline diagnosis:
//! Exim's stock collapse is the vfsmount-table spin lock (§5.2), and
//! the attribution moves off that lock entirely under PK. The derived
//! inversion gates CI — if the traced simulation stops reproducing it,
//! `profile_report` exits non-zero.

use pk_trace::{Event, Profile, Tracer};
use pk_workloads::{roster, KernelChoice};

/// Simulated operations per customer in a profiling run: long enough
/// for the attribution shares to stabilize, small enough that the
/// per-track rings (sized by [`ring_capacity`]) stay in tens of
/// megabytes at 48 cores.
pub const OPS_PER_CORE: u64 = 400;

/// One class's slice of a run's cycles, ranked by exclusive (self)
/// time like a sampling profiler.
#[derive(Debug, Clone)]
pub struct ClassShare {
    /// Resolved span-class name (station, `<station> (wait)`, `des.op`).
    pub name: String,
    /// Spans of this class that closed.
    pub count: u64,
    /// Σ (end − begin) cycles.
    pub inclusive: u64,
    /// Self cycles (inclusive minus children).
    pub exclusive: u64,
    /// `exclusive / total_cycles`.
    pub share: f64,
}

/// The folded attribution of one traced DES run.
#[derive(Debug, Clone)]
pub struct WorkloadAttribution {
    /// Roster workload name.
    pub workload: String,
    /// `"stock"`, `"pk"`, or `"adaptive"`.
    pub config: &'static str,
    /// Simulated core count.
    pub cores: usize,
    /// Denominator: Σ inclusive cycles of the root `des.op` spans.
    pub total_cycles: u64,
    /// Events lost to ring overflow (0 in a correctly sized run).
    pub dropped_events: u64,
    /// Every class, ranked by exclusive cycles descending.
    pub classes: Vec<ClassShare>,
    /// Rendered paper-style table of the top classes.
    pub table: String,
}

impl WorkloadAttribution {
    /// Fraction of total cycles spent exclusively in classes whose name
    /// contains `pattern` (holding *and* waiting, since wait spans share
    /// the station's name).
    pub fn share_of(&self, pattern: &str) -> f64 {
        // u128: a collapsed 1024-core gmake run sums past u64::MAX.
        let hit: u128 = self
            .classes
            .iter()
            .filter(|c| c.name.contains(pattern))
            .map(|c| u128::from(c.exclusive))
            .sum();
        hit as f64 / self.total_cycles.max(1) as f64
    }

    /// The top class by exclusive cycles, excluding the synthetic
    /// `des.op` root (which only holds per-op residue).
    pub fn top_class(&self) -> &str {
        self.classes
            .iter()
            .map(|c| c.name.as_str())
            .find(|n| *n != "des.op")
            .unwrap_or("")
    }
}

/// Ring slots needed per track: every operation visits each station at
/// most once (span begin/end, plus a wait begin/end when it queues) and
/// opens/closes one root span, and the simulator adds a 20% warmup.
pub fn ring_capacity(ops_per_core: u64, stations: usize) -> usize {
    let total_ops = ops_per_core + (ops_per_core / 5).max(1) + 1;
    (total_ops as usize) * (4 * stations + 2)
}

/// Runs one traced simulation and folds it. Returns the attribution
/// plus the raw drained events (for the Chrome trace export). `None`
/// for workload names the roster does not know.
pub fn run_traced(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
) -> Option<(WorkloadAttribution, Vec<Event>)> {
    run_traced_on(
        workload,
        choice,
        cores,
        ops_per_core,
        seed,
        pk_sim::MachineSpec::paper(),
    )
}

/// [`run_traced`] on an arbitrary machine topology.
///
/// # Panics
///
/// Panics if `cores` oversubscribes `machine` — callers (the report
/// binaries) validate the pair up front and print the typed error.
pub fn run_traced_on(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    machine: pk_sim::MachineSpec,
) -> Option<(WorkloadAttribution, Vec<Event>)> {
    machine
        .validate_cores(cores)
        .expect("core count validated by the caller");
    let model = roster::model_on(workload, choice, machine)?;
    let label = match choice {
        KernelChoice::Stock => "stock",
        KernelChoice::Coarse => "coarse",
        KernelChoice::Pk => "pk",
    };
    Some(trace_model(
        model.as_ref(),
        workload,
        label,
        cores,
        ops_per_core,
        seed,
    ))
}

/// [`run_traced_on`] for an arbitrary kernel fix subset — the adaptive
/// axis. `label` names the axis in the attribution (`"adaptive"`).
pub fn run_traced_config_on(
    workload: &str,
    config: &pk_kernel::KernelConfig,
    label: &'static str,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    machine: pk_sim::MachineSpec,
) -> Option<(WorkloadAttribution, Vec<Event>)> {
    machine
        .validate_cores(cores)
        .expect("core count validated by the caller");
    let model = roster::model_with_config(workload, config, machine)?;
    Some(trace_model(
        model.as_ref(),
        workload,
        label,
        cores,
        ops_per_core,
        seed,
    ))
}

/// Shared tracing + folding behind both axes.
fn trace_model(
    model: &dyn pk_sim::WorkloadModel,
    workload: &str,
    config: &'static str,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
) -> (WorkloadAttribution, Vec<Event>) {
    let net = model.network(cores);
    let tracer = Tracer::new(cores, ring_capacity(ops_per_core, net.stations().len()));
    pk_sim::des::simulate_traced(
        &net,
        cores,
        ops_per_core,
        seed,
        &pk_fault::FaultPlane::disabled(),
        Some(&tracer),
    );
    let dropped_events = tracer.dropped();
    let events = tracer.drain();
    let profile = Profile::build(&events);
    let total = profile.total_cycles.max(1);
    let classes = profile
        .totals()
        .iter()
        .map(|t| ClassShare {
            name: t.name.clone(),
            count: t.count,
            inclusive: t.inclusive,
            exclusive: t.exclusive,
            share: t.exclusive as f64 / total as f64,
        })
        .collect();
    (
        WorkloadAttribution {
            workload: workload.to_string(),
            config,
            cores,
            total_cycles: profile.total_cycles,
            dropped_events,
            classes,
            table: profile.table(8),
        },
        events,
    )
}

/// The paper's Exim headline, derived rather than asserted: at 48
/// cores the stock kernel's cycles concentrate in the vfsmount-table
/// lock (holding + spinning), and under PK that attribution collapses.
#[derive(Debug, Clone)]
pub struct EximInversion {
    /// Stock share of exclusive cycles in `*vfsmount*` classes.
    pub stock_share: f64,
    /// Same share under PK.
    pub pk_share: f64,
    /// Stock's top non-root class (must be the vfsmount lock).
    pub stock_top: String,
    /// Whether the inversion was observed (the CI gate).
    pub observed: bool,
}

/// Stock share must dominate ([`STOCK_DOMINANCE`]) and the PK share
/// must collapse below [`PK_CEILING`].
pub const STOCK_DOMINANCE: f64 = 0.40;
/// See [`STOCK_DOMINANCE`].
pub const PK_CEILING: f64 = 0.05;

/// Derives the inversion from the two Exim attributions.
pub fn exim_inversion(stock: &WorkloadAttribution, pk: &WorkloadAttribution) -> EximInversion {
    let stock_share = stock.share_of("vfsmount");
    let pk_share = pk.share_of("vfsmount");
    let stock_top = stock.top_class().to_string();
    let observed =
        stock_top.contains("vfsmount") && stock_share >= STOCK_DOMINANCE && pk_share <= PK_CEILING;
    EximInversion {
        stock_share,
        pk_share,
        stock_top,
        observed,
    }
}

/// Per-workload generation-2 collapse structure: the station-name
/// pattern the §7 extrapolation blames past 48 cores. The same
/// [`STOCK_DOMINANCE`] / [`PK_CEILING`] thresholds gate it: on a big
/// topology the named structure must own the stock attribution and the
/// PK fix set (RCU walk, SNZI refs, per-socket shards) must erase it.
pub const GEN2_STRUCTURES: &[(&str, &str)] = &[
    ("exim", "path-walk"),
    ("apache", "dentry ref saturation"),
    ("memcached", "flow-director"),
    ("postgres", "path-walk"),
    ("gmake", "page freelist"),
    ("pedsort", "page freelist"),
    ("metis", "page freelist"),
];

/// The gen-2 station pattern for `workload`, if it has one.
pub fn gen2_structure(workload: &str) -> Option<&'static str> {
    GEN2_STRUCTURES
        .iter()
        .find(|(w, _)| *w == workload)
        .map(|(_, p)| *p)
}

/// One workload's generation-2 inversion on a big topology: stock
/// share of the named structure vs the share under PK's new fixes.
#[derive(Debug, Clone)]
pub struct Gen2Inversion {
    /// Roster workload name.
    pub workload: String,
    /// Station-name pattern from [`GEN2_STRUCTURES`].
    pub structure: &'static str,
    /// Share of stock exclusive cycles in the structure (hold + wait).
    pub stock_share: f64,
    /// Same share under PK.
    pub pk_share: f64,
    /// `stock_share >= STOCK_DOMINANCE && pk_share <= PK_CEILING`.
    pub observed: bool,
}

/// Derives the gen-2 inversion from a workload's stock and PK
/// attributions. `None` when the workload has no gen-2 structure.
pub fn gen2_inversion(
    stock: &WorkloadAttribution,
    pk: &WorkloadAttribution,
) -> Option<Gen2Inversion> {
    let structure = gen2_structure(&stock.workload)?;
    let stock_share = stock.share_of(structure);
    let pk_share = pk.share_of(structure);
    Some(Gen2Inversion {
        workload: stock.workload.clone(),
        structure,
        stock_share,
        pk_share,
        observed: stock_share >= STOCK_DOMINANCE && pk_share <= PK_CEILING,
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the deterministic JSON artifact: fixed key order, fixed
/// 6-decimal float formatting, runs in roster × {stock, coarse, pk,
/// adaptive} order — byte-identical for a fixed seed. `inversion` is
/// `None` when Exim was filtered out of the run; `gen2` carries the
/// big-topology inversions (empty on the 48-core paper machine).
pub fn report_json(
    seed: u64,
    cores: usize,
    runs: &[WorkloadAttribution],
    inversion: Option<&EximInversion>,
    gen2: &[Gen2Inversion],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"total_cycles\": {}, \"dropped_events\": {}, \"top\": [",
            json_escape(&r.workload),
            r.config,
            r.total_cycles,
            r.dropped_events
        );
        for (j, c) in r.classes.iter().take(8).enumerate() {
            let comma = if j + 1 == r.classes.len().min(8) {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "      {{\"class\": \"{}\", \"share\": {:.6}, \"exclusive\": {}, \"inclusive\": {}, \"count\": {}}}{comma}",
                json_escape(&c.name),
                c.share,
                c.exclusive,
                c.inclusive,
                c.count
            );
        }
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ],\n");
    match inversion {
        Some(inv) => {
            let _ = writeln!(
                out,
                "  \"exim_inversion\": {{\"stock_vfsmount_share\": {:.6}, \"pk_vfsmount_share\": {:.6}, \"stock_top\": \"{}\", \"observed\": {}}},",
                inv.stock_share,
                inv.pk_share,
                json_escape(&inv.stock_top),
                inv.observed
            );
        }
        None => out.push_str("  \"exim_inversion\": null,\n"),
    }
    out.push_str("  \"gen2_inversions\": [\n");
    for (i, g) in gen2.iter().enumerate() {
        let comma = if i + 1 == gen2.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"structure\": \"{}\", \"stock_share\": {:.6}, \"pk_share\": {:.6}, \"observed\": {}}}{comma}",
            json_escape(&g.workload),
            json_escape(g.structure),
            g.stock_share,
            g.pk_share,
            g.observed
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exim_attribution_inverts_between_kernels() {
        let (stock, _) = run_traced("exim", KernelChoice::Stock, 48, 200, 42).unwrap();
        let (pk, _) = run_traced("exim", KernelChoice::Pk, 48, 200, 42).unwrap();
        assert_eq!(stock.dropped_events, 0, "ring must hold the whole run");
        assert_eq!(pk.dropped_events, 0);
        let inv = exim_inversion(&stock, &pk);
        assert!(
            inv.observed,
            "stock_top={} stock={} pk={}",
            inv.stock_top, inv.stock_share, inv.pk_share
        );
    }

    #[test]
    fn every_roster_workload_profiles_without_drops() {
        for name in roster::NAMES {
            let (attr, events) = run_traced(name, KernelChoice::Stock, 8, 100, 7).unwrap();
            assert_eq!(attr.dropped_events, 0, "{name} overflowed its ring");
            assert!(attr.total_cycles > 0, "{name} folded no cycles");
            assert!(!events.is_empty(), "{name} traced no events");
        }
    }

    #[test]
    fn report_json_is_deterministic_and_shaped() {
        let run = || {
            let (stock, _) = run_traced("exim", KernelChoice::Stock, 8, 100, 42).unwrap();
            let (pk, _) = run_traced("exim", KernelChoice::Pk, 8, 100, 42).unwrap();
            let inv = exim_inversion(&stock, &pk);
            let gen2: Vec<_> = gen2_inversion(&stock, &pk).into_iter().collect();
            report_json(42, 8, &[stock, pk], Some(&inv), &gen2)
        };
        let a = run();
        assert_eq!(a, run(), "artifact must be byte-identical per seed");
        assert!(a.contains("\"seed\": 42"));
        assert!(a.contains("\"workload\": \"exim\""));
        assert!(a.contains("\"exim_inversion\""));
        assert!(a.contains("\"gen2_inversions\""));
        // Filtered runs emit a null exim block but stay parseable JSON.
        let b = report_json(42, 8, &[], None, &[]);
        assert!(b.contains("\"exim_inversion\": null"));
    }

    #[test]
    fn gen2_structures_invert_past_48_cores() {
        // The §7 extrapolation: at 64×16 the generation-2 structures own
        // the stock attribution and the new fixes erase them. Two
        // workloads (one VFS-side, one net-side) gate the claim; the
        // full-roster pass lives in profile_report/CI.
        let machine = pk_sim::MachineSpec::with_topology(64, 16).expect("64x16 valid");
        for name in ["exim", "memcached"] {
            let (stock, _) =
                run_traced_on(name, KernelChoice::Stock, 1024, 40, 42, machine).unwrap();
            let (pk, _) = run_traced_on(name, KernelChoice::Pk, 1024, 40, 42, machine).unwrap();
            assert_eq!(stock.dropped_events, 0, "{name} overflowed its ring");
            let inv = gen2_inversion(&stock, &pk).expect("roster workloads have gen2 entries");
            assert!(
                inv.observed,
                "{name}: structure={} stock={:.3} pk={:.3}",
                inv.structure, inv.stock_share, inv.pk_share
            );
        }
    }
}
