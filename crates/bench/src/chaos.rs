//! Chaos soak harness: MOSBENCH drivers × kernel config × seeded fault
//! mix.
//!
//! Each run drives one functional workload driver twice over the same
//! offered load — once fault-free for the throughput baseline, once
//! with a [`FaultMix`] armed on a seeded [`FaultPlane`] — and reports
//! throughput degradation, retry counts, and invariant violations. The
//! faulted run's trace is a pure function of the seed, so a failing
//! soak replays byte-for-byte from its seed alone.
//!
//! The harness is deliberately single-threaded: one thread drives every
//! core's share of the load in a fixed order, so two soaks with the
//! same seed produce *identical* ordered traces (asserted by the
//! `chaos_report` integration test), not merely identical trace sets.

use pk_fault::{FaultEvent, FaultPlane, FaultSchedule};
use pk_kernel::Kernel;
use pk_percpu::CoreId;
use pk_sim::des;
use pk_workloads::apache::ApacheDriver;
use pk_workloads::exim::EximDriver;
use pk_workloads::memcached::MemcachedDriver;
use pk_workloads::{roster, KernelChoice};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// SMTP connections per Exim soak (each delivers
/// [`pk_workloads::exim::MSGS_PER_CONNECTION`] messages).
const EXIM_CONNECTIONS: usize = 24;
/// Client batches per memcached soak (each sends
/// [`pk_workloads::memcached::BATCH`] requests).
const MEMCACHED_BATCHES: u32 = 24;
/// Connections per Apache soak.
const APACHE_CONNECTIONS: u32 = 120;
/// Pages each allocator-churn probe asks for: the workload's share of
/// process memory pressure, so `mm.alloc_enomem` has arrivals to hit
/// in every soak.
const CHURN_PAGES: u64 = 4;
/// Operations per core for the discrete-event-simulator chaos runs.
const DES_OPS_PER_CORE: u64 = 2_000;

/// A named set of schedules to arm on the plane before a faulted run.
#[derive(Debug, Clone)]
pub struct FaultMix {
    /// Human-readable label for reports.
    pub label: &'static str,
    /// `(injection point, schedule)` pairs to arm.
    pub points: Vec<(&'static str, FaultSchedule)>,
}

impl FaultMix {
    /// The acceptance mix: 1% ENOMEM (page *and* dentry allocations)
    /// plus 1% NIC receive drop, the headline robustness bar — every
    /// workload must complete under it with bounded retries and zero
    /// panics.
    pub fn acceptance() -> Self {
        Self {
            label: "1% enomem (pages + dentries) + 1% rx-drop",
            points: vec![
                ("mm.alloc_enomem", FaultSchedule::Probability(0.01)),
                ("vfs.dentry_alloc", FaultSchedule::Probability(0.01)),
                ("net.rx_drop", FaultSchedule::Probability(0.01)),
            ],
        }
    }

    /// A harsher mix that also exercises fork failure, dentry
    /// allocation failure, and dcache pressure.
    pub fn heavy() -> Self {
        Self {
            label: "heavy (enomem, rx-drop, fork, dentry, dcache)",
            points: vec![
                ("mm.alloc_enomem", FaultSchedule::Probability(0.02)),
                ("net.rx_drop", FaultSchedule::Probability(0.02)),
                ("proc.fork_fail", FaultSchedule::Probability(0.02)),
                ("vfs.dentry_alloc", FaultSchedule::Probability(0.01)),
                ("vfs.dcache_pressure", FaultSchedule::Probability(0.01)),
            ],
        }
    }

    /// Arms every schedule on `plane` and enables it. Call only after
    /// driver construction, so setup runs clean.
    pub fn arm(&self, plane: &FaultPlane) {
        for (name, schedule) in &self.points {
            plane.set(name, *schedule);
        }
        plane.enable();
    }
}

/// One workload's soak outcome under one kernel config and fault mix.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Workload name (`exim`, `memcached`, `apache`).
    pub workload: &'static str,
    /// Kernel config label (`stock` / `PK`).
    pub config: &'static str,
    /// Fault-mix label.
    pub mix: &'static str,
    /// Operations completed by the fault-free baseline run.
    pub baseline_ops: u64,
    /// Operations completed by the faulted run.
    pub faulted_ops: u64,
    /// Transient failures absorbed by retries during the faulted run.
    pub retries: u64,
    /// Simulated backoff the retries charged, in cycles.
    pub backoff_cycles: u64,
    /// Allocator-churn probes that shed their allocation on ENOMEM.
    pub enomem_shed: u64,
    /// Fault-point arrivals checked while the plane was enabled.
    pub faults_checked: u64,
    /// Faults actually injected.
    pub faults_injected: u64,
    /// Invariant violations found after the faulted run (empty = pass).
    pub violations: Vec<String>,
    /// Whether the faulted run panicked (always a failure).
    pub panicked: bool,
    /// The faulted run's ordered injection trace, for replay checks.
    pub trace: Vec<FaultEvent>,
}

impl ChaosReport {
    /// Throughput lost to the fault mix, as a percentage of baseline.
    pub fn degradation_pct(&self) -> f64 {
        if self.baseline_ops == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.faulted_ops as f64 / self.baseline_ops as f64)
    }

    /// Whether the soak passed: no panic and no invariant violations.
    pub fn passed(&self) -> bool {
        !self.panicked && self.violations.is_empty()
    }
}

/// One DES chaos row: a workload model simulated with and without
/// lock-holder preemption and core stalls.
#[derive(Debug, Clone)]
pub struct DesChaosRow {
    /// Workload model name.
    pub workload: &'static str,
    /// Ops/cycle without faults.
    pub baseline_ops_per_cycle: f64,
    /// Ops/cycle with preemption and stall faults armed.
    pub faulted_ops_per_cycle: f64,
    /// Faults injected during the faulted simulation.
    pub faults_injected: u64,
}

impl DesChaosRow {
    /// Simulated throughput lost to the faults, percent of baseline.
    pub fn degradation_pct(&self) -> f64 {
        if self.baseline_ops_per_cycle == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.faulted_ops_per_cycle / self.baseline_ops_per_cycle)
    }
}

/// Probes the allocator with a small allocation the workload would shed
/// under memory pressure; returns whether it had to shed (ENOMEM).
fn churn(kernel: &Kernel, core: CoreId) -> bool {
    match kernel.allocator().alloc_local(core.0, CHURN_PAGES) {
        Ok(node) => {
            kernel.allocator().free_on(node, CHURN_PAGES);
            false
        }
        Err(_) => true,
    }
}

/// Drives the Exim soak load: round-robin SMTP connections across the
/// cores, with allocator churn per connection. Returns `(hard errors,
/// ENOMEM sheds)`.
fn exim_work(d: &EximDriver, cores: usize) -> (u64, u64) {
    let mut hard = 0;
    let mut shed = 0;
    for conn in 0..EXIM_CONNECTIONS {
        let core = CoreId(conn % cores);
        if churn(d.kernel(), core) {
            shed += 1;
        }
        if d.run_connection(core, conn).is_err() {
            hard += 1;
        }
    }
    (hard, shed)
}

/// Soaks Exim under `mix`. Ops metric: messages delivered.
pub fn run_exim(choice: KernelChoice, cores: usize, seed: u64, mix: &FaultMix) -> ChaosReport {
    let baseline = {
        let d = EximDriver::new(choice, cores).expect("boot exim");
        exim_work(&d, cores);
        d.delivered()
    };
    let plane = Arc::new(FaultPlane::with_seed(seed));
    let d = EximDriver::with_faults(choice, cores, Arc::clone(&plane))
        .expect("boot exim (plane not yet armed)");
    mix.arm(&plane);
    let outcome = catch_unwind(AssertUnwindSafe(|| exim_work(&d, cores)));
    plane.disable();
    let (panicked, hard, shed) = match outcome {
        Ok((hard, shed)) => (false, hard, shed),
        Err(_) => (true, 0, 0),
    };
    let mut violations = Vec::new();
    if hard > 0 {
        violations.push(format!("{hard} connections aborted on permanent errors"));
    }
    if d.delivered() + d.bounced() != d.attempted() {
        violations.push(format!(
            "message accounting leaked: {} delivered + {} bounced != {} attempted",
            d.delivered(),
            d.bounced(),
            d.attempted()
        ));
    }
    if d.kernel().procs().len() != 1 {
        violations.push(format!(
            "process table leaked: {} live (want 1: init)",
            d.kernel().procs().len()
        ));
    }
    let open = d.kernel().vfs().superblock().open_files();
    if open != 0 {
        violations.push(format!("open-file accounting leaked: {open} (want 0)"));
    }
    finish(
        "exim",
        choice,
        mix,
        baseline,
        d.delivered(),
        d.tempfails(),
        d.retry_backoff_cycles(),
        shed,
        &plane,
        violations,
        panicked,
    )
}

/// Drives the memcached soak load. Returns `(requests that got
/// through, ENOMEM sheds)`.
fn memcached_work(d: &MemcachedDriver, cores: usize) -> (u64, u64) {
    let mut sent = 0u64;
    let mut shed = 0u64;
    for round in 0..MEMCACHED_BATCHES {
        let core = round as usize % cores;
        if churn(d.kernel(), CoreId(core)) {
            shed += 1;
        }
        sent += d.client_batch(round, core) as u64;
    }
    d.drain_all();
    (sent, shed)
}

/// Soaks memcached under `mix`. Ops metric: requests served.
pub fn run_memcached(choice: KernelChoice, cores: usize, seed: u64, mix: &FaultMix) -> ChaosReport {
    let baseline = {
        let d = MemcachedDriver::new(choice, cores);
        memcached_work(&d, cores);
        d.served()
    };
    let plane = Arc::new(FaultPlane::with_seed(seed));
    let d = MemcachedDriver::with_faults(choice, cores, Arc::clone(&plane));
    mix.arm(&plane);
    let outcome = catch_unwind(AssertUnwindSafe(|| memcached_work(&d, cores)));
    plane.disable();
    let (panicked, sent, shed) = match outcome {
        Ok((sent, shed)) => (false, sent, shed),
        Err(_) => (true, 0, 0),
    };
    let mut violations = Vec::new();
    if !panicked && d.served() != sent {
        violations.push(format!(
            "request accounting leaked: {} served != {} accepted by the NIC",
            d.served(),
            sent
        ));
    }
    let usage = d.kernel().net().proto().usage(pk_net::Protocol::Udp);
    if usage != 0 {
        violations.push(format!("UDP memory accounting leaked: {usage} (want 0)"));
    }
    finish(
        "memcached",
        choice,
        mix,
        baseline,
        d.served(),
        d.client_retries(),
        0,
        shed,
        &plane,
        violations,
        panicked,
    )
}

/// Drives the Apache soak load. Returns `(connections accepted,
/// ENOMEM sheds)`.
fn apache_work(d: &ApacheDriver, cores: usize) -> (u64, u64) {
    for i in 0..APACHE_CONNECTIONS {
        d.client_connect(0x0e00_0000 + i);
    }
    let mut accepted = 0u64;
    let mut shed = 0u64;
    loop {
        let mut progress = false;
        for core in 0..cores {
            if churn(d.kernel(), CoreId(core)) {
                shed += 1;
            }
            if d.serve_one(core).is_some() {
                progress = true;
                accepted += 1;
            }
        }
        if !progress {
            return (accepted, shed);
        }
    }
}

/// Soaks Apache under `mix`. Ops metric: requests served.
pub fn run_apache(choice: KernelChoice, cores: usize, seed: u64, mix: &FaultMix) -> ChaosReport {
    let baseline = {
        let d = ApacheDriver::new(choice, cores);
        apache_work(&d, cores);
        d.served()
    };
    let plane = Arc::new(FaultPlane::with_seed(seed));
    let d = ApacheDriver::with_faults(choice, cores, Arc::clone(&plane));
    mix.arm(&plane);
    let outcome = catch_unwind(AssertUnwindSafe(|| apache_work(&d, cores)));
    plane.disable();
    let (panicked, accepted, shed) = match outcome {
        Ok((accepted, shed)) => (false, accepted, shed),
        Err(_) => (true, 0, 0),
    };
    let mut violations = Vec::new();
    if !panicked && accepted != u64::from(APACHE_CONNECTIONS) {
        violations.push(format!(
            "connections lost: accepted {accepted} of {APACHE_CONNECTIONS}"
        ));
    }
    if !panicked && d.served() + d.failed_requests() != accepted {
        violations.push(format!(
            "request accounting leaked: {} served + {} failed != {} accepted",
            d.served(),
            d.failed_requests(),
            accepted
        ));
    }
    let open = d.kernel().vfs().superblock().open_files();
    if open != 0 {
        violations.push(format!("open-file accounting leaked: {open} (want 0)"));
    }
    finish(
        "apache",
        choice,
        mix,
        baseline,
        d.served(),
        d.request_tempfails(),
        d.accept_backoff_cycles(),
        shed,
        &plane,
        violations,
        panicked,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish(
    workload: &'static str,
    choice: KernelChoice,
    mix: &FaultMix,
    baseline_ops: u64,
    faulted_ops: u64,
    retries: u64,
    backoff_cycles: u64,
    enomem_shed: u64,
    plane: &FaultPlane,
    violations: Vec<String>,
    panicked: bool,
) -> ChaosReport {
    // Count only the points the mix armed: arrivals at Never-scheduled
    // points would inflate `checked` and make an inert mix look busy.
    let armed = |name: &str| mix.points.iter().any(|(n, _)| *n == name);
    let stats = plane.stats();
    ChaosReport {
        workload,
        config: choice.label(),
        mix: mix.label,
        baseline_ops,
        faulted_ops,
        retries,
        backoff_cycles,
        enomem_shed,
        faults_checked: stats
            .iter()
            .filter(|p| armed(p.name))
            .map(|p| p.checked)
            .sum(),
        faults_injected: stats
            .iter()
            .filter(|p| armed(p.name))
            .map(|p| p.injected)
            .sum(),
        violations,
        panicked,
        trace: plane.trace(),
    }
}

/// Runs one workload's soak by name. Returns `None` for names without
/// a functional driver (the DES sweep covers the rest of the roster).
pub fn run_workload(
    name: &str,
    choice: KernelChoice,
    cores: usize,
    seed: u64,
    mix: &FaultMix,
) -> Option<ChaosReport> {
    match name.to_ascii_lowercase().as_str() {
        "exim" => Some(run_exim(choice, cores, seed, mix)),
        "memcached" => Some(run_memcached(choice, cores, seed, mix)),
        "apache" => Some(run_apache(choice, cores, seed, mix)),
        _ => None,
    }
}

/// Soaks every named workload under both kernel configs with the
/// acceptance mix. The report order (and each report's trace) is a pure
/// function of `(seed, workloads, cores)`.
pub fn soak(seed: u64, workloads: &[&str], cores: usize) -> Vec<ChaosReport> {
    let mix = FaultMix::acceptance();
    let mut out = Vec::new();
    for name in workloads {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            if let Some(r) = run_workload(name, choice, cores, seed, &mix) {
                out.push(r);
            }
        }
    }
    out
}

/// Simulates every roster model with and without scheduler-level
/// faults (lock-holder preemption every 211th dispatch, a core stall
/// every 389th): the DES leg of the chaos matrix.
pub fn des_chaos(choice: KernelChoice, cores: usize, seed: u64) -> Vec<DesChaosRow> {
    roster::NAMES
        .iter()
        .filter_map(|name| {
            let model = roster::model(name, choice)?;
            let net = model.network(cores);
            let base = des::simulate(&net, cores, DES_OPS_PER_CORE, seed);
            let plane = FaultPlane::with_seed(seed);
            plane.set("sim.lock_holder_preempt", FaultSchedule::EveryNth(211));
            plane.set("sim.core_stall", FaultSchedule::EveryNth(389));
            plane.enable();
            let faulted = des::simulate_with_faults(&net, cores, DES_OPS_PER_CORE, seed, &plane);
            Some(DesChaosRow {
                workload: name,
                baseline_ops_per_cycle: base.ops_per_cycle,
                faulted_ops_per_cycle: faulted.ops_per_cycle,
                faults_injected: plane.injected_total(),
            })
        })
        .collect()
}

/// Measurement epochs' ops/core for the adaptive chaos runs (matches
/// [`pk_adapt::AdaptPolicy::default`]'s epoch sizing).
const ADAPT_OPS_PER_CORE: u64 = 200;
/// Epoch cap for the faulted convergence loop.
const ADAPT_MAX_EPOCHS: u32 = 32;
/// Settle window: decision-free epochs before declaring convergence.
const ADAPT_SETTLE_EPOCHS: u32 = 2;

/// One workload's adaptive-controller convergence under scheduler
/// faults: the controller leg of the chaos matrix. Every measurement
/// epoch runs with lock-holder preemption and core stalls armed; the
/// controller must still settle, keep its flip bound, and land on a
/// config that performs.
#[derive(Debug, Clone)]
pub struct AdaptiveChaosRow {
    /// Workload model name.
    pub workload: &'static str,
    /// Fixes promoted by the fault-free reference convergence.
    pub clean_promoted: usize,
    /// Fixes promoted while faults were armed.
    pub faulted_promoted: usize,
    /// Epochs the faulted convergence consumed.
    pub epochs: u32,
    /// Whether the faulted controller settled before the epoch cap.
    pub converged: bool,
    /// Max direction changes of any knob during the faulted run.
    pub max_flips: u32,
    /// Scheduler faults injected across the measurement epochs.
    pub faults_injected: u64,
    /// Ops/cycle of the faulted run's final config (fault-free
    /// measurement — the config must perform once the noise is gone).
    pub final_ops_per_cycle: f64,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl AdaptiveChaosRow {
    /// Whether the row passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Converges the adaptive controller for every roster workload with
/// scheduler faults armed during each measurement epoch.
///
/// The clean reference uses [`pk_adapt::AdaptController::converge_des`];
/// the faulted leg drives the same controller manually, measuring each
/// epoch through [`des::simulate_with_faults`] so lock-holder
/// preemption and core stalls perturb the contention samples the
/// controller sees. Gates per workload: the controller must still
/// settle, no knob may flap (> 3 direction changes), faults must
/// actually fire, and the converged config must reach 90% of the clean
/// config's fault-free throughput. Deterministic per `(cores, seed)`.
pub fn adaptive_chaos(cores: usize, seed: u64) -> Vec<AdaptiveChaosRow> {
    use pk_adapt::{AdaptController, AdaptPolicy, Observation};
    use pk_kernel::KernelConfig;
    use pk_sim::MachineSpec;

    let machine = MachineSpec::paper();
    roster::NAMES
        .iter()
        .map(|&name| {
            let build = |cfg: &KernelConfig| {
                roster::model_with_config(name, cfg, machine)
                    .expect("roster name resolves")
                    .network(cores)
            };
            let policy = AdaptPolicy {
                ops_per_core: ADAPT_OPS_PER_CORE,
                max_epochs: ADAPT_MAX_EPOCHS,
                settle_epochs: ADAPT_SETTLE_EPOCHS,
                ..AdaptPolicy::default()
            };
            let clean = AdaptController::new(KernelConfig::adaptive(cores), policy, seed)
                .converge_des(build, cores);

            // Faulted convergence: same controller semantics, but every
            // epoch's measurement runs under armed scheduler faults.
            let mut ctl = AdaptController::new(KernelConfig::adaptive(cores), policy, seed);
            let mut faults_injected = 0u64;
            let mut quiet = 0u32;
            let mut converged = false;
            let mut flips: std::collections::BTreeMap<&'static str, (bool, u32)> =
                std::collections::BTreeMap::new();
            while ctl.epoch() < ADAPT_MAX_EPOCHS {
                let net = build(&ctl.config());
                let epoch_seed = seed ^ (u64::from(ctl.epoch()) + 1).wrapping_mul(0x9E37_79B9);
                let plane = FaultPlane::with_seed(epoch_seed);
                plane.set("sim.lock_holder_preempt", FaultSchedule::EveryNth(211));
                plane.set("sim.core_stall", FaultSchedule::EveryNth(389));
                plane.enable();
                let r =
                    des::simulate_with_faults(&net, cores, ADAPT_OPS_PER_CORE, epoch_seed, &plane);
                faults_injected += plane.injected_total();
                let observations: Vec<Observation> = net
                    .stations()
                    .iter()
                    .enumerate()
                    .filter_map(|(j, st)| {
                        let class = st.class?;
                        let residence = st.demand_cycles + r.mean_wait_cycles[j];
                        let share_bp = (residence / r.cycles_per_op * 10_000.0).round() as u64;
                        Some(Observation { class, share_bp })
                    })
                    .collect();
                let made = ctl.observe(&observations);
                for d in &made {
                    let e = flips.entry(d.class).or_insert((d.enabled, 0));
                    e.0 = d.enabled;
                    e.1 += 1;
                }
                if made.is_empty() {
                    quiet += 1;
                    if quiet >= ADAPT_SETTLE_EPOCHS {
                        converged = true;
                        break;
                    }
                } else {
                    quiet = 0;
                }
            }
            let max_flips = flips.values().map(|(_, n)| *n).max().unwrap_or(0);
            let final_config = ctl.config();

            // Judge both configs fault-free over the same seeded run.
            let clean_tput =
                des::simulate(&build(&clean.config), cores, DES_OPS_PER_CORE, seed).ops_per_cycle;
            let final_ops_per_cycle =
                des::simulate(&build(&final_config), cores, DES_OPS_PER_CORE, seed).ops_per_cycle;

            let mut violations = Vec::new();
            if !converged {
                violations.push(format!(
                    "controller wedged: no settle within {ADAPT_MAX_EPOCHS} epochs"
                ));
            }
            if max_flips > 3 {
                violations.push(format!("a knob flapped {max_flips} times under faults"));
            }
            if faults_injected == 0 {
                violations.push("scheduler faults never fired".to_string());
            }
            if final_ops_per_cycle < 0.90 * clean_tput {
                violations.push(format!(
                    "faulted convergence landed on a bad config: {final_ops_per_cycle:.6} \
                     vs clean {clean_tput:.6} ops/cycle"
                ));
            }
            AdaptiveChaosRow {
                workload: name,
                clean_promoted: clean.config.enabled_count(),
                faulted_promoted: final_config.enabled_count(),
                epochs: ctl.epoch(),
                converged,
                max_flips,
                faults_injected,
                final_ops_per_cycle,
                violations,
            }
        })
        .collect()
}

/// Requests per open-loop overload chaos run.
const OVERLOAD_REQUESTS: u64 = 2_000;
/// Offered load for the overload rows, percent of PK capacity.
const OVERLOAD_LOAD_PCT: u32 = 200;

/// One serving workload under 2× arrival overload with 1% NIC receive
/// drop: the open-loop leg of the chaos matrix. The shedding policy
/// must keep the admission queue bounded and every arrival accounted
/// for — completed, shed, cancelled, dropped by the NIC, or still in
/// the system — while the fault plane eats packets underneath it.
#[derive(Debug, Clone)]
pub struct OverloadChaosRow {
    /// Workload name.
    pub workload: &'static str,
    /// Kernel config label (`stock` / `PK`).
    pub config: &'static str,
    /// Requests the arrival process offered.
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Arrivals lost to the injected NIC drop.
    pub nic_dropped: u64,
    /// Arrivals refused or evicted by the shedding policy.
    pub shed: u64,
    /// Requests cancelled by deadline propagation.
    pub deadline_cancelled: u64,
    /// p999 of completed requests, cycles.
    pub p999: u64,
    /// Peak admission-queue depth (must respect the policy cap).
    pub queue_depth_peak: u64,
    /// The policy's admission cap.
    pub admission_cap: u32,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl OverloadChaosRow {
    /// Whether the row passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every serving workload at [`OVERLOAD_LOAD_PCT`] offered load
/// with shedding on and 1% `net.rx_drop` armed. Deterministic per
/// `(choice, cores, seed)`.
pub fn overload_chaos(choice: KernelChoice, cores: usize, seed: u64) -> Vec<OverloadChaosRow> {
    pk_serve::SERVING
        .iter()
        .map(|w| {
            let plane = FaultPlane::with_seed(seed);
            plane.set("net.rx_drop", FaultSchedule::Probability(0.01));
            plane.enable();
            let run = pk_serve::run_serving(
                w,
                choice,
                cores,
                true,
                OVERLOAD_LOAD_PCT,
                OVERLOAD_REQUESTS,
                seed,
                &plane,
            )
            .expect("SERVING workloads all have serving specs");
            let r = &run.result;
            let mut violations = Vec::new();
            if r.accounted() != r.arrivals {
                violations.push(format!(
                    "arrival accounting leaked: {} accounted != {} arrivals",
                    r.accounted(),
                    r.arrivals
                ));
            }
            if r.nic_dropped == 0 {
                violations.push("net.rx_drop never fired".to_string());
            }
            let cap = run.policy.admission_cap;
            if r.queue_depth_peak > u64::from(cap) {
                violations.push(format!(
                    "admission cap breached: peak {} > cap {cap}",
                    r.queue_depth_peak
                ));
            }
            if r.completed == 0 {
                violations.push("overload starved the server completely".to_string());
            }
            OverloadChaosRow {
                workload: w,
                config: choice.label(),
                arrivals: r.arrivals,
                completed: r.completed,
                nic_dropped: r.nic_dropped,
                shed: r.rejected + r.shed_oldest + r.shed_probabilistic,
                deadline_cancelled: r.deadline_cancelled,
                p999: run.latency.p999,
                queue_depth_peak: r.queue_depth_peak,
                admission_cap: cap,
                violations,
            }
        })
        .collect()
}

/// Requests driven through the exhausted-deadline row.
const DEADLINE_REQUESTS: u64 = 16;

/// The `exhausted-deadline` chaos row: a request that burns its whole
/// retry budget past its deadline must surface as
/// [`pk_kernel::KernelError::Timeout`] — *not* its last transient
/// error, which would invite the retry amplification the deadline
/// forbids — and must uncharge its admission slot on the way out.
#[derive(Debug, Clone)]
pub struct DeadlineChaosRow {
    /// Requests driven into the permanently-failing downstream.
    pub requests: u64,
    /// Requests that surfaced `Timeout`, as required.
    pub timeouts: u64,
    /// Admission-queue depth after the storm (must be 0).
    pub depth_after: u32,
    /// Requests admitted across the row.
    pub admitted: u64,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl DeadlineChaosRow {
    /// Whether the row passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the exhausted-deadline row: [`DEADLINE_REQUESTS`] requests hit
/// a downstream that fails transiently on every attempt, under a
/// deadline budget smaller than the first retry backoff. Every request
/// must come back `Timeout` with the admission queue fully drained;
/// one recovery request afterwards proves the queue still serves.
pub fn run_exhausted_deadline(seed: u64) -> DeadlineChaosRow {
    use pk_fault::RetryPolicy;
    use pk_kernel::KernelError;
    use pk_serve::{serve_with_deadline, AdmissionQueue};

    let queue = AdmissionQueue::new(4);
    let mut timeouts = 0u64;
    let mut violations = Vec::new();
    for req in 0..DEADLINE_REQUESTS {
        let out = serve_with_deadline(&queue, RetryPolicy::DEFAULT, seed, req, 10, |_| {
            // A downstream stuck in backpressure: transient every time.
            Err::<(), _>(KernelError::Net(pk_net::NetError::Backpressure))
        });
        match out {
            Err(KernelError::Timeout) => timeouts += 1,
            Err(e) => violations.push(format!(
                "request {req} leaked its last transient error: {e}"
            )),
            Ok(()) => violations.push(format!("request {req} cannot have succeeded")),
        }
        if queue.depth() != 0 {
            violations.push(format!(
                "request {req} left its admission slot charged (depth {})",
                queue.depth()
            ));
        }
    }
    if timeouts != DEADLINE_REQUESTS {
        violations.push(format!(
            "only {timeouts} of {DEADLINE_REQUESTS} dead requests surfaced Timeout"
        ));
    }
    // The queue must still serve once the downstream recovers.
    match serve_with_deadline(
        &queue,
        RetryPolicy::DEFAULT,
        seed,
        DEADLINE_REQUESTS,
        10,
        |_| Ok::<_, pk_kernel::KernelError>(()),
    ) {
        Ok(()) => {}
        Err(e) => violations.push(format!("recovery request failed: {e}")),
    }
    if queue.depth() != 0 {
        violations.push(format!(
            "queue not drained after recovery (depth {})",
            queue.depth()
        ));
    }
    DeadlineChaosRow {
        requests: DEADLINE_REQUESTS,
        timeouts,
        depth_after: queue.depth(),
        admitted: queue.admitted(),
        violations,
    }
}

/// VFS operations per RCU overflow soak.
const RCU_CHURN_OPS: usize = 600;
/// Force a deferred-queue spill on every Nth `call_rcu`.
const RCU_OVERFLOW_EVERY: u64 = 17;

/// Outcome of the RCU deferred-queue overflow soak: `rcu.*` counter
/// deltas (read through the kernel's observability snapshot) plus the
/// leak/double-free verdict.
#[derive(Debug, Clone)]
pub struct RcuChaosReport {
    /// Kernel config label (`stock` / `PK`).
    pub config: &'static str,
    /// `rcu.defer_overflow` injections (forced spills).
    pub injected: u64,
    /// Blocking spills the queues actually took.
    pub spills: u64,
    /// Objects retired through `call_rcu` during the soak.
    pub call_rcu: u64,
    /// Deferred objects reclaimed by the end (post-barrier).
    pub freed: u64,
    /// Deferred objects still queued after `rcu_barrier` (must be 0).
    pub pending_after_barrier: u64,
    /// Invariant violations (empty = pass: no leak, no double-free).
    pub violations: Vec<String>,
}

impl RcuChaosReport {
    /// Whether the soak passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reads an `rcu.*` counter out of an observability snapshot.
fn rcu_sample(snap: &pk_obs::Snapshot, name: &str) -> u64 {
    match snap.find(name).map(|s| &s.value) {
        Some(pk_obs::MetricValue::Counter(v)) => *v,
        Some(pk_obs::MetricValue::Gauge(v)) => u64::try_from(*v).unwrap_or(0),
        _ => 0,
    }
}

/// Soaks the deferred-reclamation machinery under forced queue spills.
///
/// Arms a `rcu.defer_overflow` fault point as the RCU spill probe, so
/// every [`RCU_OVERFLOW_EVERY`]th `call_rcu` is forced down the
/// blocking overflow path mid-churn, then drives dcache and mount-table
/// write traffic through a real kernel and checks — via the kernel's
/// `rcu.*` observability samples — that every retired object was freed
/// exactly once: `call_rcu == deferred_freed` after the final barrier,
/// with nothing left pending.
///
/// Single-threaded and seeded like the other soaks: the injection
/// trace, and therefore every counter delta, replays from the seed.
pub fn run_rcu_overflow(choice: KernelChoice, cores: usize, seed: u64) -> RcuChaosReport {
    use pk_sync::rcu;

    let kernel = Kernel::new(choice.config(cores));
    // Start from drained queues so the pending gauge reads 0-based.
    rcu::rcu_barrier();
    let before = kernel.obs_snapshot();

    let plane = Arc::new(FaultPlane::with_seed(seed));
    plane.set(
        "rcu.defer_overflow",
        FaultSchedule::EveryNth(RCU_OVERFLOW_EVERY),
    );
    plane.enable();
    let point = plane.point("rcu.defer_overflow");
    rcu::set_spill_probe(Some(Arc::new(move || point.should_inject())));

    let vfs = kernel.vfs();
    let churn = || -> Result<(), pk_vfs::VfsError> {
        vfs.mkdir_p("/tmp", CoreId(0))?;
        for i in 0..RCU_CHURN_OPS {
            let core = CoreId(i % cores);
            let path = format!("/tmp/f{}", i % 32);
            vfs.write_file(&path, b"x", core)?;
            vfs.unlink(&path, core)?;
            if i.is_multiple_of(16) {
                vfs.mounts().mount("/mnt");
                vfs.mounts().umount("/mnt");
            }
        }
        Ok(())
    };
    let outcome = catch_unwind(AssertUnwindSafe(churn));

    // Always restore the global probe before judging the run.
    rcu::set_spill_probe(None);
    plane.disable();
    rcu::rcu_barrier();
    let after = kernel.obs_snapshot();

    let delta = |name: &str| rcu_sample(&after, name) - rcu_sample(&before, name);
    let injected = plane.injected_total();
    let call_rcu = delta("rcu.call_rcu");
    let freed = delta("rcu.deferred_freed");
    let spills = delta("rcu.spills");
    let pending_after_barrier = rcu_sample(&after, "rcu.deferred_pending");

    let mut violations = Vec::new();
    if outcome.is_err() {
        violations.push("churn panicked under forced spills".to_string());
    }
    if call_rcu == 0 {
        violations.push("no call_rcu traffic: soak exercised nothing".to_string());
    }
    if injected == 0 {
        violations.push("rcu.defer_overflow never fired".to_string());
    }
    if spills < injected {
        violations.push(format!(
            "forced overflows lost: {injected} injected but only {spills} spills"
        ));
    }
    if pending_after_barrier != 0 {
        violations.push(format!(
            "leak: {pending_after_barrier} deferred objects survived rcu_barrier"
        ));
    }
    if call_rcu != freed {
        violations.push(format!(
            "reclamation imbalance: {call_rcu} retired != {freed} freed \
             (leak if under, double-free if over)"
        ));
    }
    RcuChaosReport {
        config: choice.label(),
        injected,
        spills,
        call_rcu,
        freed,
        pending_after_barrier,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_mix_names_only_registered_points() {
        // Guard against typos: arming a misspelled point would silently
        // inject nothing.
        let known = [
            "mm.alloc_enomem",
            "mm.freelist_exhausted",
            "net.rx_drop",
            "net.link_flap",
            "vfs.dentry_alloc",
            "vfs.dcache_pressure",
            "proc.fork_fail",
            "sim.lock_holder_preempt",
            "sim.core_stall",
        ];
        for mix in [FaultMix::acceptance(), FaultMix::heavy()] {
            for (name, _) in &mix.points {
                assert!(known.contains(name), "unknown fault point {name}");
            }
        }
    }

    #[test]
    fn overload_chaos_sheds_and_accounts_under_packet_loss() {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let rows = overload_chaos(choice, 4, 42);
            assert_eq!(rows.len(), pk_serve::SERVING.len());
            for r in &rows {
                assert!(
                    r.passed(),
                    "{}/{}: {:?}",
                    r.workload,
                    r.config,
                    r.violations
                );
                assert!(r.nic_dropped > 0, "{}: rx-drop must fire", r.workload);
                assert!(r.shed > 0, "{}: 2x overload must shed", r.workload);
            }
            // Same seed → identical rows: the soak replays.
            let again = overload_chaos(choice, 4, 42);
            for (a, b) in rows.iter().zip(&again) {
                assert_eq!(a.completed, b.completed);
                assert_eq!(a.nic_dropped, b.nic_dropped);
                assert_eq!(a.p999, b.p999);
            }
        }
    }

    #[test]
    fn exhausted_deadline_row_surfaces_timeout_and_drains() {
        let r = run_exhausted_deadline(42);
        assert!(r.passed(), "{:?}", r.violations);
        assert_eq!(r.timeouts, r.requests);
        assert_eq!(r.depth_after, 0);
        // Every dead request plus the recovery request took a slot.
        assert_eq!(r.admitted, r.requests + 1);
    }

    #[test]
    fn rcu_overflow_soak_balances_and_replays() {
        let _serial = crate::rcu_serial();
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let r = run_rcu_overflow(choice, 4, 7);
            assert!(r.passed(), "{}: {:?}", r.config, r.violations);
            assert!(r.injected > 0 && r.spills >= r.injected);
            assert_eq!(r.call_rcu, r.freed, "every retirement freed exactly once");
            // Same seed → identical injection counts: the soak replays.
            let again = run_rcu_overflow(choice, 4, 7);
            assert_eq!(again.injected, r.injected);
            assert_eq!(again.call_rcu, r.call_rcu);
        }
    }

    #[test]
    fn adaptive_chaos_converges_and_replays() {
        let rows = adaptive_chaos(8, 7);
        assert_eq!(rows.len(), roster::NAMES.len());
        for r in &rows {
            assert!(r.passed(), "{}: {:?}", r.workload, r.violations);
            assert!(r.converged, "{}: wedged under faults", r.workload);
            assert!(r.max_flips <= 3, "{}: flapped", r.workload);
        }
        // Faults fire somewhere in the roster (workloads whose stations
        // are pure delays may see none).
        assert!(rows.iter().any(|r| r.faults_injected > 0));
        // Same seed → identical rows: the soak replays.
        let again = adaptive_chaos(8, 7);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.faulted_promoted, b.faulted_promoted);
            assert_eq!(a.epochs, b.epochs);
            assert_eq!(a.faults_injected, b.faults_injected);
        }
    }

    #[test]
    fn des_chaos_degrades_but_stays_positive() {
        let rows = des_chaos(KernelChoice::Pk, 8, 7);
        assert_eq!(rows.len(), roster::NAMES.len());
        for r in &rows {
            assert!(r.faults_injected > 0, "{}: no faults fired", r.workload);
            assert!(
                r.faulted_ops_per_cycle > 0.0,
                "{}: simulation starved",
                r.workload
            );
            // Faults never make a model faster (small measurement-window
            // jitter aside); workloads whose bottleneck is a delay
            // station may show ~0 loss.
            assert!(
                r.degradation_pct() > -2.0,
                "{}: faults sped the model up: {:.2}%",
                r.workload,
                r.degradation_pct()
            );
        }
        assert!(
            rows.iter().any(|r| r.degradation_pct() > 0.5),
            "no workload showed clear preemption cost"
        );
    }
}
