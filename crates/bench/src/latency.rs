//! Tail latency under overload (`latency_report`).
//!
//! Runs the serving roster as open-loop servers across the
//! {stock, PK} × {no-shed, shed} × {normal, 2× overload} grid and
//! derives the two claims the serving layer exists to make:
//!
//! 1. **Inversion** — at the same absolute arrival rate (anchored to
//!    the PK kernel's saturation capacity), the stock kernel's p999
//!    blows past PK's. The paper's throughput collapse, transposed to
//!    latency: a kernel that saturates earlier queues earlier.
//! 2. **Shedding bounds the tail** — at 2× overload, the bounded
//!    admission queue + drop-newest + deadline propagation keeps p999
//!    within a small multiple of the SLO *and* keeps goodput near
//!    capacity, while the unbounded "observe-only" posture diverges
//!    (the queue grows without bound and p999 with it).
//!
//! Both are derived from the runs, not asserted as constants — if the
//! engine stops reproducing them, `latency_report` exits non-zero.

use pk_fault::FaultPlane;
use pk_serve::{run_serving, ServeRun, SERVING};
use pk_workloads::KernelChoice;

/// Core count for every serving run: past the paper's single-socket
/// knee, small enough that the grid stays sub-second.
pub const CORES: usize = 8;
/// Target arrivals per run: enough completions that p999 is read from
/// a populated tail bucket.
pub const REQUESTS: u64 = 4_000;
/// The healthy-load arm, percent of PK saturation capacity.
pub const NORMAL_LOAD_PCT: u32 = 60;
/// The overload arm: arrivals at twice what the machine can serve.
pub const OVERLOAD_PCT: u32 = 200;

/// The inversion must show on at least this many serving workloads.
pub const INVERSION_MIN_WORKLOADS: usize = 2;
/// Shed-arm p999 bound, as a multiple of the workload's SLO budget.
pub const SHED_P999_SLO_MULT: u64 = 2;
/// Shed-arm goodput floor, as a fraction of saturation capacity.
pub const SHED_GOODPUT_FLOOR: f64 = 0.80;
/// Unbounded queue depth at the horizon that counts as divergence
/// under 2× overload, as a fraction of offered requests. At 2× load
/// roughly half the arrivals can never be served, so a healthy
/// divergence signal is a large fraction of [`REQUESTS`].
pub const DIVERGENCE_FLOOR_FRACTION: f64 = 0.25;

/// One grid: every serving workload under both kernels and all three
/// serving postures, one seed.
#[derive(Debug, Clone)]
pub struct LatencyGrid {
    /// The seed every run derives from.
    pub seed: u64,
    /// Cores per run ([`CORES`]).
    pub cores: usize,
    /// All runs, in `SERVING × {stock, pk} × posture` order.
    pub runs: Vec<ServeRun>,
}

/// The three serving postures each (workload, kernel) pair runs.
const POSTURES: [(bool, u32); 3] = [
    (false, NORMAL_LOAD_PCT),
    (false, OVERLOAD_PCT),
    (true, OVERLOAD_PCT),
];

/// Runs the full grid. Deterministic: a pure function of `seed`.
pub fn run_grid(seed: u64) -> LatencyGrid {
    let plane = FaultPlane::disabled();
    let mut runs = Vec::new();
    for w in SERVING {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            for (shed, load) in POSTURES {
                let run = run_serving(w, choice, CORES, shed, load, REQUESTS, seed, &plane)
                    .expect("every SERVING workload has a serving spec");
                assert_eq!(
                    run.result.accounted(),
                    run.result.arrivals,
                    "{w}: arrival accounting leaked"
                );
                runs.push(run);
            }
        }
    }
    LatencyGrid {
        seed,
        cores: CORES,
        runs,
    }
}

impl LatencyGrid {
    /// The one run matching (workload, kernel, posture).
    pub fn find(
        &self,
        workload: &str,
        choice: KernelChoice,
        shed: bool,
        load_pct: u32,
    ) -> &ServeRun {
        self.runs
            .iter()
            .find(|r| {
                r.workload == workload
                    && r.choice == choice
                    && r.policy.is_bounded() == shed
                    && r.load_pct == load_pct
            })
            .expect("grid covers the full cross product")
    }
}

/// One workload's derived verdicts.
#[derive(Debug, Clone)]
pub struct WorkloadVerdict {
    /// Roster name.
    pub workload: &'static str,
    /// Stock p999 at normal load, cycles.
    pub stock_p999: u64,
    /// PK p999 at normal load, cycles.
    pub pk_p999: u64,
    /// `stock_p999 > pk_p999` at the same absolute arrival rate.
    pub inverted: bool,
    /// PK shed-arm p999 at 2× overload, cycles.
    pub shed_p999: u64,
    /// The p999 ceiling the shed arm must stay under, cycles.
    pub shed_p999_bound: u64,
    /// PK shed-arm goodput at 2× overload, fraction of capacity.
    pub shed_goodput: f64,
    /// PK no-shed queue depth at the horizon under 2× overload.
    pub noshed_queue_end: u64,
    /// The depth that counts as divergence.
    pub divergence_floor: u64,
    /// Shed p999 bounded AND goodput held AND the unbounded queue
    /// diverged — the three-way contrast that makes shedding earn
    /// its complexity.
    pub shed_holds: bool,
}

/// The grid's derived assertions — the CI gate.
#[derive(Debug, Clone)]
pub struct OverloadAssertions {
    /// Per-workload verdicts, in `SERVING` order.
    pub verdicts: Vec<WorkloadVerdict>,
    /// Workloads showing the stock-vs-PK p999 inversion.
    pub inversions: usize,
    /// `inversions >= INVERSION_MIN_WORKLOADS`.
    pub inversion_observed: bool,
    /// Every workload's shed arm held its bound, goodput, and contrast.
    pub shedding_bounds_tail: bool,
}

impl OverloadAssertions {
    /// Whether both headline claims held.
    pub fn ok(&self) -> bool {
        self.inversion_observed && self.shedding_bounds_tail
    }
}

/// Derives the verdicts from a grid.
pub fn assess(grid: &LatencyGrid) -> OverloadAssertions {
    let verdicts: Vec<WorkloadVerdict> = SERVING
        .iter()
        .map(|w| {
            let stock = grid.find(w, KernelChoice::Stock, false, NORMAL_LOAD_PCT);
            let pk = grid.find(w, KernelChoice::Pk, false, NORMAL_LOAD_PCT);
            let shed = grid.find(w, KernelChoice::Pk, true, OVERLOAD_PCT);
            let noshed = grid.find(w, KernelChoice::Pk, false, OVERLOAD_PCT);
            let shed_p999_bound = shed.slo_budget_cycles * SHED_P999_SLO_MULT;
            let divergence_floor = (REQUESTS as f64 * DIVERGENCE_FLOOR_FRACTION) as u64;
            let shed_goodput = shed.goodput_fraction();
            let shed_holds = shed.latency.p999 <= shed_p999_bound
                && shed_goodput >= SHED_GOODPUT_FLOOR
                && noshed.result.queue_depth_end >= divergence_floor;
            WorkloadVerdict {
                workload: w,
                stock_p999: stock.latency.p999,
                pk_p999: pk.latency.p999,
                inverted: stock.latency.p999 > pk.latency.p999,
                shed_p999: shed.latency.p999,
                shed_p999_bound,
                shed_goodput,
                noshed_queue_end: noshed.result.queue_depth_end,
                divergence_floor,
                shed_holds,
            }
        })
        .collect();
    let inversions = verdicts.iter().filter(|v| v.inverted).count();
    OverloadAssertions {
        inversion_observed: inversions >= INVERSION_MIN_WORKLOADS,
        shedding_bounds_tail: verdicts.iter().all(|v| v.shed_holds),
        inversions,
        verdicts,
    }
}

/// One workload's trace-ring health check: the PK serving network run
/// through the flow engine with a tracer sized by the documented rule
/// ([`pk_sim::flow_ring_capacity`]), reporting what each track dropped.
/// A non-zero drop count means some request's span tree is missing
/// events — downstream folds would silently under-attribute — so
/// `latency_report` warns loudly and `tail_report` refuses to run.
#[derive(Debug, Clone)]
pub struct RingHealth {
    /// Roster workload name.
    pub workload: &'static str,
    /// Events captured across all tracks.
    pub events: usize,
    /// Total ring drops (must be zero for complete span trees).
    pub dropped_total: u64,
    /// Drops per track; track [`CORES`] is the admission track.
    pub dropped_by_track: Vec<u64>,
}

/// Runs the normal-load traced flow for every serving workload and
/// reports ring health. Deterministic per seed.
pub fn trace_ring_health(seed: u64) -> Vec<RingHealth> {
    use pk_serve::run_serving_flow;
    use pk_sim::flow_ring_capacity;
    use pk_trace::Tracer;
    SERVING
        .iter()
        .map(|w| {
            let net = pk_workloads::roster::model(w, KernelChoice::Pk)
                .expect("serving workload resolves")
                .network(CORES);
            let tracer = Tracer::new(
                CORES + 1,
                flow_ring_capacity(REQUESTS, CORES, net.stations().len()),
            );
            run_serving_flow(
                w,
                &net,
                CORES,
                false,
                NORMAL_LOAD_PCT,
                REQUESTS,
                seed,
                Some(&tracer),
            )
            .expect("serving spec exists");
            let dropped_total = tracer.dropped();
            let dropped_by_track = tracer.dropped_by_track();
            RingHealth {
                workload: w,
                events: tracer.drain().len(),
                dropped_total,
                dropped_by_track,
            }
        })
        .collect()
}

/// Renders the per-run latency table, one row per run.
pub fn table(grid: &LatencyGrid) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>6} {:>8} {:>5} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9}",
        "workload",
        "kernel",
        "posture",
        "load",
        "arrivals",
        "completed",
        "p50",
        "p99",
        "p999",
        "sloviol",
        "shed",
        "queue_end"
    );
    for r in &grid.runs {
        let shed_total = r.result.rejected + r.result.shed_oldest + r.result.shed_probabilistic;
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>8} {:>4}% {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9}",
            r.workload,
            r.choice.label(),
            if r.policy.is_bounded() {
                "shed"
            } else {
                "no-shed"
            },
            r.load_pct,
            r.result.arrivals,
            r.result.completed,
            r.latency.p50,
            r.latency.p99,
            r.latency.p999,
            r.result.slo_violations,
            shed_total,
            r.result.queue_depth_end
        );
    }
    out
}

/// Renders the deterministic JSON artifact: fixed key order, fixed
/// 6-decimal float formatting, runs in grid order — byte-identical
/// for a fixed seed.
pub fn report_json(grid: &LatencyGrid, asserts: &OverloadAssertions) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {},", grid.seed);
    let _ = writeln!(out, "  \"cores\": {},", grid.cores);
    let _ = writeln!(out, "  \"requests\": {REQUESTS},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in grid.runs.iter().enumerate() {
        let comma = if i + 1 == grid.runs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"kernel\": \"{}\", \"posture\": \"{}\", \
             \"load_pct\": {}, \"slo_cycles\": {}, \"arrivals\": {}, \"completed\": {}, \
             \"p50\": {}, \"p99\": {}, \"p999\": {}, \"slo_violations\": {}, \
             \"rejected\": {}, \"shed_oldest\": {}, \"shed_probabilistic\": {}, \
             \"deadline_cancelled\": {}, \"degraded\": {}, \"queue_depth_end\": {}, \
             \"queue_depth_peak\": {}, \"distinct_users\": {}, \"new_connections\": {}, \
             \"goodput_fraction\": {:.6}}}{comma}",
            r.workload,
            r.choice.label(),
            if r.policy.is_bounded() {
                "shed"
            } else {
                "no-shed"
            },
            r.load_pct,
            r.slo_budget_cycles,
            r.result.arrivals,
            r.result.completed,
            r.latency.p50,
            r.latency.p99,
            r.latency.p999,
            r.result.slo_violations,
            r.result.rejected,
            r.result.shed_oldest,
            r.result.shed_probabilistic,
            r.result.deadline_cancelled,
            r.result.degraded,
            r.result.queue_depth_end,
            r.result.queue_depth_peak,
            r.result.distinct_users,
            r.result.new_connections,
            r.goodput_fraction()
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"verdicts\": [\n");
    for (i, v) in asserts.verdicts.iter().enumerate() {
        let comma = if i + 1 == asserts.verdicts.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"stock_p999\": {}, \"pk_p999\": {}, \
             \"inverted\": {}, \"shed_p999\": {}, \"shed_p999_bound\": {}, \
             \"shed_goodput\": {:.6}, \"noshed_queue_end\": {}, \"divergence_floor\": {}, \
             \"shed_holds\": {}}}{comma}",
            v.workload,
            v.stock_p999,
            v.pk_p999,
            v.inverted,
            v.shed_p999,
            v.shed_p999_bound,
            v.shed_goodput,
            v.noshed_queue_end,
            v.divergence_floor,
            v.shed_holds
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"inversions\": {}, \"inversion_observed\": {}, \
         \"shedding_bounds_tail\": {}, \"ok\": {}}}",
        asserts.inversions,
        asserts.inversion_observed,
        asserts.shedding_bounds_tail,
        asserts.ok()
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_cross_product_and_both_claims_hold() {
        let grid = run_grid(42);
        assert_eq!(grid.runs.len(), SERVING.len() * 2 * POSTURES.len());
        let asserts = assess(&grid);
        assert!(
            asserts.inversion_observed,
            "stock p999 must blow past PK on >= {INVERSION_MIN_WORKLOADS} workloads: {:?}",
            asserts
                .verdicts
                .iter()
                .map(|v| (v.workload, v.stock_p999, v.pk_p999))
                .collect::<Vec<_>>()
        );
        assert!(
            asserts.shedding_bounds_tail,
            "shed arm must bound p999, hold goodput, and contrast a diverging \
             unbounded queue: {:?}",
            asserts
                .verdicts
                .iter()
                .map(|v| (
                    v.workload,
                    v.shed_p999,
                    v.shed_p999_bound,
                    v.shed_goodput,
                    v.noshed_queue_end
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ring_sizing_rule_covers_the_serving_captures() {
        for h in trace_ring_health(42) {
            assert!(h.events > 0, "{}: capture is empty", h.workload);
            assert_eq!(
                h.dropped_total, 0,
                "{}: flow_ring_capacity must cover the run, dropped {:?}",
                h.workload, h.dropped_by_track
            );
        }
    }

    #[test]
    fn report_json_is_deterministic_and_shaped() {
        let run = || {
            let grid = run_grid(42);
            let asserts = assess(&grid);
            report_json(&grid, &asserts)
        };
        let a = run();
        assert_eq!(a, run(), "artifact must be byte-identical per seed");
        assert!(a.contains("\"seed\": 42"));
        assert!(a.contains("\"workload\": \"memcached\""));
        assert!(a.contains("\"assertions\""));
        assert!(!table(&run_grid(42)).is_empty());
    }
}
