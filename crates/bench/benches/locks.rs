//! Microbenchmarks of the lock zoo (section 4.1): uncontended
//! acquire/release cost of each design.

use criterion::{criterion_group, criterion_main, Criterion};
use pk_sync::{AdaptiveMutex, McsLock, SeqLock, SpinLock, TicketLock};
use std::hint::black_box;

fn bench_uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_uncontended");
    let spin = SpinLock::new(0u64);
    g.bench_function("spinlock(TAS)", |b| b.iter(|| *spin.lock() += 1));
    let ticket = TicketLock::new(0u64);
    g.bench_function("ticket", |b| b.iter(|| *ticket.lock() += 1));
    let mcs = McsLock::new(0u64);
    g.bench_function("mcs", |b| b.iter(|| *mcs.lock() += 1));
    let adaptive = AdaptiveMutex::new(0u64);
    g.bench_function("adaptive-mutex", |b| b.iter(|| *adaptive.lock() += 1));
    let std_mutex = std::sync::Mutex::new(0u64);
    g.bench_function("std::sync::Mutex (reference)", |b| {
        b.iter(|| *std_mutex.lock().unwrap() += 1)
    });
    g.finish();
}

fn bench_seqlock(c: &mut Criterion) {
    let mut g = c.benchmark_group("seqlock");
    let sl = SeqLock::new((1u64, 2u64));
    g.bench_function("read", |b| b.iter(|| black_box(sl.read())));
    g.bench_function("write", |b| b.iter(|| *sl.write() = (3, 4)));
    g.finish();
}

fn bench_rcu(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcu");
    let cell = pk_sync::rcu::RcuCell::new(42u64);
    g.bench_function("read_lock+deref", |b| {
        b.iter(|| {
            let guard = pk_sync::rcu::read_lock();
            black_box(*cell.read(&guard))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_uncontended, bench_seqlock, bench_rcu
}
criterion_main!(benches);
