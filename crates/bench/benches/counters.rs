//! Microbenchmarks of the counter designs (section 4.3): atomic vs
//! sloppy vs SNZI vs distributed vs approximate, on the fast path and on
//! the expensive exact read.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk_percpu::CoreId;
use pk_sloppy::{
    ApproxCounter, AtomicCounter, Counter, DistributedCounter, SloppyCounter, SnziCounter,
};
use std::hint::black_box;

fn counters(cores: usize) -> Vec<Box<dyn Counter>> {
    vec![
        Box::new(AtomicCounter::new()),
        Box::new(DistributedCounter::new(cores)),
        Box::new(ApproxCounter::new(cores, 16)),
        Box::new(SloppyCounter::new(cores)),
        Box::new(SnziCounter::new(cores)),
    ]
}

fn bench_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_inc_dec");
    for counter in counters(48) {
        // Warm one spare so the sloppy counter's steady state is local.
        counter.add(CoreId(0), 1);
        counter.add(CoreId(0), -1);
        g.bench_function(BenchmarkId::from_parameter(counter.name()), |b| {
            b.iter(|| {
                counter.add(CoreId(0), 1);
                counter.add(CoreId(0), -1);
            })
        });
    }
    g.finish();
}

fn bench_exact_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_exact_read");
    for counter in counters(48) {
        for core in 0..48 {
            counter.add(CoreId(core), 3);
        }
        g.bench_function(BenchmarkId::from_parameter(counter.name()), |b| {
            b.iter(|| black_box(counter.value()))
        });
    }
    g.finish();
}

fn bench_nonzero_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_is_nonzero");
    for counter in counters(48) {
        counter.add(CoreId(7), 1);
        g.bench_function(BenchmarkId::from_parameter(counter.name()), |b| {
            b.iter(|| black_box(counter.is_nonzero()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_fast_path, bench_exact_read, bench_nonzero_query
}
criterion_main!(benches);
