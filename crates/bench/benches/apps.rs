//! Application-level microbenchmarks over the real kernel substrate:
//! the per-operation cost of each MOSBENCH-style op on one core, stock
//! vs PK. (Cross-core scalability is the simulator's job; these measure
//! the straight-line price of the two kernels' code paths.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk_percpu::CoreId;
use pk_workloads::exim::EximDriver;
use pk_workloads::gmake_exec::{BuildGraph, ParallelMake};
use pk_workloads::memcached::MemcachedDriver;
use pk_workloads::KernelChoice;
use std::sync::Arc;

fn bench_exim_message(c: &mut Criterion) {
    let mut g = c.benchmark_group("exim_message");
    g.sample_size(20);
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        let d = EximDriver::new(choice, 4).expect("boot exim");
        let conn = d.kernel().fork(pk_proc::Pid(1), CoreId(0)).unwrap();
        let mut msg = 0u64;
        g.bench_function(BenchmarkId::from_parameter(choice.label()), |b| {
            b.iter(|| {
                msg += 1;
                d.deliver_message(CoreId(0), conn, msg, (msg % 8) as usize)
                    .unwrap();
            })
        });
    }
    g.finish();
}

fn bench_memcached_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("memcached_batch20");
    g.sample_size(20);
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        let d = MemcachedDriver::new(choice, 4);
        let mut client = 0u32;
        g.bench_function(BenchmarkId::from_parameter(choice.label()), |b| {
            b.iter(|| {
                client += 1;
                d.client_batch(client, (client % 4) as usize);
                d.drain_all()
            })
        });
    }
    g.finish();
}

fn bench_small_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("gmake_build_8_objects");
    g.sample_size(20);
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        let kernel = Arc::new(pk_kernel::Kernel::new(choice.config(4)));
        kernel.vfs().mkdir_p("/src", CoreId(0)).unwrap();
        for i in 0..8 {
            kernel
                .vfs()
                .write_file(&format!("/src/f{i}.c"), b"int x;", CoreId(0))
                .unwrap();
        }
        let graph = BuildGraph::kernel_build(8);
        let make = ParallelMake::new(4);
        g.bench_function(BenchmarkId::from_parameter(choice.label()), |b| {
            b.iter(|| make.build(&kernel, &graph).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_exim_message, bench_memcached_batch, bench_small_build
}
criterion_main!(benches);
