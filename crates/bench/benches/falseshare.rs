//! Microbenchmark of the struct-page false-sharing fix (section 4.6):
//! a reader of `flags` next to a writer of `refcount`, packed vs split
//! layouts. (On a multi-core host the packed layout's reader slows down
//! dramatically; the structure of the benchmark is identical here.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk_mm::page::{PackedPage, PageLayout, SplitPage};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bench_layout<P: PageLayout + 'static>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
) {
    let page = Arc::new(P::default());
    let stop = Arc::new(AtomicBool::new(false));
    // A background writer hammers the refcount while we time flag reads.
    let writer = {
        let page = Arc::clone(&page);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                page.bump_refcount();
            }
        })
    };
    g.bench_function(BenchmarkId::from_parameter(P::name()), |b| {
        b.iter(|| black_box(page.read_flags()))
    });
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

fn bench_false_sharing(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_flags_read_under_refcount_writes");
    bench_layout::<PackedPage>(&mut g);
    bench_layout::<SplitPage>(&mut g);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_false_sharing
}
criterion_main!(benches);
