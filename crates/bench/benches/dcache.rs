//! Microbenchmarks of the dentry cache (section 4.4): locked vs
//! lock-free lookup protocols, hit and miss paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk_percpu::CoreId;
use pk_vfs::{Dcache, DentryKey, InodeId, VfsConfig, VfsStats};
use std::hint::black_box;
use std::sync::Arc;

fn cache(lockfree: bool) -> Dcache {
    let mut cfg = VfsConfig::pk(48);
    cfg.lockfree_dlookup = lockfree;
    let c = Dcache::new(4096, cfg, Arc::new(VfsStats::new()));
    for i in 0..256u64 {
        let d = c
            .insert(
                DentryKey::new(InodeId(1), format!("file{i}")),
                InodeId(100 + i),
                CoreId(0),
            )
            .expect("bench setup insert");
        d.put(CoreId(0));
    }
    c
}

fn bench_lookup_hit(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcache_lookup_hit");
    for lockfree in [false, true] {
        let cache = cache(lockfree);
        let key = DentryKey::new(InodeId(1), "file17");
        let name = if lockfree {
            "lock-free (PK)"
        } else {
            "locked (stock)"
        };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let d = cache.lookup(black_box(&key), CoreId(0)).unwrap();
                d.put(CoreId(0));
            })
        });
    }
    g.finish();
}

fn bench_lookup_miss(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcache_lookup_miss");
    for lockfree in [false, true] {
        let cache = cache(lockfree);
        let key = DentryKey::new(InodeId(1), "no-such-file");
        let name = if lockfree {
            "lock-free (PK)"
        } else {
            "locked (stock)"
        };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(cache.lookup(&key, CoreId(0))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_lookup_hit, bench_lookup_miss
}
criterion_main!(benches);
