//! Microbenchmarks of per-core structures (section 4.5): global vs
//! per-core mount caches and open-file lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pk_percpu::CoreId;
use pk_vfs::{MountTable, SuperBlock, VfsConfig, VfsStats};
use std::hint::black_box;
use std::sync::Arc;

fn bench_mount_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfsmount_resolve");
    for percore in [false, true] {
        let mut cfg = VfsConfig::pk(48);
        cfg.percore_mount_cache = percore;
        let t = MountTable::new(cfg, Arc::new(VfsStats::new()));
        t.mount("/var/spool");
        let name = if percore {
            "per-core cache (PK)"
        } else {
            "central table (stock)"
        };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let m = t
                    .resolve(black_box("/var/spool/input/m1"), CoreId(3))
                    .unwrap();
                m.put(CoreId(3));
            })
        });
    }
    g.finish();
}

fn bench_open_file_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_file_list");
    for percore in [false, true] {
        let mut cfg = VfsConfig::pk(48);
        cfg.percore_open_lists = percore;
        let sb = SuperBlock::new(cfg, Arc::new(VfsStats::new()));
        let name = if percore {
            "per-core lists (PK)"
        } else {
            "global list (stock)"
        };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (id, home) = sb.add_open_file(CoreId(5));
                sb.remove_open_file(id, home, CoreId(5));
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_mount_resolution, bench_open_file_list
}
criterion_main!(benches);
