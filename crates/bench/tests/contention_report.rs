//! Acceptance tests for the contention report: the observability layer
//! must re-derive the paper's Figure-4 diagnosis from measurement, not
//! from a hardcoded table.

use pk_bench::{contention_report, contention_report_des};
use pk_workloads::{roster, KernelChoice};

/// The paper's diagnosis (§5.2.1): on the stock kernel at 48 cores,
/// Exim collapses on the vfsmount-table spin lock.
#[test]
fn exim_stock_48_names_the_vfsmount_lock() {
    let report = contention_report("exim", KernelChoice::Stock, 48).unwrap();
    let top = report.top().expect("non-empty report");
    assert_eq!(top.name, "vfsmount-table lock");
    assert!(
        top.share > 0.3,
        "the collapsed lock dominates the cycle budget: {:.3}",
        top.share
    );
    assert!(
        top.wait_cycles_per_op > top.cycles_per_op * 0.5,
        "most of its cycles are waiting, not work"
    );
    assert!(top.is_system, "the lock is kernel time");
}

/// The discrete-event cross-check reaches the same diagnosis from
/// simulated measurement (queue waits, not analytic residence).
#[test]
fn des_measurement_agrees_on_the_bottleneck() {
    let report = contention_report_des("exim", KernelChoice::Stock, 48, 1_000, 42).unwrap();
    assert_eq!(report.top().unwrap().name, "vfsmount-table lock");
    // The measured line-transfer count for the collapsed lock is large:
    // every handoff moves the line and every waiter polls it.
    let lock = report
        .resources
        .iter()
        .find(|r| r.name == "vfsmount-table lock")
        .unwrap();
    assert!(
        lock.line_transfers > 1.0,
        "contended lock bounces its cache line: {}",
        lock.line_transfers
    );
}

/// After the PK fixes the mount lock disappears from the top of the
/// table (per-core mount caches, Figure 4's fixed curve).
#[test]
fn pk_removes_the_mount_lock_from_the_top() {
    let report = contention_report("exim", KernelChoice::Pk, 48).unwrap();
    assert_ne!(report.top().unwrap().name, "vfsmount-table lock");
}

/// Every roster workload produces a well-formed report at every paper
/// core count extreme.
#[test]
fn all_workloads_report_cleanly() {
    for workload in roster::NAMES {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            for cores in [1, 48] {
                let r = contention_report(workload, choice, cores)
                    .unwrap_or_else(|| panic!("{workload} missing"));
                assert!(!r.resources.is_empty(), "{workload} has stations");
                let share_sum: f64 = r.resources.iter().map(|x| x.share).sum();
                assert!(
                    (share_sum - 1.0).abs() < 1e-9,
                    "{workload}/{}: shares sum to 1, got {share_sum}",
                    choice.label()
                );
            }
        }
    }
}

#[test]
fn unknown_workload_is_none() {
    assert!(contention_report("nethack", KernelChoice::Stock, 48).is_none());
}
