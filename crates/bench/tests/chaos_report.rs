//! Acceptance tests for the chaos soak harness (ISSUE 2):
//! - a fixed seed replays the identical fault trace, byte for byte;
//! - every MOSBENCH driver workload completes under 1% ENOMEM + 1%
//!   NIC-drop with bounded retries, zero panics, and *reported* (not
//!   hidden) throughput degradation.

use pk_bench::chaos::{self, FaultMix};
use pk_fault::RetryPolicy;
use pk_workloads::KernelChoice;

const SEED: u64 = 0xC4A0_5EED;
const WORKLOADS: [&str; 3] = ["exim", "memcached", "apache"];
const CORES: usize = 4;

#[test]
fn fixed_seed_replays_the_identical_fault_trace() {
    let first = chaos::soak(SEED, &WORKLOADS, CORES);
    let second = chaos::soak(SEED, &WORKLOADS, CORES);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.config, b.config);
        // The ordered trace — point names and arrival indices — must
        // match exactly, not merely as a multiset.
        assert_eq!(
            a.trace, b.trace,
            "{}/{}: trace diverged across replays",
            a.workload, a.config
        );
        assert_eq!(a.faulted_ops, b.faulted_ops);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.backoff_cycles, b.backoff_cycles);
    }
    // A different seed must not replay the same decisions everywhere
    // (sanity that the trace actually derives from the seed).
    let other = chaos::soak(SEED ^ 0xFFFF, &WORKLOADS, CORES);
    assert!(
        first.iter().zip(&other).any(|(a, b)| a.trace != b.trace),
        "different seeds produced identical traces for every workload"
    );
}

#[test]
fn every_workload_survives_the_acceptance_mix() {
    let reports = chaos::soak(SEED, &WORKLOADS, CORES);
    // Every workload × both kernel configs ran.
    assert_eq!(reports.len(), WORKLOADS.len() * 2);
    for r in &reports {
        assert!(
            !r.panicked,
            "{}/{} panicked under faults",
            r.workload, r.config
        );
        assert!(
            r.violations.is_empty(),
            "{}/{} violated invariants: {:?}",
            r.workload,
            r.config,
            r.violations
        );
        assert!(
            r.baseline_ops > 0 && r.faulted_ops > 0,
            "{}/{} starved: baseline {} faulted {}",
            r.workload,
            r.config,
            r.baseline_ops,
            r.faulted_ops
        );
        // Retries are bounded by the policy: no request can retry more
        // than max_attempts - 1 times, so the total is bounded by the
        // checked arrival count times the budget.
        let budget = u64::from(RetryPolicy::DEFAULT.max_attempts);
        assert!(
            r.retries <= r.faults_checked.max(1) * budget,
            "{}/{} retried without bound: {} retries",
            r.workload,
            r.config,
            r.retries
        );
        // Degradation is reported, not hidden: the faulted run may not
        // claim more throughput than the fault-free baseline.
        assert!(
            r.faulted_ops <= r.baseline_ops,
            "{}/{} hid its degradation: faulted {} > baseline {}",
            r.workload,
            r.config,
            r.faulted_ops,
            r.baseline_ops
        );
        assert!(r.degradation_pct().is_finite());
    }
    // The mix actually bit somewhere: across the soak at least one
    // fault was injected and at least one retry was charged.
    assert!(reports.iter().any(|r| r.faults_injected > 0));
    assert!(reports
        .iter()
        .any(|r| r.retries > 0 || r.faulted_ops < r.baseline_ops));
}

#[test]
fn heavy_mix_still_cannot_panic_the_drivers() {
    let mix = FaultMix::heavy();
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        for name in WORKLOADS {
            let r = chaos::run_workload(name, choice, CORES, SEED, &mix)
                .expect("driver exists for every named workload");
            assert!(
                !r.panicked,
                "{name}/{:?} panicked under the heavy mix",
                choice
            );
            assert!(
                r.violations.is_empty(),
                "{name}/{choice:?} violated invariants: {:?}",
                r.violations
            );
            assert!(
                r.faults_injected > 0,
                "{name}/{choice:?}: heavy mix never fired"
            );
        }
    }
}
