//! The MapReduce engine.

use pk_mm::{AddressSpace, FaultError, OutOfMemory, PageSize, RegionId};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

/// A MapReduce application: map over input splits, reduce per key.
pub trait MapReduceApp: Sync {
    /// Intermediate/output key.
    type K: Ord + Hash + Clone + Send;
    /// Intermediate value.
    type V: Send;
    /// Reduced output value.
    type Out: Send;

    /// Maps one input split, emitting intermediate pairs.
    fn map(&self, split: &str, emit: &mut dyn FnMut(Self::K, Self::V));

    /// Reduces all values for `key`.
    fn reduce(&self, key: &Self::K, values: Vec<Self::V>) -> Self::Out;
}

/// Hooks the engine's intermediate-table memory into the mm substrate so
/// a run's soft-fault traffic is observable.
#[derive(Clone)]
pub struct MemoryHook {
    /// The address space charged for intermediate tables.
    pub space: Arc<AddressSpace>,
    /// Page size used for table memory (the Figure-11 axis).
    pub page_size: PageSize,
    /// Bytes charged per emitted intermediate pair (models Metis' table
    /// growth; the paper's run builds ~2 GB of tables from a 2 GB file).
    pub bytes_per_pair: u64,
}

impl std::fmt::Debug for MemoryHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHook")
            .field("page_size", &self.page_size)
            .field("bytes_per_pair", &self.bytes_per_pair)
            .finish()
    }
}

/// Engine configuration.
#[derive(Debug, Default)]
pub struct MapReduceConfig {
    /// Number of map/reduce workers (threads).
    pub workers: usize,
    /// Optional mm hook charging table memory to an address space.
    pub memory: Option<MemoryHook>,
}

impl MapReduceConfig {
    /// `workers` workers, no memory hook.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            memory: None,
        }
    }
}

/// Sorted `(key, reduced)` pairs — the result of a full run.
pub type Output<A> = Vec<(<A as MapReduceApp>::K, <A as MapReduceApp>::Out)>;

/// The engine.
#[derive(Debug)]
pub struct MapReduce {
    config: MapReduceConfig,
}

/// Per-worker memory charger: mmaps a growing region and faults pages as
/// pairs are emitted.
struct TableMemory<'h> {
    hook: &'h MemoryHook,
    region: RegionId,
    region_pages: u64,
    next_page: u64,
    bytes_emitted: u64,
    worker: usize,
}

impl<'h> TableMemory<'h> {
    fn new(hook: &'h MemoryHook, worker: usize) -> Self {
        // Metis allocates table memory in large mmap chunks.
        const CHUNK: u64 = 64 << 20;
        let region = hook
            .space
            .mmap(CHUNK, hook.page_size)
            .expect("CHUNK is non-zero");
        Self {
            hook,
            region,
            region_pages: CHUNK.div_ceil(hook.page_size.bytes()),
            next_page: 0,
            bytes_emitted: 0,
            worker,
        }
    }

    fn charge_pair(&mut self) -> Result<(), OutOfMemory> {
        self.bytes_emitted += self.hook.bytes_per_pair;
        // Fault in pages lazily as the table crosses page boundaries.
        while self.bytes_emitted > self.next_page * self.hook.page_size.bytes() {
            if self.next_page >= self.region_pages {
                const CHUNK: u64 = 64 << 20;
                self.region = self
                    .hook
                    .space
                    .mmap(CHUNK, self.hook.page_size)
                    .expect("CHUNK is non-zero");
                self.region_pages = CHUNK.div_ceil(self.hook.page_size.bytes());
                self.next_page = 0;
            }
            match self
                .hook
                .space
                .page_fault(self.region, self.next_page, self.worker)
            {
                Ok(_) => {}
                Err(FaultError::Oom(e)) => return Err(e),
                Err(FaultError::Segfault) => unreachable!("fault inside a freshly mapped region"),
            }
            self.next_page += 1;
        }
        Ok(())
    }
}

impl MapReduce {
    /// Creates an engine.
    pub fn new(config: MapReduceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        Self { config }
    }

    /// Runs `app` over `splits`, returning `(key, reduced)` pairs sorted
    /// by key.
    ///
    /// Phase 1 (map): splits are distributed round-robin over workers;
    /// each worker fills a private hash table (no shared writes). Phase 2
    /// (reduce): keys are partitioned by hash; each worker reduces its
    /// partition. Phase 3 (merge): sorted partitions are concatenated —
    /// the same three-phase shape as Metis.
    ///
    /// When a memory hook is configured and table memory runs out, the
    /// failing worker stops mapping and the first [`OutOfMemory`] is
    /// ferried back through the scope join as a typed error.
    pub fn run<A: MapReduceApp>(
        &self,
        app: &A,
        splits: &[String],
    ) -> Result<Output<A>, OutOfMemory> {
        let workers = self.config.workers;
        // Phase 1: map.
        let tables: Vec<HashMap<A::K, Vec<A::V>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let memory = self.config.memory.as_ref();
                    s.spawn(move || {
                        let mut table: HashMap<A::K, Vec<A::V>> = HashMap::new();
                        let mut mem = memory.map(|h| TableMemory::new(h, w));
                        // `map`'s emit callback cannot return an error, so
                        // the first charge failure is parked here and the
                        // remaining emits (and splits) are skipped.
                        let mut oom: Option<OutOfMemory> = None;
                        for split in splits.iter().skip(w).step_by(workers) {
                            app.map(split, &mut |k, v| {
                                if oom.is_some() {
                                    return;
                                }
                                if let Some(m) = mem.as_mut() {
                                    if let Err(e) = m.charge_pair() {
                                        oom = Some(e);
                                        return;
                                    }
                                }
                                table.entry(k).or_default().push(v);
                            });
                            if oom.is_some() {
                                break;
                            }
                        }
                        match oom {
                            Some(e) => Err(e),
                            None => Ok(table),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Result<Vec<_>, OutOfMemory>>()
        })?;

        // Phase 2: partition by key hash, reduce each partition.
        let mut partitions: Vec<HashMap<A::K, Vec<A::V>>> =
            (0..workers).map(|_| HashMap::new()).collect();
        for table in tables {
            for (k, vs) in table {
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                let p = (h.finish() as usize) % workers;
                partitions[p].entry(k).or_default().extend(vs);
            }
        }
        let mut reduced: Vec<Vec<(A::K, A::Out)>> = std::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    s.spawn(move || {
                        let mut out: Vec<(A::K, A::Out)> = part
                            .into_iter()
                            .map(|(k, vs)| {
                                let r = app.reduce(&k, vs);
                                (k, r)
                            })
                            .collect();
                        out.sort_by(|a, b| a.0.cmp(&b.0));
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Phase 3: merge sorted partitions.
        let mut out = Vec::new();
        for part in reduced.iter_mut() {
            out.append(part);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_mm::{MmConfig, MmStats, NumaAllocator};

    struct Count;

    impl MapReduceApp for Count {
        type K = String;
        type V = u64;
        type Out = u64;

        fn map(&self, split: &str, emit: &mut dyn FnMut(String, u64)) {
            for w in split.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }

        fn reduce(&self, _key: &String, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }
    }

    #[test]
    fn counts_words_across_workers() {
        for workers in [1, 2, 4] {
            let mr = MapReduce::new(MapReduceConfig::with_workers(workers));
            let splits = vec!["a b a".to_string(), "b c".to_string(), "a".to_string()];
            let out = mr.run(&Count, &splits).unwrap();
            assert_eq!(
                out,
                vec![
                    ("a".to_string(), 3),
                    ("b".to_string(), 2),
                    ("c".to_string(), 1)
                ],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let mr = MapReduce::new(MapReduceConfig::with_workers(2));
        assert!(mr.run(&Count, &[]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = MapReduce::new(MapReduceConfig::with_workers(0));
    }

    #[test]
    fn memory_hook_records_faults() {
        let stats = Arc::new(MmStats::new());
        let mut cfg = MmConfig::stock(4);
        cfg.pages_per_node = 1 << 20;
        let alloc = Arc::new(NumaAllocator::new(cfg, Arc::clone(&stats)));
        let space = Arc::new(AddressSpace::new(cfg, alloc, Arc::clone(&stats)));
        let mr = MapReduce::new(MapReduceConfig {
            workers: 2,
            memory: Some(MemoryHook {
                space,
                page_size: PageSize::Base4K,
                bytes_per_pair: 1024,
            }),
        });
        let splits: Vec<String> = (0..8)
            .map(|i| format!("w{} x y z common tokens {}", i, i))
            .collect();
        let out = mr.run(&Count, &splits).unwrap();
        assert!(!out.is_empty());
        assert!(
            stats.faults_4k.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "map phase must fault table pages"
        );
    }

    #[test]
    fn exhausted_table_memory_is_a_typed_error() {
        let stats = Arc::new(MmStats::new());
        let mut cfg = MmConfig::stock(4);
        // Starve the allocator so the map phase's table faults hit OOM.
        cfg.pages_per_node = 1;
        let alloc = Arc::new(NumaAllocator::new(cfg, Arc::clone(&stats)));
        let space = Arc::new(AddressSpace::new(cfg, alloc, Arc::clone(&stats)));
        let mr = MapReduce::new(MapReduceConfig {
            workers: 2,
            memory: Some(MemoryHook {
                space,
                page_size: PageSize::Base4K,
                bytes_per_pair: 64 << 10,
            }),
        });
        let splits: Vec<String> = (0..8)
            .map(|i| format!("w{i} x y z common tokens {i}"))
            .collect();
        assert_eq!(mr.run(&Count, &splits).unwrap_err(), OutOfMemory);
    }
}
