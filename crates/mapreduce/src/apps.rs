//! Ready-made MapReduce applications.

use crate::engine::MapReduceApp;

/// Classic word count: word → occurrence count.
#[derive(Debug, Default, Clone, Copy)]
pub struct WordCount;

impl MapReduceApp for WordCount {
    type K = String;
    type V = u64;
    type Out = u64;

    fn map(&self, split: &str, emit: &mut dyn FnMut(String, u64)) {
        for word in split.split_whitespace() {
            emit(word.to_ascii_lowercase(), 1);
        }
    }

    fn reduce(&self, _key: &String, values: Vec<u64>) -> u64 {
        values.into_iter().sum()
    }
}

/// The paper's Metis workload: an inverted index mapping each word to the
/// sorted list of `(document, position)` pairs it occurs at (§3.7, §5.8).
///
/// Splits are expected as `docid\ttext`; unnumbered splits index as doc 0.
#[derive(Debug, Default, Clone, Copy)]
pub struct InvertedIndex;

impl MapReduceApp for InvertedIndex {
    type K = String;
    type V = (u64, u64);
    type Out = Vec<(u64, u64)>;

    fn map(&self, split: &str, emit: &mut dyn FnMut(String, (u64, u64))) {
        let (doc, text) = match split.split_once('\t') {
            Some((id, text)) => (id.parse().unwrap_or(0), text),
            None => (0, split),
        };
        for (pos, word) in text.split_whitespace().enumerate() {
            emit(word.to_ascii_lowercase(), (doc, pos as u64));
        }
    }

    fn reduce(&self, _key: &String, mut values: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        values.sort_unstable();
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MapReduce, MapReduceConfig};

    #[test]
    fn word_count_normalizes_case() {
        let mr = MapReduce::new(MapReduceConfig::with_workers(2));
        let out = mr.run(&WordCount, &["The the THE".to_string()]).unwrap();
        assert_eq!(out, vec![("the".to_string(), 3)]);
    }

    #[test]
    fn inverted_index_records_positions() {
        let mr = MapReduce::new(MapReduceConfig::with_workers(2));
        let splits = vec!["1\tfoo bar foo".to_string(), "2\tbar".to_string()];
        let out = mr.run(&InvertedIndex, &splits).unwrap();
        let idx: std::collections::HashMap<_, _> = out.into_iter().collect();
        assert_eq!(idx["foo"], vec![(1, 0), (1, 2)]);
        assert_eq!(idx["bar"], vec![(1, 1), (2, 0)]);
    }

    #[test]
    fn inverted_index_default_doc() {
        let mr = MapReduce::new(MapReduceConfig::with_workers(1));
        let out = mr.run(&InvertedIndex, &["only words".to_string()]).unwrap();
        let idx: std::collections::HashMap<_, _> = out.into_iter().collect();
        assert_eq!(idx["only"], vec![(0, 0)]);
        assert_eq!(idx["words"], vec![(0, 1)]);
    }
}
