//! A Metis-like MapReduce library for single multicore servers (§3.7).
//!
//! Metis (\[38\], inspired by Phoenix \[45\]) runs map workers that emit
//! key/value pairs into per-worker hash tables, then reduces each key's
//! value list, then merges sorted partitions. Its kernel-visible
//! behaviour — the part the paper measures — is that workers "allocate
//! large amounts of memory to hold temporary tables, stressing the kernel
//! memory allocator and soft page fault code."
//!
//! This crate implements the real library (usable for word counts,
//! inverted indices, etc.) and optionally charges every intermediate-table
//! growth to a [`pk_mm::AddressSpace`], so the fault traffic of a run is
//! observable and the 4 KB-vs-2 MB super-page comparison of Figure 11 can
//! be reproduced against genuine allocation patterns.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod apps;
mod engine;

pub use apps::{InvertedIndex, WordCount};
pub use engine::{MapReduce, MapReduceApp, MapReduceConfig, MemoryHook};
