//! Reference counting with a sloppy counter: the dentry lifecycle.

use crate::sloppy::{SloppyConfig, SloppyCounter};
use crate::snzi::Snzi;
use pk_percpu::CoreId;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Error returned when deallocation cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeallocError {
    /// The object still has live references after reconciliation.
    InUse {
        /// How many references remain.
        remaining: i64,
    },
    /// The object was already deallocated.
    AlreadyDead,
}

impl fmt::Display for DeallocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InUse { remaining } => {
                write!(f, "object still has {remaining} live references")
            }
            Self::AlreadyDead => f.write_str("object was already deallocated"),
        }
    }
}

impl std::error::Error for DeallocError {}

/// A sloppy reference count with the paper's deallocation protocol.
///
/// This is the structure PK uses for `dentry`, `vfsmount`, and
/// `dst_entry` reference counts (§4.3): gets and puts are core-local in
/// the common case, and the expensive central/per-core reconciliation
/// happens only "when deciding whether an object can be de-allocated" —
/// which is why "sloppy counters should only be used for objects that are
/// relatively infrequently de-allocated."
///
/// The count starts at 1 (the creator's reference), like kernel objects.
///
/// # Examples
///
/// ```
/// use pk_percpu::CoreId;
/// use pk_sloppy::SloppyRefCount;
///
/// let rc = SloppyRefCount::new(4);
/// rc.get(CoreId(1)).unwrap();
/// rc.put(CoreId(2));
/// rc.put(CoreId(0)); // drops the creator's reference
/// assert_eq!(rc.try_dealloc(), Ok(()));
/// assert!(rc.get(CoreId(1)).is_err()); // no resurrection
/// ```
#[derive(Debug)]
pub struct SloppyRefCount {
    counter: SloppyCounter,
    dead: AtomicBool,
    // Serializes the reconcile-and-check against concurrent gets that
    // would otherwise resurrect a zero count (the paper's lock-free
    // protocol falls back to locking when the refcount is 0; this mutex
    // plays that role).
    dealloc: Mutex<()>,
}

impl SloppyRefCount {
    /// Creates a refcount of 1 (the creator's reference) over `cores`.
    pub fn new(cores: usize) -> Self {
        Self::with_config(cores, SloppyConfig::default())
    }

    /// As [`SloppyRefCount::new`] with explicit sloppy-counter tuning.
    pub fn with_config(cores: usize, config: SloppyConfig) -> Self {
        let counter = SloppyCounter::with_config(cores, config);
        // The creator's reference is charged to core 0 by convention,
        // whichever core actually runs the constructor; the object is
        // not shared yet, so this is not a discipline violation.
        let _migrate = pk_lockdep::MigrationScope::enter();
        counter.acquire(CoreId(0), 1);
        Self {
            counter,
            dead: AtomicBool::new(false),
            dealloc: Mutex::new(()),
        }
    }

    /// Acquires one reference on behalf of `core`.
    ///
    /// Fails if the object has already been deallocated (matching the
    /// §4.4 rule: "increment the reference count unless it is 0").
    pub fn get(&self, core: CoreId) -> Result<(), DeallocError> {
        // Fast path: not dead. The dealloc path re-checks under its lock.
        if self.dead.load(Ordering::Acquire) {
            return Err(DeallocError::AlreadyDead);
        }
        self.counter.acquire(core, 1);
        // A dealloc may have completed between the check and the acquire;
        // back out if so.
        if self.dead.load(Ordering::Acquire) {
            self.counter.release(core, 1);
            return Err(DeallocError::AlreadyDead);
        }
        Ok(())
    }

    /// Releases one reference on behalf of `core`.
    pub fn put(&self, core: CoreId) {
        self.counter.release(core, 1);
    }

    /// Attempts to deallocate: reconciles all per-core spares and succeeds
    /// only if no references remain. On success the object is dead and
    /// all future [`SloppyRefCount::get`] calls fail.
    pub fn try_dealloc(&self) -> Result<(), DeallocError> {
        // A panicked holder must not wedge every future dealloc: the
        // guard protects a reconcile-and-check that is safe to rerun.
        let _g = self.dealloc.lock().unwrap_or_else(|e| e.into_inner());
        if self.dead.load(Ordering::Acquire) {
            return Err(DeallocError::AlreadyDead);
        }
        let remaining = self.counter.reconcile();
        if remaining == 0 {
            self.dead.store(true, Ordering::Release);
            Ok(())
        } else {
            Err(DeallocError::InUse { remaining })
        }
    }

    /// Returns whether the object has been deallocated.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Returns the current exact reference count (expensive: reconciling
    /// read across all cores).
    pub fn references(&self) -> i64 {
        self.counter.in_use()
    }

    /// Returns `(central_ops, local_ops)` from the underlying counter.
    pub fn op_counts(&self) -> (u64, u64) {
        self.counter.op_counts()
    }

    /// Degrades the backing counter to central-only mode (see
    /// [`SloppyCounter::degrade_to_central`]).
    pub fn degrade_to_central(&self) {
        self.counter.degrade_to_central();
    }

    /// Resumes per-core banking (see [`SloppyCounter::restore_per_core`]).
    pub fn restore_per_core(&self) {
        self.counter.restore_per_core();
    }

    /// Whether the backing counter is in degraded (central-only) mode.
    pub fn is_degraded(&self) -> bool {
        self.counter.is_degraded()
    }

    /// Retunes the backing counter's banking threshold (see
    /// [`SloppyCounter::set_threshold`]).
    pub fn set_threshold(&self, threshold: i64) {
        self.counter.set_threshold(threshold);
    }
}

/// A SNZI-tree reference count: the generation-2 (§7) backing for
/// objects whose sloppy counters saturate past 48 cores.
///
/// Same lifecycle as [`SloppyRefCount`] — count starts at 1, gets fail
/// after death, deallocation reconciles — but gets and puts drive a
/// [`Snzi`] tree shaped like the machine (per-core leaves, per-socket
/// intermediate nodes), so zero-crossing traffic aggregates per socket
/// instead of all landing on one central word.
#[derive(Debug)]
pub struct SnziRefCount {
    counter: Snzi,
    dead: AtomicBool,
    // Serializes reconcile-and-check against concurrent gets, exactly
    // as in SloppyRefCount.
    dealloc: Mutex<()>,
}

impl SnziRefCount {
    /// Creates a refcount of 1 over `cores` spread across `sockets`.
    pub fn new(cores: usize, sockets: usize) -> Self {
        let counter = Snzi::new(cores, sockets);
        // Creator's reference charged to core 0 by convention; the
        // object is not shared yet.
        let _migrate = pk_lockdep::MigrationScope::enter();
        counter.arrive(CoreId(0), 1);
        Self {
            counter,
            dead: AtomicBool::new(false),
            dealloc: Mutex::new(()),
        }
    }

    /// Acquires one reference on behalf of `core`; fails after death.
    pub fn get(&self, core: CoreId) -> Result<(), DeallocError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(DeallocError::AlreadyDead);
        }
        self.counter.arrive(core, 1);
        if self.dead.load(Ordering::Acquire) {
            self.counter.depart(core, 1);
            return Err(DeallocError::AlreadyDead);
        }
        Ok(())
    }

    /// Releases one reference on behalf of `core`. Cross-socket
    /// releases are fine: the tree tolerates migrated departs.
    pub fn put(&self, core: CoreId) {
        self.counter.depart(core, 1);
    }

    /// Attempts to deallocate: reconciles the tree and succeeds only if
    /// no references remain.
    pub fn try_dealloc(&self) -> Result<(), DeallocError> {
        let _g = self.dealloc.lock().unwrap_or_else(|e| e.into_inner());
        if self.dead.load(Ordering::Acquire) {
            return Err(DeallocError::AlreadyDead);
        }
        let remaining = self.counter.reconcile();
        if remaining == 0 {
            self.dead.store(true, Ordering::Release);
            Ok(())
        } else {
            Err(DeallocError::InUse { remaining })
        }
    }

    /// Whether the object has been deallocated.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// The exact current reference count (expensive: visits every leaf).
    pub fn references(&self) -> i64 {
        self.counter.value()
    }

    /// The cheap liveness probe: true while any reference may remain.
    pub fn maybe_referenced(&self) -> bool {
        self.counter.query()
    }

    /// `(central_ops, local_ops)` from the underlying tree.
    pub fn op_counts(&self) -> (u64, u64) {
        self.counter.op_counts()
    }

    /// Degrades the tree to central-only mode (see
    /// [`Snzi::degrade_to_central`]).
    pub fn degrade_to_central(&self) {
        self.counter.degrade_to_central();
    }

    /// Resumes per-core leaf updates (see [`Snzi::restore_per_core`]).
    pub fn restore_per_core(&self) {
        self.counter.restore_per_core();
    }

    /// Whether the tree is in degraded (central-only) mode.
    pub fn is_degraded(&self) -> bool {
        self.counter.is_degraded()
    }
}

/// A reference count whose backing is chosen at object-creation time:
/// a single shared atomic (the stock kernel), a sloppy counter (PK),
/// or a SNZI tree (PK generation-2, for structures whose sloppy
/// counters saturate at high core counts).
///
/// This is the switch Figure 1 toggles for `dentry`, `vfsmount`, and
/// `dst_entry` objects. All variants expose the same lifecycle so kernel
/// code is oblivious to which one it got — the backwards compatibility
/// that makes sloppy counters deployable piecemeal.
#[derive(Debug)]
pub enum RefCount {
    /// One shared atomic counter; every get/put bounces its cache line.
    Atomic {
        /// The shared count (starts at 1, the creator's reference).
        count: std::sync::atomic::AtomicI64,
        /// Whether the object has been deallocated.
        dead: AtomicBool,
        /// Number of operations performed (all of them shared).
        ops: std::sync::atomic::AtomicU64,
    },
    /// A sloppy counter (PK).
    Sloppy(SloppyRefCount),
    /// A per-socket SNZI tree (PK generation-2).
    Snzi(SnziRefCount),
}

impl RefCount {
    /// Creates an atomic-backed refcount of 1.
    pub fn new_atomic() -> Self {
        Self::Atomic {
            count: std::sync::atomic::AtomicI64::new(1),
            dead: AtomicBool::new(false),
            ops: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Creates a sloppy-backed refcount of 1 over `cores`.
    pub fn new_sloppy(cores: usize) -> Self {
        Self::Sloppy(SloppyRefCount::new(cores))
    }

    /// Creates a SNZI-tree-backed refcount of 1 over `cores` spread
    /// across `sockets`.
    pub fn new_snzi(cores: usize, sockets: usize) -> Self {
        Self::Snzi(SnziRefCount::new(cores, sockets))
    }

    /// Creates the variant selected by `sloppy`.
    pub fn new(sloppy: bool, cores: usize) -> Self {
        if sloppy {
            Self::new_sloppy(cores)
        } else {
            Self::new_atomic()
        }
    }

    /// Picks the backing by fix generation: the SNZI tree when both the
    /// sloppy-counter fix and its generation-2 upgrade are enabled, the
    /// flat sloppy counter under plain PK, the shared atomic otherwise.
    pub fn new_scaled(sloppy: bool, snzi: bool, cores: usize, sockets: usize) -> Self {
        match (sloppy, snzi) {
            (true, true) => Self::new_snzi(cores, sockets),
            (true, false) => Self::new_sloppy(cores),
            (false, _) => Self::new_atomic(),
        }
    }

    /// Acquires a reference on behalf of `core`.
    pub fn get(&self, core: CoreId) -> Result<(), DeallocError> {
        match self {
            Self::Atomic { count, dead, ops } => {
                if dead.load(Ordering::Acquire) {
                    return Err(DeallocError::AlreadyDead);
                }
                ops.fetch_add(1, Ordering::Relaxed);
                count.fetch_add(1, Ordering::AcqRel);
                if dead.load(Ordering::Acquire) {
                    count.fetch_sub(1, Ordering::AcqRel);
                    return Err(DeallocError::AlreadyDead);
                }
                Ok(())
            }
            Self::Sloppy(rc) => rc.get(core),
            Self::Snzi(rc) => rc.get(core),
        }
    }

    /// Releases a reference on behalf of `core`.
    pub fn put(&self, core: CoreId) {
        match self {
            Self::Atomic { count, ops, .. } => {
                ops.fetch_add(1, Ordering::Relaxed);
                count.fetch_sub(1, Ordering::AcqRel);
            }
            Self::Sloppy(rc) => rc.put(core),
            Self::Snzi(rc) => rc.put(core),
        }
    }

    /// Attempts to deallocate (reconciling if sloppy).
    pub fn try_dealloc(&self) -> Result<(), DeallocError> {
        match self {
            Self::Atomic { count, dead, .. } => {
                if dead.load(Ordering::Acquire) {
                    return Err(DeallocError::AlreadyDead);
                }
                match count.compare_exchange(0, 0, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        dead.store(true, Ordering::Release);
                        Ok(())
                    }
                    Err(remaining) => Err(DeallocError::InUse { remaining }),
                }
            }
            Self::Sloppy(rc) => rc.try_dealloc(),
            Self::Snzi(rc) => rc.try_dealloc(),
        }
    }

    /// Returns the exact current reference count (expensive if sloppy).
    pub fn references(&self) -> i64 {
        match self {
            Self::Atomic { count, .. } => count.load(Ordering::Acquire),
            Self::Sloppy(rc) => rc.references(),
            Self::Snzi(rc) => rc.references(),
        }
    }

    /// Returns how many operations touched shared cache lines versus
    /// stayed core-local. For the atomic variant every operation is a
    /// shared (central) operation.
    pub fn op_counts(&self) -> (u64, u64) {
        match self {
            Self::Atomic { ops, .. } => (ops.load(Ordering::Relaxed), 0),
            Self::Sloppy(rc) => rc.op_counts(),
            Self::Snzi(rc) => rc.op_counts(),
        }
    }

    /// Returns whether this refcount is sloppy-backed.
    pub fn is_sloppy(&self) -> bool {
        matches!(self, Self::Sloppy(_))
    }

    /// Sets whether per-core banking is live on a sloppy-backed
    /// refcount: `true` restores per-core banks, `false` degrades to
    /// central-only mode. A no-op on the atomic variant, which has no
    /// banks — this is the promotion lever `pk-adapt` pulls, and it has
    /// to be safe to aim at any object.
    pub fn set_banking(&self, enabled: bool) {
        match self {
            Self::Atomic { .. } => {}
            Self::Sloppy(rc) => {
                if enabled {
                    rc.restore_per_core();
                } else {
                    rc.degrade_to_central();
                }
            }
            Self::Snzi(rc) => {
                if enabled {
                    rc.restore_per_core();
                } else {
                    rc.degrade_to_central();
                }
            }
        }
    }

    /// Whether get/put currently bounce a shared cache line: true for
    /// the atomic variant and for a degraded sloppy counter or tree.
    pub fn is_central_only(&self) -> bool {
        match self {
            Self::Atomic { .. } => true,
            Self::Sloppy(rc) => rc.is_degraded(),
            Self::Snzi(rc) => rc.is_degraded(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_with_one_reference() {
        let rc = SloppyRefCount::new(2);
        assert_eq!(rc.references(), 1);
        assert!(!rc.is_dead());
    }

    #[test]
    fn dealloc_fails_while_referenced() {
        let rc = SloppyRefCount::new(2);
        rc.get(CoreId(1)).unwrap();
        assert_eq!(rc.try_dealloc(), Err(DeallocError::InUse { remaining: 2 }));
        rc.put(CoreId(1));
        rc.put(CoreId(0));
        assert_eq!(rc.try_dealloc(), Ok(()));
        assert_eq!(rc.try_dealloc(), Err(DeallocError::AlreadyDead));
    }

    #[test]
    fn get_after_dealloc_fails() {
        let rc = SloppyRefCount::new(2);
        rc.put(CoreId(0));
        rc.try_dealloc().unwrap();
        assert_eq!(rc.get(CoreId(1)), Err(DeallocError::AlreadyDead));
        assert_eq!(rc.references(), 0, "failed get must not leak");
    }

    #[test]
    fn cross_core_get_put_balances() {
        let rc = SloppyRefCount::new(4);
        rc.get(CoreId(1)).unwrap();
        rc.put(CoreId(3)); // released on a different core
        assert_eq!(rc.references(), 1);
        rc.put(CoreId(0));
        assert_eq!(rc.try_dealloc(), Ok(()));
    }

    #[test]
    fn hot_get_put_stays_core_local() {
        let rc = SloppyRefCount::new(2);
        // Warm up one spare, then hammer get/put on the same core.
        rc.get(CoreId(1)).unwrap();
        rc.put(CoreId(1));
        let (central_before, _) = rc.op_counts();
        for _ in 0..10_000 {
            rc.get(CoreId(1)).unwrap();
            rc.put(CoreId(1));
        }
        let (central_after, _) = rc.op_counts();
        assert_eq!(central_before, central_after);
    }

    #[test]
    fn banking_lever_flips_sloppy_and_ignores_atomic() {
        let rc = RefCount::new_sloppy(4);
        assert!(!rc.is_central_only());
        rc.set_banking(false);
        assert!(rc.is_central_only());
        rc.get(CoreId(2)).unwrap();
        rc.put(CoreId(2));
        rc.set_banking(true);
        assert!(!rc.is_central_only());
        assert_eq!(rc.references(), 1);

        let atomic = RefCount::new_atomic();
        atomic.set_banking(true); // no-op, must not panic
        assert!(atomic.is_central_only());
    }

    #[test]
    fn snzi_refcount_mirrors_sloppy_lifecycle() {
        let rc = SnziRefCount::new(16, 4);
        assert_eq!(rc.references(), 1);
        rc.get(CoreId(5)).unwrap();
        rc.put(CoreId(13)); // cross-socket migration
        assert_eq!(rc.references(), 1);
        assert!(rc.maybe_referenced());
        assert_eq!(rc.try_dealloc(), Err(DeallocError::InUse { remaining: 1 }));
        rc.put(CoreId(0));
        assert_eq!(rc.try_dealloc(), Ok(()));
        assert_eq!(rc.get(CoreId(2)), Err(DeallocError::AlreadyDead));
        assert_eq!(rc.references(), 0, "failed get must not leak");
    }

    #[test]
    fn refcount_snzi_variant_wires_the_lever() {
        let rc = RefCount::new_scaled(true, true, 16, 4);
        assert!(matches!(rc, RefCount::Snzi(_)));
        assert!(!rc.is_central_only());
        rc.set_banking(false);
        assert!(rc.is_central_only());
        rc.get(CoreId(9)).unwrap();
        rc.put(CoreId(2));
        rc.set_banking(true);
        assert!(!rc.is_central_only());
        assert_eq!(rc.references(), 1);
        // Selection table: sloppy without the gen-2 flag stays sloppy,
        // no sloppy at all stays atomic whatever the snzi flag says.
        assert!(matches!(
            RefCount::new_scaled(true, false, 8, 2),
            RefCount::Sloppy(_)
        ));
        assert!(matches!(
            RefCount::new_scaled(false, true, 8, 2),
            RefCount::Atomic { .. }
        ));
    }

    #[test]
    fn concurrent_get_put_then_dealloc() {
        let rc = Arc::new(SloppyRefCount::new(8));
        let handles: Vec<_> = (0..8)
            .map(|core| {
                let rc = Arc::clone(&rc);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        rc.get(CoreId(core)).unwrap();
                        rc.put(CoreId(core));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rc.references(), 1);
        rc.put(CoreId(0));
        assert_eq!(rc.try_dealloc(), Ok(()));
    }
}
