//! Scalable NonZero Indicator (SNZI).

use crate::traits::Counter;
use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// Per-leaf state: an exact count plus a flag recording whether this leaf
/// currently contributes an "arrival" to the root.
#[derive(Debug, Default)]
struct Leaf {
    count: i64,
    arrived_at_root: bool,
}

/// A two-level Scalable NonZero Indicator (\[22\], compared with sloppy
/// counters in §4.3; Solaris incorporates SNZIs).
///
/// A SNZI answers *"is the count nonzero?"* with a read of a single root
/// word, while updates mostly touch per-core leaves: a leaf propagates to
/// the root only when its own count crosses zero. Exact [`Counter::value`]
/// reads must still visit every leaf.
///
/// # Contract
///
/// As in the SNZI paper, departs must be issued from the same leaf (core)
/// as the matching arrives, and a leaf's count must never go negative.
/// [`Counter::add`] panics if a depart would underflow its leaf.
#[derive(Debug)]
pub struct SnziCounter {
    root: AtomicI64,
    leaves: PerCore<Mutex<Leaf>>,
}

impl SnziCounter {
    /// Creates an indicator with one leaf per core.
    pub fn new(cores: usize) -> Self {
        Self {
            root: AtomicI64::new(0),
            leaves: PerCore::new_with(cores, |_| Mutex::new(Leaf::default())),
        }
    }

    /// Records `n` arrivals at `core`'s leaf.
    pub fn arrive(&self, core: CoreId, n: i64) {
        assert!(n >= 0, "arrive count must be non-negative");
        let mut leaf = self.leaves.get(core).lock().unwrap();
        leaf.count += n;
        if leaf.count > 0 && !leaf.arrived_at_root {
            // 0 → positive transition: this leaf now contributes to the
            // root indicator.
            self.root.fetch_add(1, Ordering::AcqRel);
            leaf.arrived_at_root = true;
        }
    }

    /// Records `n` departures from `core`'s leaf.
    ///
    /// # Panics
    ///
    /// Panics if the leaf holds fewer than `n` arrivals (contract
    /// violation: departs must match arrives on the same leaf).
    pub fn depart(&self, core: CoreId, n: i64) {
        assert!(n >= 0, "depart count must be non-negative");
        let mut leaf = self.leaves.get(core).lock().unwrap();
        assert!(
            leaf.count >= n,
            "SNZI contract violation: departing {n} from a leaf holding {}",
            leaf.count
        );
        leaf.count -= n;
        if leaf.count == 0 && leaf.arrived_at_root {
            self.root.fetch_sub(1, Ordering::AcqRel);
            leaf.arrived_at_root = false;
        }
    }

    /// The cheap indicator query: one shared read, no leaf traversal.
    pub fn query(&self) -> bool {
        self.root.load(Ordering::Acquire) > 0
    }
}

impl Counter for SnziCounter {
    fn add(&self, core: CoreId, delta: i64) {
        if delta >= 0 {
            self.arrive(core, delta);
        } else {
            self.depart(core, -delta);
        }
    }

    fn value(&self) -> i64 {
        self.leaves.fold(0, |a, l| a + l.lock().unwrap().count)
    }

    fn is_nonzero(&self) -> bool {
        self.query()
    }

    fn name(&self) -> &'static str {
        "snzi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn indicator_tracks_zero_crossings() {
        let s = SnziCounter::new(4);
        assert!(!s.query());
        s.arrive(CoreId(0), 1);
        assert!(s.query());
        s.arrive(CoreId(1), 2);
        assert!(s.query());
        s.depart(CoreId(0), 1);
        assert!(s.query(), "core 1 still present");
        s.depart(CoreId(1), 2);
        assert!(!s.query());
    }

    #[test]
    fn root_counts_leaves_not_arrivals() {
        let s = SnziCounter::new(2);
        s.arrive(CoreId(0), 100);
        assert_eq!(s.root.load(Ordering::Relaxed), 1);
        s.arrive(CoreId(1), 1);
        assert_eq!(s.root.load(Ordering::Relaxed), 2);
        assert_eq!(s.value(), 101);
    }

    #[test]
    #[should_panic(expected = "contract violation")]
    fn cross_leaf_depart_panics() {
        let s = SnziCounter::new(2);
        s.arrive(CoreId(0), 1);
        s.depart(CoreId(1), 1);
    }

    #[test]
    fn concurrent_sessions_leave_zero() {
        let s = Arc::new(SnziCounter::new(8));
        let handles: Vec<_> = (0..8)
            .map(|core| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        s.arrive(CoreId(core), 1);
                        assert!(s.query());
                        s.depart(CoreId(core), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!s.query());
        assert_eq!(s.value(), 0);
    }
}
