//! Scalable NonZero Indicator (SNZI): the flat two-level
//! [`SnziCounter`] and the topology-aware [`Snzi`] tree.

use crate::traits::Counter;
use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-leaf state: an exact count plus a flag recording whether this leaf
/// currently contributes an "arrival" to the root.
#[derive(Debug, Default)]
struct Leaf {
    count: i64,
    arrived_at_root: bool,
}

/// A two-level Scalable NonZero Indicator (\[22\], compared with sloppy
/// counters in §4.3; Solaris incorporates SNZIs).
///
/// A SNZI answers *"is the count nonzero?"* with a read of a single root
/// word, while updates mostly touch per-core leaves: a leaf propagates to
/// the root only when its own count crosses zero. Exact [`Counter::value`]
/// reads must still visit every leaf.
///
/// # Contract
///
/// As in the SNZI paper, departs must be issued from the same leaf (core)
/// as the matching arrives, and a leaf's count must never go negative.
/// [`Counter::add`] panics if a depart would underflow its leaf.
#[derive(Debug)]
pub struct SnziCounter {
    root: AtomicI64,
    leaves: PerCore<Mutex<Leaf>>,
}

impl SnziCounter {
    /// Creates an indicator with one leaf per core.
    pub fn new(cores: usize) -> Self {
        Self {
            root: AtomicI64::new(0),
            leaves: PerCore::new_with(cores, |_| Mutex::new(Leaf::default())),
        }
    }

    /// Records `n` arrivals at `core`'s leaf.
    pub fn arrive(&self, core: CoreId, n: i64) {
        assert!(n >= 0, "arrive count must be non-negative");
        let mut leaf = self.leaves.get(core).lock().unwrap();
        leaf.count += n;
        if leaf.count > 0 && !leaf.arrived_at_root {
            // 0 → positive transition: this leaf now contributes to the
            // root indicator.
            self.root.fetch_add(1, Ordering::AcqRel);
            leaf.arrived_at_root = true;
        }
    }

    /// Records `n` departures from `core`'s leaf.
    ///
    /// # Panics
    ///
    /// Panics if the leaf holds fewer than `n` arrivals (contract
    /// violation: departs must match arrives on the same leaf).
    pub fn depart(&self, core: CoreId, n: i64) {
        assert!(n >= 0, "depart count must be non-negative");
        let mut leaf = self.leaves.get(core).lock().unwrap();
        assert!(
            leaf.count >= n,
            "SNZI contract violation: departing {n} from a leaf holding {}",
            leaf.count
        );
        leaf.count -= n;
        if leaf.count == 0 && leaf.arrived_at_root {
            self.root.fetch_sub(1, Ordering::AcqRel);
            leaf.arrived_at_root = false;
        }
    }

    /// The cheap indicator query: one shared read, no leaf traversal.
    pub fn query(&self) -> bool {
        self.root.load(Ordering::Acquire) > 0
    }
}

impl Counter for SnziCounter {
    fn add(&self, core: CoreId, delta: i64) {
        if delta >= 0 {
            self.arrive(core, delta);
        } else {
            self.depart(core, -delta);
        }
    }

    fn value(&self) -> i64 {
        self.leaves.fold(0, |a, l| a + l.lock().unwrap().count)
    }

    fn is_nonzero(&self) -> bool {
        self.query()
    }

    fn name(&self) -> &'static str {
        "snzi"
    }
}

/// One per-core leaf of the [`Snzi`] tree.
#[derive(Debug, Default)]
struct TreeLeaf {
    /// The leaf's share of the logical count. Unlike [`SnziCounter`]
    /// leaves this may go *negative*: a reference acquired on one core
    /// and released on another (cross-socket migration) departs from
    /// the releasing core's leaf.
    count: i64,
    /// Whether this leaf currently contributes one unit of surplus to
    /// its socket node.
    present: bool,
}

/// A three-level Scalable NonZero Indicator shaped like the machine:
/// per-core leaves, one intermediate node per socket, one root.
///
/// This is the generation-2 (§7) replacement for sloppy counters on
/// structures whose flat per-core banks saturate past 48 cores. The
/// protocol is the SNZI **surplus propagation** rule applied twice:
///
/// * a leaf whose count crosses between zero and nonzero adds/removes
///   one unit of *surplus* at its socket node;
/// * a socket node whose surplus crosses between zero and nonzero
///   adds/removes one unit at the root.
///
/// Steady-state arrives/departs on an already-nonzero leaf touch only
/// that core's cache line; the socket node absorbs the zero-crossing
/// traffic of its own cores, and only socket-level crossings — rarer by
/// a factor of `cores_per_socket` — reach the root. At 64 sockets ×
/// 16 cores the root sees at most 64 writers instead of 1024.
///
/// # Indicator contract
///
/// [`Snzi::query`] is one root read (plus one central read). Once an
/// `arrive` has returned and no matching `depart` has completed,
/// `query` returns `true`: nonzero-detection is never lost. Under
/// cross-socket migration the indicator may *conservatively* report
/// nonzero for a logically zero count (a `+1` leaf on one socket and a
/// `-1` leaf on another both carry surplus) until [`Snzi::reconcile`]
/// folds the leaves together — the same "exact reads cost more"
/// trade-off as sloppy counters, and safe for reference counts (an
/// object is never freed early, only later).
///
/// # Degraded mode
///
/// [`Snzi::degrade_to_central`] mirrors
/// [`SloppyCounter::degrade_to_central`](crate::SloppyCounter::degrade_to_central):
/// the first caller reconciles every leaf into the central count (which
/// zeroes all surplus), and subsequent operations hit the central word
/// only — the demotion lever `pk-adapt` pulls when the tree stops
/// paying for itself.
#[derive(Debug)]
pub struct Snzi {
    /// Number of sockets currently holding nonzero surplus.
    root: AtomicI64,
    /// Per-socket surplus: how many of the socket's leaves are nonzero.
    socket_surplus: Vec<AtomicI64>,
    cores_per_socket: usize,
    leaves: PerCore<Mutex<TreeLeaf>>,
    /// Exact count absorbed by reconciliation and by degraded-mode
    /// operations; always part of the logical value.
    central: AtomicI64,
    degraded: AtomicBool,
    central_ops: AtomicU64,
    local_ops: AtomicU64,
}

impl Snzi {
    /// Creates a tree with one leaf per core and one intermediate node
    /// per socket.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `sockets == 0`.
    pub fn new(cores: usize, sockets: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(sockets > 0, "need at least one socket");
        Self {
            root: AtomicI64::new(0),
            socket_surplus: (0..sockets).map(|_| AtomicI64::new(0)).collect(),
            cores_per_socket: cores.div_ceil(sockets).max(1),
            leaves: PerCore::new_with(cores, |_| Mutex::new(TreeLeaf::default())),
            central: AtomicI64::new(0),
            degraded: AtomicBool::new(false),
            central_ops: AtomicU64::new(0),
            local_ops: AtomicU64::new(0),
        }
    }

    /// Number of per-core leaves.
    pub fn cores(&self) -> usize {
        self.leaves.cores()
    }

    /// Number of socket nodes.
    pub fn sockets(&self) -> usize {
        self.socket_surplus.len()
    }

    /// Maps a core to its socket node.
    pub fn socket_of(&self, core: usize) -> usize {
        (core / self.cores_per_socket).min(self.socket_surplus.len() - 1)
    }

    /// Applies `delta` at `core`'s leaf, propagating surplus crossings
    /// up the tree. The single mutation path behind `arrive`/`depart`.
    fn update(&self, core: CoreId, delta: i64) {
        if delta == 0 {
            return;
        }
        if self.degraded.load(Ordering::Acquire) {
            self.central.fetch_add(delta, Ordering::AcqRel);
            self.central_ops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        pk_lockdep::check_percore_mutation("snzi.leaf", core.index());
        let socket = self.socket_of(core.index());
        let mut leaf = self.leaves.get(core).lock().unwrap();
        leaf.count += delta;
        self.local_ops.fetch_add(1, Ordering::Relaxed);
        let nonzero = leaf.count != 0;
        if nonzero && !leaf.present {
            leaf.present = true;
            self.central_ops.fetch_add(1, Ordering::Relaxed);
            let prev = self.socket_surplus[socket].fetch_add(1, Ordering::AcqRel);
            if prev == 0 {
                // Socket surplus crossed zero: propagate to the root.
                self.root.fetch_add(1, Ordering::AcqRel);
            }
        } else if !nonzero && leaf.present {
            leaf.present = false;
            self.central_ops.fetch_add(1, Ordering::Relaxed);
            let prev = self.socket_surplus[socket].fetch_sub(1, Ordering::AcqRel);
            if prev == 1 {
                self.root.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Records `n` arrivals at `core`'s leaf.
    ///
    /// # Panics
    ///
    /// Panics if `n < 0`.
    pub fn arrive(&self, core: CoreId, n: i64) {
        assert!(n >= 0, "arrive count must be non-negative");
        self.update(core, n);
    }

    /// Records `n` departures at `core`'s leaf. Unlike
    /// [`SnziCounter::depart`] the departing core need not match the
    /// arriving one: migrated departs drive the leaf negative and the
    /// leaf keeps carrying surplus until reconciled.
    ///
    /// # Panics
    ///
    /// Panics if `n < 0`.
    pub fn depart(&self, core: CoreId, n: i64) {
        assert!(n >= 0, "depart count must be non-negative");
        self.update(core, -n);
    }

    /// The cheap indicator query: a root read plus a central read, no
    /// leaf traversal.
    pub fn query(&self) -> bool {
        self.root.load(Ordering::Acquire) > 0 || self.central.load(Ordering::Acquire) != 0
    }

    /// The exact logical value: central plus every leaf. Expensive by
    /// design — it locks each leaf in turn.
    pub fn value(&self) -> i64 {
        self.central.load(Ordering::Acquire)
            + self.leaves.fold(0, |a, l| a + l.lock().unwrap().count)
    }

    /// Folds every leaf into the central count, clearing all surplus,
    /// and returns the exact value. After reconciliation `query`
    /// reflects the true count exactly (no migration residue). This is
    /// the deallocation-time step, cross-core by design.
    pub fn reconcile(&self) -> i64 {
        let _migrate = pk_lockdep::MigrationScope::enter();
        for core in 0..self.leaves.cores() {
            let socket = self.socket_of(core);
            let mut leaf = self.leaves.get(CoreId(core)).lock().unwrap();
            if leaf.count != 0 {
                self.central.fetch_add(leaf.count, Ordering::AcqRel);
                self.central_ops.fetch_add(1, Ordering::Relaxed);
                leaf.count = 0;
            }
            if leaf.present {
                leaf.present = false;
                let prev = self.socket_surplus[socket].fetch_sub(1, Ordering::AcqRel);
                if prev == 1 {
                    self.root.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        self.central.load(Ordering::Acquire)
    }

    /// Switches to degraded (central-only) mode. The first caller
    /// reconciles, so no leaf surplus is stranded; subsequent
    /// operations hit the central word. Idempotent.
    pub fn degrade_to_central(&self) {
        if !self.degraded.swap(true, Ordering::AcqRel) {
            // Every op after this point hits the shared central word, so
            // record which request triggered the mode switch — degrades
            // show up in tail attribution as service-time inflation with
            // no owning lock class otherwise.
            pk_trace::trace_instant!("snzi.degrade_to_central", pk_trace::current_request());
            self.reconcile();
        }
    }

    /// Leaves degraded mode, resuming leaf updates. The central count
    /// keeps whatever it absorbed — `value` always sums both.
    pub fn restore_per_core(&self) {
        self.degraded.store(false, Ordering::Release);
    }

    /// Whether the tree is in degraded (central-only) mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Returns `(central_ops, local_ops)`: operations that touched a
    /// shared line (socket/root propagation, central updates) versus
    /// leaf-only updates.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.central_ops.load(Ordering::Relaxed),
            self.local_ops.load(Ordering::Relaxed),
        )
    }
}

impl Counter for Snzi {
    fn add(&self, core: CoreId, delta: i64) {
        self.update(core, delta);
    }

    fn value(&self) -> i64 {
        Snzi::value(self)
    }

    fn is_nonzero(&self) -> bool {
        self.query()
    }

    fn name(&self) -> &'static str {
        "snzi.tree"
    }

    fn op_counts(&self) -> (u64, u64) {
        Snzi::op_counts(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn indicator_tracks_zero_crossings() {
        let s = SnziCounter::new(4);
        assert!(!s.query());
        s.arrive(CoreId(0), 1);
        assert!(s.query());
        s.arrive(CoreId(1), 2);
        assert!(s.query());
        s.depart(CoreId(0), 1);
        assert!(s.query(), "core 1 still present");
        s.depart(CoreId(1), 2);
        assert!(!s.query());
    }

    #[test]
    fn root_counts_leaves_not_arrivals() {
        let s = SnziCounter::new(2);
        s.arrive(CoreId(0), 100);
        assert_eq!(s.root.load(Ordering::Relaxed), 1);
        s.arrive(CoreId(1), 1);
        assert_eq!(s.root.load(Ordering::Relaxed), 2);
        assert_eq!(s.value(), 101);
    }

    #[test]
    #[should_panic(expected = "contract violation")]
    fn cross_leaf_depart_panics() {
        let s = SnziCounter::new(2);
        s.arrive(CoreId(0), 1);
        s.depart(CoreId(1), 1);
    }

    #[test]
    fn tree_surplus_propagates_per_socket() {
        // 8 cores, 2 sockets: cores 0..4 on socket 0, 4..8 on socket 1.
        let s = Snzi::new(8, 2);
        assert_eq!(s.socket_of(0), 0);
        assert_eq!(s.socket_of(3), 0);
        assert_eq!(s.socket_of(4), 1);
        assert_eq!(s.socket_of(7), 1);
        s.arrive(CoreId(0), 1);
        s.arrive(CoreId(1), 1);
        // Two nonzero leaves on one socket: surplus 2 there, root 1.
        assert_eq!(s.socket_surplus[0].load(Ordering::Relaxed), 2);
        assert_eq!(s.root.load(Ordering::Relaxed), 1);
        s.arrive(CoreId(5), 1);
        assert_eq!(s.root.load(Ordering::Relaxed), 2);
        assert!(s.query());
        s.depart(CoreId(0), 1);
        s.depart(CoreId(1), 1);
        assert_eq!(s.root.load(Ordering::Relaxed), 1, "socket 1 still live");
        s.depart(CoreId(5), 1);
        assert!(!s.query());
        assert_eq!(s.value(), 0);
    }

    #[test]
    fn tree_steady_state_is_leaf_local() {
        let s = Snzi::new(8, 2);
        s.arrive(CoreId(3), 1); // pin the leaf nonzero
        let (central_before, _) = s.op_counts();
        for _ in 0..1_000 {
            s.arrive(CoreId(3), 1);
            s.depart(CoreId(3), 1);
        }
        let (central_after, local) = s.op_counts();
        assert_eq!(
            central_after, central_before,
            "ops on a nonzero leaf must never leave the leaf"
        );
        assert!(local >= 2_000);
    }

    #[test]
    fn tree_migration_is_conservative_until_reconciled() {
        let s = Snzi::new(8, 2);
        s.arrive(CoreId(0), 1); // socket 0
        s.depart(CoreId(6), 1); // socket 1: leaf goes to -1
        assert_eq!(s.value(), 0, "exact value sees through migration");
        assert!(
            s.query(),
            "indicator is conservatively nonzero while residue is split"
        );
        assert_eq!(s.reconcile(), 0);
        assert!(!s.query(), "reconcile clears migration residue");
        assert_eq!(s.root.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tree_degrade_flushes_and_restore_resumes() {
        let s = Snzi::new(8, 4);
        s.arrive(CoreId(1), 3);
        s.arrive(CoreId(5), 2);
        s.degrade_to_central();
        assert!(s.is_degraded());
        assert_eq!(s.root.load(Ordering::Relaxed), 0, "no stranded surplus");
        assert_eq!(s.value(), 5);
        assert!(s.query(), "degraded indicator reads central");
        s.depart(CoreId(2), 5); // central-only: any core may depart
        assert!(!s.query());
        s.restore_per_core();
        assert!(!s.is_degraded());
        s.arrive(CoreId(7), 1);
        assert!(s.query());
        s.depart(CoreId(7), 1);
        assert!(!s.query());
        assert_eq!(s.value(), 0);
    }

    #[test]
    fn tree_counter_trait_roundtrip() {
        let s = Snzi::new(4, 2);
        Counter::add(&s, CoreId(0), 5);
        Counter::add(&s, CoreId(3), -2);
        assert_eq!(Counter::value(&s), 3);
        assert!(Counter::is_nonzero(&s));
        assert_eq!(Counter::name(&s), "snzi.tree");
        Counter::add(&s, CoreId(0), -3);
        assert_eq!(Counter::value(&s), 0);
    }

    #[test]
    fn tree_concurrent_sessions_leave_zero() {
        let s = Arc::new(Snzi::new(8, 4));
        let handles: Vec<_> = (0..8)
            .map(|core| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        s.arrive(CoreId(core), 1);
                        assert!(s.query());
                        s.depart(CoreId(core), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!s.query());
        assert_eq!(s.value(), 0);
        for sock in &s.socket_surplus {
            assert_eq!(sock.load(Ordering::Relaxed), 0, "no stranded surplus");
        }
    }

    #[test]
    fn tree_uneven_socket_division_maps_every_core() {
        // 10 cores over 4 sockets: div_ceil gives 3 per socket, last
        // socket takes the remainder — every core must map in range.
        let s = Snzi::new(10, 4);
        for core in 0..10 {
            assert!(s.socket_of(core) < 4);
        }
        for core in 0..10 {
            s.arrive(CoreId(core), 1);
        }
        assert_eq!(s.value(), 10);
        for core in 0..10 {
            s.depart(CoreId(core), 1);
        }
        assert!(!s.query());
    }

    #[test]
    fn concurrent_sessions_leave_zero() {
        let s = Arc::new(SnziCounter::new(8));
        let handles: Vec<_> = (0..8)
            .map(|core| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        s.arrive(CoreId(core), 1);
                        assert!(s.query());
                        s.depart(CoreId(core), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!s.query());
        assert_eq!(s.value(), 0);
    }
}
