//! Plain distributed (per-core striped) counter.

use crate::traits::Counter;
use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicI64, Ordering};

/// A counter striped across per-core slots (\[9\] in the paper).
///
/// Updates always touch only the acting core's cache line, so they scale
/// perfectly; reads must visit every core. Unlike a sloppy counter there
/// is no central value at all, so legacy code that reads "the" shared
/// counter cannot coexist with it — that backwards compatibility is
/// exactly what sloppy counters add.
#[derive(Debug)]
pub struct DistributedCounter {
    slots: PerCore<AtomicI64>,
}

impl DistributedCounter {
    /// Creates a counter striped over `cores` slots.
    pub fn new(cores: usize) -> Self {
        Self {
            slots: PerCore::new_with(cores, |_| AtomicI64::new(0)),
        }
    }

    /// Returns the number of stripes.
    pub fn cores(&self) -> usize {
        self.slots.cores()
    }
}

impl Counter for DistributedCounter {
    fn add(&self, core: CoreId, delta: i64) {
        self.slots.get(core).fetch_add(delta, Ordering::AcqRel);
    }

    fn value(&self) -> i64 {
        self.slots.fold(0, |a, s| a + s.load(Ordering::Acquire))
    }

    fn name(&self) -> &'static str {
        "distributed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cross_core_negative_balances() {
        let c = DistributedCounter::new(4);
        c.add(CoreId(0), 5);
        c.add(CoreId(3), -5); // release on a different core than acquire
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let c = Arc::new(DistributedCounter::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(CoreId(i), 1);
                    }
                    for _ in 0..5_000 {
                        c.add(CoreId(i), -1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 40_000);
    }
}
