//! Batched approximate counter (Linux `percpu_counter`).

use crate::traits::Counter;
use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicI64, Ordering};

/// A counter with per-core deltas flushed to a global value in batches.
///
/// This is the design of Linux's `percpu_counter` and the "approximate
/// counters" the paper cites (\[5\]): each core accumulates a signed local
/// delta and folds it into the global counter once its magnitude reaches
/// the batch size. The global value is therefore within
/// `cores × (batch − 1)` of the truth at all times — a cheap approximate
/// read — while [`Counter::value`] sums everything for an exact read.
#[derive(Debug)]
pub struct ApproxCounter {
    global: AtomicI64,
    local: PerCore<AtomicI64>,
    batch: i64,
}

impl ApproxCounter {
    /// Creates a counter over `cores` slots with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(cores: usize, batch: i64) -> Self {
        assert!(batch > 0, "batch must be positive");
        Self {
            global: AtomicI64::new(0),
            local: PerCore::new_with(cores, |_| AtomicI64::new(0)),
            batch,
        }
    }

    /// Returns the cheap, possibly stale global value.
    ///
    /// Guaranteed to be within `cores × (batch − 1)` of the exact value.
    pub fn approx_value(&self) -> i64 {
        self.global.load(Ordering::Acquire)
    }

    /// Returns the maximum error of [`Self::approx_value`].
    pub fn max_error(&self) -> i64 {
        self.local.cores() as i64 * (self.batch - 1)
    }

    /// Flushes all local deltas into the global counter and returns the
    /// exact value.
    pub fn flush(&self) -> i64 {
        for slot in self.local.iter() {
            let delta = slot.swap(0, Ordering::AcqRel);
            if delta != 0 {
                self.global.fetch_add(delta, Ordering::AcqRel);
            }
        }
        self.approx_value()
    }
}

impl Counter for ApproxCounter {
    fn add(&self, core: CoreId, delta: i64) {
        let slot = self.local.get(core);
        let after = slot.fetch_add(delta, Ordering::AcqRel) + delta;
        if after.abs() >= self.batch {
            // Claim the whole local delta and fold it into the global.
            let claimed = slot.swap(0, Ordering::AcqRel);
            if claimed != 0 {
                self.global.fetch_add(claimed, Ordering::AcqRel);
            }
        }
    }

    fn value(&self) -> i64 {
        self.approx_value() + self.local.fold(0, |a, s| a + s.load(Ordering::Acquire))
    }

    fn name(&self) -> &'static str {
        "approximate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_updates_stay_local() {
        let c = ApproxCounter::new(2, 10);
        c.add(CoreId(0), 3);
        assert_eq!(c.approx_value(), 0, "below batch: global untouched");
        assert_eq!(c.value(), 3, "exact read sees local delta");
    }

    #[test]
    fn batch_flushes_to_global() {
        let c = ApproxCounter::new(2, 4);
        c.add(CoreId(0), 4);
        assert_eq!(c.approx_value(), 4);
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn negative_batches_flush_too() {
        let c = ApproxCounter::new(2, 4);
        c.add(CoreId(1), -5);
        assert_eq!(c.approx_value(), -5);
    }

    #[test]
    fn approx_error_is_bounded() {
        let c = ApproxCounter::new(4, 8);
        for core in 0..4 {
            for _ in 0..100 {
                c.add(CoreId(core), 1);
            }
        }
        let exact = c.value();
        assert_eq!(exact, 400);
        assert!((exact - c.approx_value()).abs() <= c.max_error());
    }

    #[test]
    fn flush_makes_global_exact() {
        let c = ApproxCounter::new(4, 1000);
        for core in 0..4 {
            c.add(CoreId(core), 7);
        }
        assert_eq!(c.flush(), 28);
        assert_eq!(c.approx_value(), 28);
    }
}
