//! The sloppy counter (paper §4.3).

use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Tuning parameters for a [`SloppyCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloppyConfig {
    /// Spare references a core may bank before returning the excess to the
    /// central counter. The paper: "if the local count grows above some
    /// threshold, spare references are released by decrementing both the
    /// per-core count and the central count."
    pub threshold: i64,
    /// How many *extra* references to pull from the central counter when a
    /// local acquire misses. The paper's base protocol pulls exactly the
    /// requested amount (`prefetch = 0`); pulling a batch amortizes central
    /// contention further at the cost of more slop. Exercised by the
    /// `ablate_threshold` experiment.
    pub prefetch: i64,
}

impl Default for SloppyConfig {
    fn default() -> Self {
        Self {
            threshold: 8,
            prefetch: 0,
        }
    }
}

/// One logical counter split into a shared central counter and per-core
/// spare-reference counts.
///
/// All operations name the acting core explicitly (the userspace analogue
/// of being "on" a CPU), which keeps the type usable both from registered
/// host threads and from the discrete-event simulator.
///
/// # Invariant
///
/// `central = in_use + Σ local_spares` at every quiescent point, where
/// `in_use` is the number of acquired-but-unreleased references. This is
/// checked by unit and property tests, and [`Self::in_use`] computes the
/// right-hand side subtraction explicitly.
///
/// # Examples
///
/// ```
/// use pk_percpu::CoreId;
/// use pk_sloppy::SloppyCounter;
///
/// let c = SloppyCounter::new(4);
/// c.acquire(CoreId(0), 1);       // central += 1 (no spares yet)
/// assert_eq!(c.central(), 1);
/// c.release(CoreId(0), 1);       // banked locally, central unchanged
/// assert_eq!(c.central(), 1);
/// c.acquire(CoreId(0), 1);       // satisfied from the local spare
/// assert_eq!(c.central(), 1);    // central never touched again
/// assert_eq!(c.in_use(), 1);
/// ```
#[derive(Debug)]
pub struct SloppyCounter {
    central: AtomicI64,
    local: PerCore<AtomicI64>,
    config: SloppyConfig,
    /// Live copy of `config.threshold`, runtime-tunable: `pk-adapt`
    /// retunes it from observed drift-vs-contention ratios while other
    /// cores keep acquiring/releasing. Reads are Relaxed — a stale
    /// threshold only shifts *when* excess is returned, never the
    /// `central = in_use + spares` invariant.
    threshold: AtomicI64,
    central_ops: AtomicU64,
    local_ops: AtomicU64,
    /// When set, per-core banking is bypassed and every operation goes
    /// straight to the central counter (graceful degradation when
    /// per-core state is unavailable — e.g. under injected memory
    /// pressure). Slower, never wrong.
    degraded: AtomicBool,
}

impl SloppyCounter {
    /// Creates a counter with `cores` per-core slots and default tuning.
    pub fn new(cores: usize) -> Self {
        Self::with_config(cores, SloppyConfig::default())
    }

    /// Creates a counter with explicit tuning parameters.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 0` or `prefetch < 0`.
    pub fn with_config(cores: usize, config: SloppyConfig) -> Self {
        assert!(config.threshold >= 0, "threshold must be non-negative");
        assert!(config.prefetch >= 0, "prefetch must be non-negative");
        Self {
            central: AtomicI64::new(0),
            local: PerCore::new_with(cores, |_| AtomicI64::new(0)),
            config,
            threshold: AtomicI64::new(config.threshold),
            central_ops: AtomicU64::new(0),
            local_ops: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        }
    }

    /// Returns the number of per-core slots.
    pub fn cores(&self) -> usize {
        self.local.cores()
    }

    /// Acquires `v` references on behalf of `core`.
    ///
    /// First tries to take the references from the core's spare count; on
    /// a miss, charges the central counter (plus the configured prefetch,
    /// which is banked as spares).
    ///
    /// # Panics
    ///
    /// Panics if `v < 0`.
    pub fn acquire(&self, core: CoreId, v: i64) {
        assert!(v >= 0, "acquire amount must be non-negative");
        if self.degraded.load(Ordering::Acquire) {
            self.central.fetch_add(v, Ordering::AcqRel);
            self.central_ops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        pk_lockdep::check_percore_mutation("sloppy.counter.bank", core.index());
        let slot = self.local.get(core);
        // Try to decrement the per-core counter by `v`; succeed only if it
        // holds at least `v` spares. A CAS loop keeps the slot non-negative
        // even if another thread shares this logical core id.
        let mut cur = slot.load(Ordering::Relaxed);
        while cur >= v {
            match slot.compare_exchange_weak(cur, cur - v, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => {
                    self.local_ops.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
        // Miss: acquire from the central counter.
        let pull = v + self.config.prefetch;
        self.central.fetch_add(pull, Ordering::AcqRel);
        self.central_ops.fetch_add(1, Ordering::Relaxed);
        if self.config.prefetch > 0 {
            let after =
                slot.fetch_add(self.config.prefetch, Ordering::AcqRel) + self.config.prefetch;
            // Banking the prefetch must honour the same threshold as
            // `release`: with `prefetch > threshold` (or concurrent
            // releases racing into the same slot) the bank could
            // otherwise exceed the threshold and stay there forever,
            // breaking the documented bound on banked spares.
            self.return_excess(slot, after);
        }
    }

    /// Returns the excess above the threshold from `slot` (whose value
    /// was just observed as `after`) to the central counter.
    ///
    /// The excess is claimed from the slot by CAS *before* the central
    /// subtraction, so concurrent callers can never double-return the
    /// same spares, and a concurrent `acquire` draining the slot simply
    /// shrinks (or cancels) the claim.
    fn return_excess(&self, slot: &AtomicI64, after: i64) {
        let threshold = self.threshold.load(Ordering::Relaxed);
        if after <= threshold {
            return;
        }
        let excess = after - threshold;
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let take = excess.min(cur);
            if take <= 0 {
                return;
            }
            match slot.compare_exchange_weak(cur, cur - take, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => {
                    self.central.fetch_sub(take, Ordering::AcqRel);
                    self.central_ops.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `v` references on behalf of `core`.
    ///
    /// The references are banked as local spares; if the local count then
    /// exceeds the threshold, the excess is returned to the central
    /// counter.
    ///
    /// # Panics
    ///
    /// Panics if `v < 0`.
    pub fn release(&self, core: CoreId, v: i64) {
        assert!(v >= 0, "release amount must be non-negative");
        if self.degraded.load(Ordering::Acquire) {
            self.central.fetch_sub(v, Ordering::AcqRel);
            self.central_ops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        pk_lockdep::check_percore_mutation("sloppy.counter.bank", core.index());
        let slot = self.local.get(core);
        let after = slot.fetch_add(v, Ordering::AcqRel) + v;
        self.local_ops.fetch_add(1, Ordering::Relaxed);
        self.return_excess(slot, after);
    }

    /// Returns the central counter value: references in use **plus** all
    /// banked spares. This is the view legacy shared-counter code sees,
    /// and it is always an upper bound on [`Self::in_use`].
    pub fn central(&self) -> i64 {
        self.central.load(Ordering::Acquire)
    }

    /// Returns the sum of per-core spare counts.
    pub fn spares(&self) -> i64 {
        self.local.fold(0, |a, s| a + s.load(Ordering::Acquire))
    }

    /// Computes the true logical value (references actually in use).
    ///
    /// This is the "significantly more work" read the paper warns about:
    /// it touches every core's cache line.
    pub fn in_use(&self) -> i64 {
        self.central() - self.spares()
    }

    /// Flushes every core's spares back to the central counter and returns
    /// the exact logical value.
    ///
    /// This is the reconciliation step needed "when deciding whether an
    /// object can be de-allocated" — expensive, so "sloppy counters should
    /// only be used for objects that are relatively infrequently
    /// de-allocated."
    pub fn reconcile(&self) -> i64 {
        // Reconciliation sweeps every core's bank from one core — the
        // §4.3 "expensive" de-allocation step, by design cross-core.
        let _migrate = pk_lockdep::MigrationScope::enter();
        for slot in self.local.iter() {
            let spares = slot.swap(0, Ordering::AcqRel);
            if spares != 0 {
                self.central.fetch_sub(spares, Ordering::AcqRel);
                self.central_ops.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.central()
    }

    /// Switches the counter to degraded (central-only) mode.
    ///
    /// The first caller to degrade also reconciles: banked spares are
    /// flushed back to the central counter so that, while degraded,
    /// `central` tracks [`Self::in_use`] exactly. Every subsequent
    /// `acquire`/`release` then hits the shared cache line — the
    /// pre-sloppy-counter behaviour — which is slow but has no per-core
    /// state to lose. Idempotent and safe to call concurrently.
    pub fn degrade_to_central(&self) {
        if !self.degraded.swap(true, Ordering::AcqRel) {
            self.reconcile();
        }
    }

    /// Leaves degraded mode, resuming per-core banking.
    ///
    /// No reconciliation is needed on the way back: degraded mode never
    /// creates spares, so the invariant `central = in_use + spares`
    /// already holds when banking resumes.
    pub fn restore_per_core(&self) {
        self.degraded.store(false, Ordering::Release);
    }

    /// Reports whether the counter is running in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Returns `(central_ops, local_ops)`: how many operations hit the
    /// shared cache line versus stayed core-local. The whole point of the
    /// technique is to make the first number small.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.central_ops.load(Ordering::Relaxed),
            self.local_ops.load(Ordering::Relaxed),
        )
    }

    /// Returns the tuning configuration, with the *current* (possibly
    /// retuned) threshold.
    pub fn config(&self) -> SloppyConfig {
        SloppyConfig {
            threshold: self.threshold.load(Ordering::Relaxed),
            prefetch: self.config.prefetch,
        }
    }

    /// Retunes the spare-banking threshold at runtime.
    ///
    /// Raising it banks more spares per core (fewer central ops, more
    /// slop in `central`); lowering it drains banks toward central on
    /// each subsequent release. Safe to call concurrently with
    /// operations on any core: the threshold only decides when excess
    /// is returned, so the counter invariant is unaffected. Lowering
    /// does not eagerly flush existing banks — the next release on each
    /// core does.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 0`.
    pub fn set_threshold(&self, threshold: i64) {
        assert!(threshold >= 0, "threshold must be non-negative");
        self.threshold.store(threshold, Ordering::Relaxed);
    }
}

impl crate::traits::Counter for SloppyCounter {
    fn add(&self, core: CoreId, delta: i64) {
        if delta >= 0 {
            self.acquire(core, delta);
        } else {
            self.release(core, -delta);
        }
    }

    fn value(&self) -> i64 {
        self.in_use()
    }

    fn name(&self) -> &'static str {
        "sloppy"
    }

    fn op_counts(&self) -> (u64, u64) {
        SloppyCounter::op_counts(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn assert_invariant(c: &SloppyCounter, in_use: i64) {
        assert_eq!(
            c.central(),
            in_use + c.spares(),
            "central = in_use + spares violated"
        );
        assert_eq!(c.in_use(), in_use);
    }

    #[test]
    fn acquire_miss_hits_central() {
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(0), 3);
        assert_eq!(c.central(), 3);
        assert_eq!(c.spares(), 0);
        assert_invariant(&c, 3);
    }

    #[test]
    fn release_banks_spares_locally() {
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(0), 5);
        c.release(CoreId(0), 5);
        assert_eq!(c.central(), 5, "central untouched by local release");
        assert_eq!(c.spares(), 5);
        assert_invariant(&c, 0);
    }

    #[test]
    fn acquire_hit_consumes_spares() {
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(1), 4);
        c.release(CoreId(1), 4);
        let (central_before, _) = c.op_counts();
        c.acquire(CoreId(1), 2);
        let (central_after, _) = c.op_counts();
        assert_eq!(central_before, central_after, "hit must not touch central");
        assert_invariant(&c, 2);
    }

    #[test]
    fn spares_are_per_core() {
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(0), 2);
        c.release(CoreId(0), 2);
        // Core 1 has no spares; it must go to the central counter.
        let (before, _) = c.op_counts();
        c.acquire(CoreId(1), 1);
        let (after, _) = c.op_counts();
        assert_eq!(after, before + 1);
        assert_invariant(&c, 1);
    }

    #[test]
    fn threshold_releases_excess() {
        let c = SloppyCounter::with_config(
            2,
            SloppyConfig {
                threshold: 4,
                prefetch: 0,
            },
        );
        c.acquire(CoreId(0), 10);
        c.release(CoreId(0), 10); // 10 spares > threshold 4 → 6 returned
        assert_eq!(c.spares(), 4);
        assert_eq!(c.central(), 4);
        assert_invariant(&c, 0);
    }

    #[test]
    fn prefetch_banks_extra() {
        let c = SloppyCounter::with_config(
            2,
            SloppyConfig {
                threshold: 64,
                prefetch: 3,
            },
        );
        c.acquire(CoreId(0), 1);
        assert_eq!(c.central(), 4);
        assert_eq!(c.spares(), 3);
        assert_invariant(&c, 1);
        // Next three acquires are free.
        let (before, _) = c.op_counts();
        for _ in 0..3 {
            c.acquire(CoreId(0), 1);
        }
        assert_eq!(c.op_counts().0, before);
        assert_invariant(&c, 4);
    }

    #[test]
    fn prefetch_above_threshold_is_returned() {
        // Regression: banking the prefetch used to skip the threshold
        // check, so a prefetch larger than the threshold left the slot
        // over-full forever.
        let c = SloppyCounter::with_config(
            2,
            SloppyConfig {
                threshold: 4,
                prefetch: 100,
            },
        );
        c.acquire(CoreId(0), 1);
        assert!(
            c.spares() <= 4,
            "banked spares must respect the threshold, got {}",
            c.spares()
        );
        assert_invariant(&c, 1);
    }

    #[test]
    fn op_mix_sample_reports_central_share() {
        use crate::traits::Counter;
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(0), 1); // central
        c.release(CoreId(0), 1); // local
        c.acquire(CoreId(0), 1); // local
        let sample = Counter::sample(&c);
        assert_eq!(sample.name, "sloppy");
        match sample.value {
            pk_obs::MetricValue::OpMix { central, local } => {
                assert_eq!(central, 1);
                assert_eq!(local, 2);
            }
            v => panic!("wrong value kind: {v:?}"),
        }
    }

    #[test]
    fn reconcile_returns_exact_value() {
        let c = SloppyCounter::new(4);
        for i in 0..4 {
            c.acquire(CoreId(i), 3);
            c.release(CoreId(i), 2);
        }
        assert_eq!(c.reconcile(), 4);
        assert_eq!(c.spares(), 0);
        assert_invariant(&c, 4);
    }

    #[test]
    fn zero_amounts_are_noops() {
        let c = SloppyCounter::new(1);
        c.acquire(CoreId(0), 0);
        c.release(CoreId(0), 0);
        assert_eq!(c.central(), 0);
        assert_invariant(&c, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_acquire_panics() {
        SloppyCounter::new(1).acquire(CoreId(0), -1);
    }

    #[test]
    fn figure2_trace() {
        // Reproduces the Figure 2 narrative: core 0 acquires from central,
        // releases locally, then reacquires the spare without touching the
        // central counter.
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(0), 1);
        let central_after_first = c.central();
        c.release(CoreId(0), 1);
        c.acquire(CoreId(0), 1);
        assert_eq!(c.central(), central_after_first);
        let (central_ops, local_ops) = c.op_counts();
        assert_eq!(central_ops, 1);
        assert_eq!(local_ops, 2); // one banked release + one spare acquire
    }

    #[test]
    fn degrade_reconciles_and_routes_centrally() {
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(0), 3);
        c.release(CoreId(0), 2); // 2 banked spares
        assert_eq!(c.spares(), 2);
        assert!(!c.is_degraded());

        c.degrade_to_central();
        assert!(c.is_degraded());
        assert_eq!(c.spares(), 0, "degrading must flush banked spares");
        assert_eq!(c.central(), 1, "central tracks in_use exactly");

        // Every op now hits the central counter, never the (empty) banks.
        let (central_before, local_before) = c.op_counts();
        c.acquire(CoreId(0), 1);
        c.release(CoreId(0), 1);
        c.release(CoreId(0), 1); // would have banked a spare pre-degrade
        let (central_after, local_after) = c.op_counts();
        assert_eq!(central_after, central_before + 3);
        assert_eq!(local_after, local_before);
        assert_eq!(c.spares(), 0);
        assert_invariant(&c, 0);
    }

    #[test]
    fn degrade_is_idempotent() {
        let c = SloppyCounter::new(2);
        c.acquire(CoreId(1), 4);
        c.release(CoreId(1), 4);
        c.degrade_to_central();
        let (central_ops, _) = c.op_counts();
        c.degrade_to_central(); // second call must not re-reconcile
        assert_eq!(c.op_counts().0, central_ops);
        assert_invariant(&c, 0);
    }

    #[test]
    fn restore_resumes_local_banking() {
        let c = SloppyCounter::new(2);
        c.degrade_to_central();
        c.acquire(CoreId(0), 2);
        c.restore_per_core();
        assert!(!c.is_degraded());

        c.release(CoreId(0), 2); // banked locally again
        assert_eq!(c.spares(), 2);
        let (central_before, _) = c.op_counts();
        c.acquire(CoreId(0), 2); // satisfied from the spares
        assert_eq!(c.op_counts().0, central_before);
        assert_invariant(&c, 2);
    }

    #[test]
    fn concurrent_ops_while_degrading_preserve_invariant() {
        let c = Arc::new(SloppyCounter::new(4));
        let handles: Vec<_> = (0..4)
            .map(|core| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2_000 {
                        c.acquire(CoreId(core), 1);
                        if core == 0 && i == 500 {
                            c.degrade_to_central();
                        }
                        c.release(CoreId(core), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.is_degraded());
        assert_eq!(c.in_use(), 0);
        assert_eq!(c.reconcile(), 0);
    }

    #[test]
    fn concurrent_acquire_release_preserves_invariant() {
        let c = Arc::new(SloppyCounter::new(8));
        let handles: Vec<_> = (0..8)
            .map(|core| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        c.acquire(CoreId(core), 1);
                        c.release(CoreId(core), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.in_use(), 0);
        assert_eq!(c.reconcile(), 0);
    }

    #[test]
    fn set_threshold_retunes_banking_live() {
        let c = SloppyCounter::with_config(
            2,
            SloppyConfig {
                threshold: 2,
                prefetch: 0,
            },
        );
        c.acquire(CoreId(0), 10);
        c.release(CoreId(0), 10); // threshold 2 → 8 returned, 2 banked
        assert_eq!(c.spares(), 2);
        c.set_threshold(16);
        assert_eq!(c.config().threshold, 16);
        c.acquire(CoreId(0), 10); // miss (2 spares): central += 10
        c.release(CoreId(0), 10); // bank of 12 ≤ 16 → all stay banked
        assert_eq!(c.spares(), 12);
        assert_invariant(&c, 0);
        // Lowering drains on the next release.
        c.set_threshold(1);
        c.acquire(CoreId(0), 1);
        c.release(CoreId(0), 1);
        assert_eq!(c.spares(), 1);
        assert_invariant(&c, 0);
    }

    #[test]
    fn mostly_local_under_steady_state() {
        let c = SloppyCounter::new(1);
        for _ in 0..1_000 {
            c.acquire(CoreId(0), 1);
            c.release(CoreId(0), 1);
        }
        let (central_ops, local_ops) = c.op_counts();
        assert!(
            central_ops <= 2,
            "steady state should be core-local, central_ops={central_ops}"
        );
        assert!(local_ops >= 1_998);
    }
}
