//! A common interface over all counter designs.

use pk_percpu::CoreId;

/// A concurrent counter that can be incremented/decremented from a core
/// and read (possibly expensively) as a whole.
///
/// The paper compares sloppy counters with SNZI, distributed counters, and
/// approximate counters; "all of these techniques speed up
/// increment/decrement by use of per-core counters, and require
/// significantly more work to find the true total value" (§4.3). This
/// trait makes the trade-off measurable: [`Counter::add`] is the fast
/// path, [`Counter::value`] the expensive one.
pub trait Counter: Send + Sync {
    /// Adds `delta` (may be negative) on behalf of `core`.
    fn add(&self, core: CoreId, delta: i64);

    /// Returns the current logical value. May traverse all cores.
    fn value(&self) -> i64;

    /// Returns whether the logical value is nonzero.
    ///
    /// Designs like SNZI answer this much more cheaply than [`value`];
    /// the default implementation just compares.
    ///
    /// [`value`]: Counter::value
    fn is_nonzero(&self) -> bool {
        self.value() != 0
    }

    /// A short human-readable name for benchmark tables.
    fn name(&self) -> &'static str;

    /// Returns `(central_ops, local_ops)`: operations that touched a
    /// shared cache line versus ones that stayed core-local. Designs
    /// that do not track the split return `(0, 0)`.
    fn op_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Packages [`Counter::op_counts`] as a registry sample, named
    /// after the design. This is how every counter joins the
    /// observability layer: the report can compare how often each
    /// design pays for shared state.
    fn sample(&self) -> pk_obs::Sample {
        let (central, local) = self.op_counts();
        pk_obs::Sample::op_mix(self.name(), central, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApproxCounter, AtomicCounter, DistributedCounter, SloppyCounter, SnziCounter};

    fn all_counters(cores: usize) -> Vec<Box<dyn Counter>> {
        vec![
            Box::new(AtomicCounter::new()),
            Box::new(DistributedCounter::new(cores)),
            Box::new(ApproxCounter::new(cores, 16)),
            Box::new(SloppyCounter::new(cores)),
            Box::new(SnziCounter::new(cores)),
        ]
    }

    #[test]
    fn every_design_counts_correctly() {
        for c in all_counters(4) {
            for core in 0..4 {
                c.add(CoreId(core), 5);
                c.add(CoreId(core), -2);
            }
            assert_eq!(c.value(), 12, "{} wrong", c.name());
            assert!(c.is_nonzero(), "{} nonzero wrong", c.name());
        }
    }

    #[test]
    fn every_design_returns_to_zero() {
        for c in all_counters(3) {
            for core in 0..3 {
                c.add(CoreId(core), 7);
            }
            for core in 0..3 {
                c.add(CoreId(core), -7);
            }
            assert_eq!(c.value(), 0, "{} wrong", c.name());
            assert!(!c.is_nonzero(), "{} nonzero wrong", c.name());
        }
    }
}
