//! The contended single-cache-line baseline.

use crate::traits::Counter;
use pk_percpu::CoreId;
use std::sync::atomic::{AtomicI64, Ordering};

/// A single shared atomic counter — the design the paper's bottlenecks
/// come from.
///
/// "Lock-free atomic increment and decrement instructions do not help,
/// because the coherence hardware serializes the operations on a given
/// counter" (§4.3). Every update from every core pulls the same cache
/// line exclusive; this is the baseline the scalable designs beat.
#[derive(Debug, Default)]
pub struct AtomicCounter {
    value: AtomicI64,
}

impl AtomicCounter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }
}

impl Counter for AtomicCounter {
    fn add(&self, _core: CoreId, delta: i64) {
        self.value.fetch_add(delta, Ordering::AcqRel);
    }

    fn value(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }

    fn name(&self) -> &'static str {
        "atomic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_exactly() {
        let c = AtomicCounter::new();
        c.add(CoreId(0), 10);
        c.add(CoreId(1), -3);
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn concurrent_sum_is_exact() {
        let c = Arc::new(AtomicCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(CoreId(i), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 40_000);
    }
}
