//! Sloppy counters — the new technique introduced by *An Analysis of
//! Linux Scalability to Many Cores* (OSDI 2010, §4.3) — together with the
//! related scalable counters the paper compares against.
//!
//! A shared reference counter updated by many cores becomes a bottleneck
//! even with lock-free atomics, because the coherence hardware serializes
//! operations on the counter's cache line. A **sloppy counter** splits one
//! logical counter into a shared *central* counter plus per-core counts of
//! *spare* references:
//!
//! * To **acquire** `v` references, a core first tries to take them from
//!   its local spare count; only if it has too few does it touch the
//!   central counter.
//! * To **release** `v` references, a core banks them locally as spares,
//!   returning them to the central counter only when the local count
//!   exceeds a threshold.
//!
//! The invariant (paper, §4.3): *the central counter equals the number of
//! references in use plus the sum of all per-core spare counts.* In the
//! common case an update touches only the core's own cache line.
//!
//! Sloppy counters are backwards-compatible with the existing shared
//! counter: code that only reads the central value (or that acquires and
//! releases through it) keeps working, which is why the paper could patch
//! just the contended *uses* of a counter. [`SloppyCounter::central`]
//! exposes that view, and [`SloppyRefCount`] packages the dentry-style
//! object lifecycle (including the expensive reconcile-on-dealloc).
//!
//! For comparison the crate also implements the related designs the paper
//! cites: [`SnziCounter`] (Scalable NonZero Indicators), the plain
//! [`DistributedCounter`], the batched [`ApproxCounter`] (Linux
//! `percpu_counter`), and the contended [`AtomicCounter`] baseline —
//! all behind the [`Counter`] trait so benchmarks can sweep them.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod approx;
mod atomic;
mod distributed;
mod refcount;
mod sloppy;
mod snzi;
mod traits;

pub use approx::ApproxCounter;
pub use atomic::AtomicCounter;
pub use distributed::DistributedCounter;
pub use refcount::{DeallocError, RefCount, SloppyRefCount, SnziRefCount};
pub use sloppy::{SloppyConfig, SloppyCounter};
pub use snzi::{Snzi, SnziCounter};
pub use traits::Counter;
