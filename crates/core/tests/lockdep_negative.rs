//! Negative tests for the per-core discipline checks: mutating another
//! core's sloppy-counter bank while acting as a declared core is a
//! violation; the [`pk_lockdep::MigrationScope`] escape hatch and the
//! by-design cross-core reconcile are not.
//!
//! The violation store is process-global, so each test matches on its
//! own cores instead of asserting counts.

#![cfg(feature = "lockdep")]

use pk_lockdep::{ActingCore, MigrationScope, ViolationKind};
use pk_percpu::CoreId;
use pk_sloppy::SloppyCounter;

#[test]
fn cross_core_bank_mutation_is_caught() {
    let c = SloppyCounter::new(4);
    {
        // Acting as core 2 but touching core 1's bank: the §4.3 design
        // depends on banks staying core-local, so this is a violation.
        let _ac = ActingCore::enter(2);
        c.acquire(CoreId(1), 1);
    }
    let v = pk_lockdep::violations()
        .into_iter()
        .find(|v| {
            v.kind == ViolationKind::CrossCoreMutation
                && v.message.contains("sloppy.counter.bank")
                && v.message.contains("owned by core 1")
                && v.message.contains("from core 2")
        })
        .unwrap_or_else(|| {
            panic!(
                "cross-core mutation not reported; store: {:#?}",
                pk_lockdep::violations()
            )
        });
    assert!(
        v.message.contains("crates/core/src/sloppy.rs"),
        "message must name the mutation site: {}",
        v.message
    );
}

#[test]
fn migration_scope_and_reconcile_are_clean() {
    let c = SloppyCounter::new(4);
    {
        // Explicitly declared migration: allowed.
        let _ac = ActingCore::enter(3);
        let _m = MigrationScope::enter();
        c.acquire(CoreId(0), 1);
        c.release(CoreId(0), 1);
    }
    {
        // Reconcile sweeps every bank by design (§4.3 de-allocation);
        // the counter wraps it in its own migration scope.
        let _ac = ActingCore::enter(3);
        let _ = c.reconcile();
    }
    assert!(
        !pk_lockdep::violations().iter().any(|v| {
            v.kind == ViolationKind::CrossCoreMutation && v.message.contains("from core 3")
        }),
        "escape hatch failed to suppress the report: {:#?}",
        pk_lockdep::violations()
    );
}

#[test]
fn undeclared_threads_are_not_checked() {
    // No ActingCore declared: regular single-threaded tests and
    // internally-threaded drivers touch whichever bank they like.
    let c = SloppyCounter::new(4);
    c.acquire(CoreId(1), 1);
    c.release(CoreId(2), 1);
    assert!(
        !pk_lockdep::violations().iter().any(|v| {
            v.kind == ViolationKind::CrossCoreMutation && v.message.contains("from core none")
        }),
        "undeclared thread was checked"
    );
}
