//! Property-based tests for the counter designs.
//!
//! The central property is the paper's sloppy-counter invariant (§4.3):
//! the central counter equals the sum of per-core spare counts plus the
//! number of references in use — under *any* interleaving of acquires and
//! releases on any cores, with any threshold/prefetch tuning.

use pk_percpu::CoreId;
use pk_sloppy::{
    ApproxCounter, AtomicCounter, Counter, DistributedCounter, SloppyConfig, SloppyCounter,
    SnziCounter,
};
use proptest::prelude::*;

/// One step of a counter workload.
#[derive(Debug, Clone)]
enum Op {
    Acquire { core: usize, v: i64 },
    Release { core: usize, v: i64 },
}

fn op_strategy(cores: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cores, 0..8i64).prop_map(|(core, v)| Op::Acquire { core, v }),
        (0..cores, 0..8i64).prop_map(|(core, v)| Op::Release { core, v }),
    ]
}

proptest! {
    /// central = in_use + spares after every single operation.
    #[test]
    fn sloppy_invariant_holds_under_any_sequence(
        threshold in 0..32i64,
        prefetch in 0..8i64,
        ops in proptest::collection::vec(op_strategy(6), 1..200),
    ) {
        let c = SloppyCounter::with_config(6, SloppyConfig { threshold, prefetch });
        let mut in_use: i64 = 0;
        for op in &ops {
            match *op {
                Op::Acquire { core, v } => {
                    c.acquire(CoreId(core), v);
                    in_use += v;
                }
                Op::Release { core, v } => {
                    // Only release what is actually held, as refcount
                    // clients do.
                    let v = v.min(in_use);
                    c.release(CoreId(core), v);
                    in_use -= v;
                }
            }
            prop_assert_eq!(c.central(), in_use + c.spares());
            prop_assert!(c.central() >= in_use, "central is an upper bound");
            prop_assert_eq!(c.in_use(), in_use);
        }
        // Reconciliation always lands on the exact value and clears spares.
        prop_assert_eq!(c.reconcile(), in_use);
        prop_assert_eq!(c.spares(), 0);
    }

    /// All exact-read designs agree with a sequential model.
    #[test]
    fn designs_agree_with_sequential_model(
        deltas in proptest::collection::vec((0..4usize, -5..6i64), 1..100),
    ) {
        let atomic = AtomicCounter::new();
        let dist = DistributedCounter::new(4);
        let approx = ApproxCounter::new(4, 3);
        let mut model: i64 = 0;
        for &(core, delta) in &deltas {
            atomic.add(CoreId(core), delta);
            dist.add(CoreId(core), delta);
            approx.add(CoreId(core), delta);
            model += delta;
        }
        prop_assert_eq!(atomic.value(), model);
        prop_assert_eq!(dist.value(), model);
        prop_assert_eq!(approx.value(), model);
    }

    /// The approximate counter's cheap read is within its error bound.
    #[test]
    fn approx_error_bound_holds(
        batch in 1..16i64,
        deltas in proptest::collection::vec((0..4usize, -5..6i64), 1..200),
    ) {
        let approx = ApproxCounter::new(4, batch);
        for &(core, delta) in &deltas {
            approx.add(CoreId(core), delta);
            let err = (approx.value() - approx.approx_value()).abs();
            prop_assert!(err <= approx.max_error(),
                "error {} exceeds bound {}", err, approx.max_error());
        }
    }

    /// SNZI's cheap indicator always agrees with the exact value when
    /// arrives/departs pair up per leaf.
    #[test]
    fn snzi_indicator_matches_value(
        ops in proptest::collection::vec((0..4usize, 0..5i64, prop::bool::ANY), 1..150),
    ) {
        let s = SnziCounter::new(4);
        let mut held = [0i64; 4];
        for &(core, v, arrive) in &ops {
            if arrive {
                s.arrive(CoreId(core), v);
                held[core] += v;
            } else {
                let v = v.min(held[core]);
                s.depart(CoreId(core), v);
                held[core] -= v;
            }
            let total: i64 = held.iter().sum();
            prop_assert_eq!(s.query(), total > 0);
            prop_assert_eq!(s.value(), total);
        }
    }

    /// The refcount lifecycle: dealloc succeeds exactly when the model
    /// count reaches zero, and never resurrects.
    #[test]
    fn refcount_lifecycle(
        ops in proptest::collection::vec((0..4usize, prop::bool::ANY), 1..100,)
    ) {
        let rc = pk_sloppy::SloppyRefCount::new(4);
        let mut refs: i64 = 1;
        for &(core, get) in &ops {
            if get {
                rc.get(CoreId(core)).unwrap();
                refs += 1;
            } else if refs > 0 {
                rc.put(CoreId(core));
                refs -= 1;
            }
            prop_assert_eq!(rc.references(), refs);
            if refs > 0 {
                prop_assert!(rc.try_dealloc().is_err());
            } else {
                prop_assert_eq!(rc.try_dealloc(), Ok(()));
                prop_assert!(rc.get(CoreId(core)).is_err());
                return Ok(());
            }
        }
    }

    /// The adaptive governor's levers — degrade to central-only,
    /// restore per-core banking, retune the threshold — interleaved
    /// arbitrarily with refcount traffic must preserve the invariant at
    /// every step, and degrading must never strand spares (the
    /// reconcile-on-degrade contract).
    ///
    /// Op encoding: kind 0–1 acquire, 2–3 release, 4 degrade,
    /// 5 restore, 6 set_threshold(v).
    #[test]
    fn degrade_restore_cycles_preserve_invariant(
        threshold in 0..16i64,
        prefetch in 0..8i64,
        ops in proptest::collection::vec((0..7usize, 0..6usize, 0..8i64), 1..200),
    ) {
        let c = SloppyCounter::with_config(6, SloppyConfig { threshold, prefetch });
        let mut in_use: i64 = 0;
        for &(kind, core, v) in &ops {
            match kind {
                0 | 1 => {
                    c.acquire(CoreId(core), v);
                    in_use += v;
                }
                2 | 3 => {
                    let v = v.min(in_use);
                    c.release(CoreId(core), v);
                    in_use -= v;
                }
                4 => {
                    c.degrade_to_central();
                    // Degrading reconciles: no spare may be stranded
                    // where central-only traffic can't see it.
                    prop_assert_eq!(c.spares(), 0);
                    prop_assert!(c.is_degraded());
                }
                5 => {
                    c.restore_per_core();
                    prop_assert!(!c.is_degraded());
                }
                6 => c.set_threshold(v),
                _ => unreachable!(),
            }
            prop_assert_eq!(c.central(), in_use + c.spares());
            prop_assert_eq!(c.in_use(), in_use);
        }
        // However the run ended (degraded or banking, any threshold),
        // reconciliation lands on the exact count with nothing lost.
        prop_assert_eq!(c.reconcile(), in_use);
        prop_assert_eq!(c.spares(), 0);
    }

    /// Thread migration: references acquired on core A and released on
    /// core B (never the same core) must preserve the invariant at every
    /// step — the spares just bank on a different core than the one that
    /// pulled from central.
    #[test]
    fn sloppy_invariant_survives_cross_core_migration(
        threshold in 0..16i64,
        prefetch in 0..8i64,
        moves in proptest::collection::vec((0..6usize, 1..6usize, 1..8i64), 1..100),
    ) {
        let c = SloppyCounter::with_config(6, SloppyConfig { threshold, prefetch });
        let mut in_use: i64 = 0;
        for &(from, hop, v) in &moves {
            // Acquire on `from`, release on a guaranteed-different core.
            let to = (from + hop) % 6;
            c.acquire(CoreId(from), v);
            in_use += v;
            prop_assert_eq!(c.central(), in_use + c.spares());
            c.release(CoreId(to), v);
            in_use -= v;
            prop_assert_eq!(c.central(), in_use + c.spares());
            prop_assert_eq!(c.in_use(), in_use);
        }
        // Migration leaves spares scattered across cores; reconcile must
        // still converge to the exact count and clear them all.
        prop_assert_eq!(c.reconcile(), in_use);
        prop_assert_eq!(c.spares(), 0);
        prop_assert_eq!(c.in_use(), in_use);
    }
}

/// Concurrent mode flips: worker threads run balanced acquire/release
/// traffic while a governor thread degrades, restores, and retunes the
/// counter underneath them — the racy version of the adaptive
/// controller's promotion/demotion path. A reference acquired before a
/// flip may be released after it (and on the central path), so every
/// transition edge gets exercised. At quiescence nothing may be lost:
/// the logical value is zero and reconcile converges.
#[test]
fn concurrent_mode_flips_lose_nothing() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let cores = 8usize;
    let c = Arc::new(SloppyCounter::with_config(
        cores,
        SloppyConfig {
            threshold: 4,
            prefetch: 2,
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let governor = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut t = 1i64;
            while !stop.load(Ordering::Relaxed) {
                c.degrade_to_central();
                c.set_threshold(t);
                c.restore_per_core();
                t = (t * 2).clamp(1, 64);
                std::thread::yield_now();
            }
        })
    };
    let workers: Vec<_> = (0..cores)
        .map(|core| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 0..4_000i64 {
                    let v = 1 + (i % 3);
                    c.acquire(CoreId(core), v);
                    std::hint::black_box(&c);
                    c.release(CoreId(core), v);
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    governor.join().unwrap();
    // Balanced traffic: logical zero, invariant intact, reconcile exact.
    assert_eq!(c.in_use(), 0, "references lost or invented across flips");
    assert_eq!(c.central(), c.spares(), "central = in_use + spares");
    assert_eq!(c.reconcile(), 0, "reconcile converges after mode churn");
    assert_eq!(c.spares(), 0, "reconcile clears every bank");
}

/// Concurrent cross-core migration: producer threads acquire on their
/// own core and hand references to a consumer that releases them on a
/// *different* core, so every reference migrates. The invariant must
/// hold at quiescence and `reconcile()` must converge, for both the
/// default tuning and a prefetching, tiny-threshold config that
/// stresses the excess-return path.
#[test]
fn concurrent_migration_preserves_invariant() {
    use std::sync::mpsc;
    use std::sync::Arc;

    for config in [
        pk_sloppy::SloppyConfig::default(),
        pk_sloppy::SloppyConfig {
            threshold: 2,
            prefetch: 5,
        },
    ] {
        let cores = 8usize;
        let c = Arc::new(SloppyCounter::with_config(cores, config));
        let (tx, rx) = mpsc::channel::<i64>();
        let rx = Arc::new(std::sync::Mutex::new(rx));
        // Producers: acquire on cores 0..4 and ship the references out.
        let producers: Vec<_> = (0..4)
            .map(|core| {
                let c = Arc::clone(&c);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000i64 {
                        let v = 1 + (i % 3);
                        c.acquire(CoreId(core), v);
                        tx.send(v).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        // Consumers: release every shipped reference on cores 4..8 —
        // never the core that acquired it.
        let consumers: Vec<_> = (4..8)
            .map(|core| {
                let c = Arc::clone(&c);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let v = match rx.lock().unwrap().recv() {
                        Ok(v) => v,
                        Err(_) => break,
                    };
                    c.release(CoreId(core), v);
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        // Everything acquired was released: at quiescence the logical
        // value is zero, the invariant holds, and reconcile converges.
        assert_eq!(
            c.central(),
            c.spares(),
            "central = in_use + spares with in_use = 0 (config {config:?})"
        );
        assert_eq!(c.in_use(), 0, "all references released (config {config:?})");
        assert_eq!(c.reconcile(), 0, "reconcile converges (config {config:?})");
        assert_eq!(c.spares(), 0, "reconcile clears spares (config {config:?})");
    }
}
