//! Property-based and concurrent tests for the SNZI tree — the
//! generation-2 refcount backing (ISSUE 9 satellite).
//!
//! The central properties, checked against a sequential model under
//! any interleaving of arrives, departs, cross-socket migration, and
//! degrade/restore flips:
//!
//! * the cheap indicator is **exact in the sequential model**: `query`
//!   is true iff some leaf or the central word is nonzero — so
//!   nonzero-detection is never lost, and a false `query` proves every
//!   leaf already drained;
//! * `value` always equals the model sum (migration drives leaves
//!   negative, never loses a unit);
//! * degrading reconciles: no surplus may be stranded in a leaf where
//!   central-only traffic can't see it, across any number of flips;
//! * `reconcile` converges to the exact count and clears all residue.
//!
//! Real-thread stress mirrors `counter_properties.rs`: migration
//! through a producer/consumer pipe and mode flips under fire, plus a
//! holder thread proving the indicator never reports zero while a
//! reference is provably held.

use pk_percpu::CoreId;
use pk_sloppy::{Snzi, SnziRefCount};
use proptest::prelude::*;

/// Sequential model of the tree: per-leaf counts, the central word,
/// and the degraded flag. Mirrors the documented update rules only —
/// no surplus bookkeeping, which is exactly what the properties probe.
struct Model {
    leaves: Vec<i64>,
    central: i64,
    degraded: bool,
}

impl Model {
    fn new(cores: usize) -> Self {
        Self {
            leaves: vec![0; cores],
            central: 0,
            degraded: false,
        }
    }

    fn add(&mut self, core: usize, delta: i64) {
        if self.degraded {
            self.central += delta;
        } else {
            self.leaves[core] += delta;
        }
    }

    fn reconcile(&mut self) {
        self.central += self.leaves.iter().sum::<i64>();
        self.leaves.iter_mut().for_each(|l| *l = 0);
    }

    fn value(&self) -> i64 {
        self.central + self.leaves.iter().sum::<i64>()
    }

    /// What `query` must report sequentially: some leaf carries
    /// surplus, or the central word is nonzero.
    fn nonzero(&self) -> bool {
        self.central != 0 || self.leaves.iter().any(|&l| l != 0)
    }
}

/// One step of a tree workload, decoded from a `(kind, core, n)`
/// tuple: kinds 0–3 arrive, 4–7 depart, 8 degrade, 9 restore,
/// 10 reconcile. Arrive/depart cores are drawn independently, so
/// cross-socket migration (negative leaves) is the common case, not
/// the corner.
#[derive(Debug, Clone)]
enum Op {
    Arrive { core: usize, n: i64 },
    Depart { core: usize, n: i64 },
    Degrade,
    Restore,
    Reconcile,
}

impl Op {
    fn decode(kind: usize, core: usize, n: i64) -> Self {
        match kind {
            0..=3 => Op::Arrive { core, n },
            4..=7 => Op::Depart { core, n },
            8 => Op::Degrade,
            9 => Op::Restore,
            _ => Op::Reconcile,
        }
    }
}

proptest! {
    /// The indicator is exact in the sequential model at every step,
    /// for any tree shape — including sockets that don't divide the
    /// core count (the 64×16-style shapes the wheel math must survive).
    #[test]
    fn tree_indicator_is_exact_in_the_sequential_model(
        cores in 1..12usize,
        sockets in 1..5usize,
        raw in proptest::collection::vec((0..11usize, 0..12usize, 0..6i64), 1..200),
    ) {
        let s = Snzi::new(cores, sockets);
        let mut model = Model::new(cores);
        for &(kind, core, n) in &raw {
            let op = Op::decode(kind, core, n);
            match op {
                Op::Arrive { core, n } => {
                    let core = core % cores;
                    s.arrive(CoreId(core), n);
                    model.add(core, n);
                }
                Op::Depart { core, n } => {
                    let core = core % cores;
                    s.depart(CoreId(core), n);
                    model.add(core, -n);
                }
                Op::Degrade => {
                    s.degrade_to_central();
                    // Degrading reconciles: every leaf must drain into
                    // the central word, no surplus stranded behind the
                    // central-only path.
                    model.reconcile();
                    model.degraded = true;
                    prop_assert!(s.is_degraded());
                    prop_assert_eq!(s.query(), model.central != 0,
                        "degraded indicator must read central exactly");
                }
                Op::Restore => {
                    s.restore_per_core();
                    model.degraded = false;
                    prop_assert!(!s.is_degraded());
                }
                Op::Reconcile => {
                    prop_assert_eq!(s.reconcile(), {
                        model.reconcile();
                        model.central
                    });
                }
            }
            prop_assert_eq!(s.value(), model.value());
            prop_assert_eq!(s.query(), model.nonzero(),
                "indicator diverged from the model after {:?}",
                Op::decode(kind, core, n));
        }
        // However the run ended, reconciliation converges and leaves
        // the indicator exact on the logical value.
        model.reconcile();
        prop_assert_eq!(s.reconcile(), model.central);
        prop_assert_eq!(s.query(), model.value() != 0);
    }

    /// The SNZI refcount lifecycle under migration: gets and puts on
    /// unrelated cores, exact `references`, conservative
    /// `maybe_referenced`, and deallocation exactly at zero.
    #[test]
    fn snzi_refcount_lifecycle_survives_migration(
        sockets in 1..5usize,
        ops in proptest::collection::vec((0..8usize, prop::bool::ANY), 1..120),
    ) {
        let rc = SnziRefCount::new(8, sockets);
        let mut refs: i64 = 1; // the creator's reference
        for &(core, get) in &ops {
            if get {
                rc.get(CoreId(core)).unwrap();
                refs += 1;
            } else if refs > 0 {
                // Release on the *opposite* core so every reference
                // migrates across the tree.
                rc.put(CoreId(7 - core));
                refs -= 1;
            }
            prop_assert_eq!(rc.references(), refs);
            if refs > 0 {
                // Nonzero-detection is never lost: a held reference
                // must keep the cheap probe true...
                prop_assert!(rc.maybe_referenced());
                // ...and block deallocation.
                prop_assert!(rc.try_dealloc().is_err());
            } else {
                prop_assert_eq!(rc.try_dealloc(), Ok(()));
                prop_assert!(rc.get(CoreId(core)).is_err(), "no resurrection");
                return Ok(());
            }
        }
    }

    /// Degrade/restore flips interleaved with refcount traffic never
    /// lose a reference or invent one — the tree analogue of the
    /// sloppy `degrade_restore_cycles_preserve_invariant` property.
    #[test]
    fn refcount_mode_flips_preserve_the_count(
        ops in proptest::collection::vec((0..6usize, 0..8usize), 1..150),
    ) {
        let rc = SnziRefCount::new(8, 4);
        let mut refs: i64 = 1;
        for &(kind, core) in &ops {
            match kind {
                0..=2 => {
                    rc.get(CoreId(core)).unwrap();
                    refs += 1;
                }
                3 if refs > 1 => {
                    rc.put(CoreId((core + 3) % 8));
                    refs -= 1;
                }
                3 => {}
                4 => rc.degrade_to_central(),
                5 => rc.restore_per_core(),
                _ => unreachable!(),
            }
            prop_assert_eq!(rc.references(), refs);
            prop_assert!(rc.maybe_referenced(), "live object must probe nonzero");
        }
    }
}

/// Concurrent migration through a producer/consumer pipe: every
/// reference is acquired on one socket and released on another. At
/// quiescence only the creator's reference remains, deallocation
/// succeeds, and the dead object refuses new gets.
#[test]
fn concurrent_migration_preserves_the_refcount() {
    use std::sync::mpsc;
    use std::sync::Arc;

    let rc = Arc::new(SnziRefCount::new(8, 4));
    let (tx, rx) = mpsc::channel::<u32>();
    let rx = Arc::new(std::sync::Mutex::new(rx));
    // Producers: get on sockets 0–1 (cores 0..4) and ship out.
    let producers: Vec<_> = (0..4)
        .map(|core| {
            let rc = Arc::clone(&rc);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    rc.get(CoreId(core)).unwrap();
                    tx.send(1).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    // Consumers: put on sockets 2–3 (cores 4..8) — never the core (or
    // socket) that acquired.
    let consumers: Vec<_> = (4..8)
        .map(|core| {
            let rc = Arc::clone(&rc);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || {
                while rx.lock().unwrap().recv().is_ok() {
                    rc.put(CoreId(core));
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }
    assert_eq!(rc.references(), 1, "only the creator's reference remains");
    assert!(rc.maybe_referenced());
    rc.put(CoreId(7));
    assert_eq!(rc.references(), 0);
    assert_eq!(rc.try_dealloc(), Ok(()));
    assert!(rc.get(CoreId(0)).is_err(), "dead object refuses gets");
}

/// Balanced arrive/depart churn on every core while a governor thread
/// degrades, restores, and re-degrades the tree underneath: at
/// quiescence nothing is lost, and after a final reconcile the
/// indicator agrees the tree is empty with zero residue anywhere.
#[test]
fn concurrent_mode_flips_strand_no_surplus() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let s = Arc::new(Snzi::new(8, 4));
    let stop = Arc::new(AtomicBool::new(false));
    let governor = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                s.degrade_to_central();
                std::thread::yield_now();
                s.restore_per_core();
                std::thread::yield_now();
            }
        })
    };
    let workers: Vec<_> = (0..8)
        .map(|core| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..4_000i64 {
                    let n = 1 + (i % 3);
                    s.arrive(CoreId(core), n);
                    // Depart from the mirror core: cross-socket by
                    // construction, so a flip can strand the arrive on
                    // a leaf and route the depart through central.
                    s.depart(CoreId(7 - core), n);
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    governor.join().unwrap();
    // Balanced traffic: the logical value is zero however the flips
    // interleaved, and reconciliation clears every line of residue.
    assert_eq!(s.value(), 0, "references lost or invented across flips");
    assert_eq!(s.reconcile(), 0, "reconcile converges after mode churn");
    assert!(!s.query(), "no stranded surplus after reconcile");
}

/// Nonzero-detection is never lost: while one thread provably holds a
/// reference, no interleaving of churn on other cores or governor mode
/// flips may ever let the cheap probe report zero.
#[test]
fn indicator_never_drops_a_held_reference() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let s = Arc::new(Snzi::new(8, 4));
    s.arrive(CoreId(0), 1); // the held reference
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (1..8)
        .map(|core| {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.arrive(CoreId(core), 1);
                    s.depart(CoreId(core), 1);
                }
            })
        })
        .collect();
    let governor = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                s.degrade_to_central();
                std::thread::yield_now();
                s.restore_per_core();
                std::thread::yield_now();
            }
        })
    };
    for _ in 0..50_000 {
        assert!(s.query(), "indicator dropped a held reference");
    }
    stop.store(true, Ordering::Relaxed);
    for h in churners {
        h.join().unwrap();
    }
    governor.join().unwrap();
    assert!(s.query());
    assert_eq!(s.reconcile(), 1);
}
