//! Violation records and the deduplicating store.

#[cfg(feature = "lockdep")]
use std::collections::HashSet;
#[cfg(feature = "lockdep")]
use std::sync::{Mutex, OnceLock};

/// The category of a detected concurrency-correctness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An ABBA lock-order cycle: the acquisition being attempted would
    /// close a cycle in the lock-order graph (a would-deadlock).
    LockOrder,
    /// A blocking (yielding) lock was acquired inside an epoch
    /// read-side section, which can stall every writer's grace period.
    BlockingInEpoch,
    /// `synchronize()` was called from inside a read-side section: the
    /// caller would wait for its own epoch and never quiesce.
    SynchronizeInEpoch,
    /// A per-core slot was mutated from a core other than its owner
    /// without a declared migration scope.
    CrossCoreMutation,
}

impl ViolationKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::LockOrder => "lock-order",
            Self::BlockingInEpoch => "blocking-in-epoch",
            Self::SynchronizeInEpoch => "synchronize-in-epoch",
            Self::CrossCoreMutation => "cross-core-mutation",
        }
    }
}

/// One detected violation. The message names the lock classes involved
/// and the source locations of the acquisitions that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that was violated.
    pub kind: ViolationKind,
    /// Full human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.label(), self.message)
    }
}

/// Returns every violation detected so far (empty when the feature is
/// off). Each distinct violation is reported once, no matter how many
/// times the offending path re-executes.
pub fn violations() -> Vec<Violation> {
    #[cfg(feature = "lockdep")]
    {
        imp::store()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .list
            .clone()
    }
    #[cfg(not(feature = "lockdep"))]
    Vec::new()
}

/// Number of distinct violations detected so far.
pub fn violation_count() -> usize {
    #[cfg(feature = "lockdep")]
    {
        imp::store()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .list
            .len()
    }
    #[cfg(not(feature = "lockdep"))]
    0
}

#[cfg(feature = "lockdep")]
pub(crate) mod imp {
    use super::*;

    #[derive(Default)]
    pub(crate) struct Store {
        seen: HashSet<String>,
        pub(crate) list: Vec<Violation>,
    }

    pub(crate) fn store() -> &'static Mutex<Store> {
        static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
        STORE.get_or_init(|| Mutex::new(Store::default()))
    }

    /// Records a violation, deduplicated by `key`.
    pub(crate) fn report(kind: ViolationKind, key: String, message: String) {
        let mut s = store().lock().unwrap_or_else(|e| e.into_inner());
        if s.seen.insert(key) {
            s.list.push(Violation { kind, message });
        }
    }
}
