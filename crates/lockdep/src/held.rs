//! Per-thread held-lock stacks and epoch (RCU read-section) tracking.

#![cfg(feature = "lockdep")]

use crate::class::imp::{name_of, resolve};
use crate::class::{ClassCell, LockKind};
use crate::report::imp::report;
use crate::report::ViolationKind;
use std::cell::{Cell, RefCell};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One entry on a thread's held-lock stack.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Held {
    pub(crate) class: u32,
    pub(crate) loc: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    static EPOCH_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static MAX_DEPTH: AtomicUsize = AtomicUsize::new(0);
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

fn site(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

/// Validates and records one acquisition.
///
/// For ordinary (potentially waiting) acquisitions this records the
/// class→class edges implied by the current held stack and runs cycle
/// detection *before* the caller starts waiting — a would-deadlock is
/// reported even on executions where no deadlock happens. `try_lock`
/// acquisitions cannot wait, so they create no inbound edges (and are
/// exempt from the epoch rule), but they do join the held stack so
/// later acquisitions order against them.
pub(crate) fn acquire(
    cell: &ClassCell,
    kind: LockKind,
    trylock: bool,
    loc: &'static Location<'static>,
) {
    let class = resolve(cell, kind);
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    if !trylock {
        if kind.is_blocking() && EPOCH_DEPTH.with(Cell::get) > 0 {
            report(
                ViolationKind::BlockingInEpoch,
                format!("epoch-block:{class}:{}", site(loc)),
                format!(
                    "blocking lock \"{}\" acquired at {} inside an epoch read-side \
                     section: a preempted holder stalls every writer's grace period",
                    name_of(class),
                    site(loc),
                ),
            );
        }
        let stack = HELD.with(|h| h.borrow().clone());
        if !stack.is_empty() {
            crate::graph::record_edges(&stack, class, loc);
        }
    }
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        h.push(Held { class, loc });
        MAX_DEPTH.fetch_max(h.len(), Ordering::Relaxed);
    });
}

/// Records the release of a lock: pops the topmost matching entry
/// (searching downward tolerates out-of-order guard drops).
pub(crate) fn release(cell: &ClassCell) {
    let id = cell.id.load(Ordering::Relaxed);
    if id == 0 {
        return;
    }
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(pos) = h.iter().rposition(|held| held.class == id) {
            h.remove(pos);
        }
    });
}

/// Enters an epoch read-side section on this thread.
pub(crate) fn epoch_enter() {
    EPOCH_DEPTH.with(|d| d.set(d.get() + 1));
}

/// Leaves an epoch read-side section.
pub(crate) fn epoch_exit() {
    EPOCH_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

/// Validates a `synchronize()` (grace-period wait) call: performed
/// inside a read-side section, the caller waits for its own epoch and
/// never quiesces.
pub(crate) fn check_synchronize(loc: &'static Location<'static>) {
    if EPOCH_DEPTH.with(Cell::get) > 0 {
        report(
            ViolationKind::SynchronizeInEpoch,
            format!("sync-in-epoch:{}", site(loc)),
            format!(
                "synchronize() called at {} from inside an epoch read-side section: \
                 the grace period waits for this reader, which never quiesces \
                 (self-deadlock)",
                site(loc),
            ),
        );
    }
}

/// Validates an `rcu_barrier()` call: it contains a grace-period wait,
/// so the synchronize-in-epoch rule applies unchanged.
pub(crate) fn check_rcu_barrier(loc: &'static Location<'static>) {
    if EPOCH_DEPTH.with(Cell::get) > 0 {
        report(
            ViolationKind::SynchronizeInEpoch,
            format!("barrier-in-epoch:{}", site(loc)),
            format!(
                "rcu_barrier() called at {} from inside an epoch read-side section: \
                 the flush waits for a grace period covering this reader, which \
                 never quiesces (self-deadlock)",
                site(loc),
            ),
        );
    }
}

/// Current epoch nesting depth of this thread.
pub(crate) fn epoch_depth() -> u32 {
    EPOCH_DEPTH.with(Cell::get)
}

/// Deepest held-lock stack any thread has reached.
pub(crate) fn max_depth() -> usize {
    MAX_DEPTH.load(Ordering::Relaxed)
}

/// Total validated acquisitions across all threads.
pub(crate) fn acquisitions() -> u64 {
    ACQUISITIONS.load(Ordering::Relaxed)
}
