//! Lock classes and the per-lock class cell.
//!
//! Following Linux lockdep, validation happens per *class* of lock, not
//! per instance: all dentry `d_lock`s share one class, so an ordering
//! observed between any dentry lock and any inode lock stands for the
//! whole population. Locks that never call
//! [`set_class`](ClassCell::set_class) are lazily given a fresh
//! anonymous class on first acquisition, so distinct unclassified locks
//! are never aliased into false cycles.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// The kind of lock a class covers; selects which rules apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-test-and-set spin lock.
    Spin,
    /// FIFO ticket spin lock.
    Ticket,
    /// MCS queue spin lock.
    Mcs,
    /// Sequence-lock write side.
    SeqWrite,
    /// A lock whose slow path yields the CPU (adaptive mutex). Only
    /// this kind is forbidden inside an epoch read-side section.
    Blocking,
}

impl LockKind {
    /// Whether acquiring this kind may block (yield) rather than spin.
    pub fn is_blocking(self) -> bool {
        matches!(self, Self::Blocking)
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Spin => "spin",
            Self::Ticket => "ticket",
            Self::Mcs => "mcs",
            Self::SeqWrite => "seqwrite",
            Self::Blocking => "blocking",
        }
    }
}

/// Identifier of a registered lock class. `0` means "not yet classified".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// The sentinel for locks that have not been classified.
    pub const UNSET: ClassId = ClassId(0);

    /// The raw registry index (for compact storage, e.g. trace events).
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from [`raw`](Self::raw). Unknown ids resolve
    /// to a placeholder name, never undefined behavior.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        ClassId(raw)
    }
}

/// The per-lock slot holding its class assignment.
///
/// Every `pk-sync` lock embeds one. The class *registry* (this cell and
/// the name table) is always compiled — `pk-trace` uses it to name lock
/// spans — but with the `lockdep` feature off none of the validation
/// hooks touch it, so uninstrumented builds pay one `AtomicU32` per lock
/// and nothing else.
#[derive(Debug)]
pub struct ClassCell {
    pub(crate) id: AtomicU32,
}

impl ClassCell {
    /// Creates an unclassified cell.
    pub const fn new() -> Self {
        Self {
            id: AtomicU32::new(0),
        }
    }

    /// Assigns this lock to `class`. Idempotent; later assignments win.
    #[inline]
    pub fn set_class(&self, class: ClassId) {
        self.id.store(class.0, Ordering::Relaxed);
    }

    /// Returns the assigned class, if any.
    #[inline]
    pub fn class(&self) -> Option<ClassId> {
        match self.id.load(Ordering::Relaxed) {
            0 => None,
            id => Some(ClassId(id)),
        }
    }
}

impl Default for ClassCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Registers (or looks up) the lock class `name`, owned by crate
/// `krate`, of the given `kind`. Registration is idempotent: the same
/// name always yields the same [`ClassId`], so constructors can call
/// this unconditionally.
///
/// The registry is always compiled (lock *names* feed both the lockdep
/// reports and `pk-trace` lock spans); only the validation hooks are
/// gated behind the `lockdep` feature.
#[inline]
pub fn register_class(name: &str, krate: &str, kind: LockKind) -> ClassId {
    imp::intern(name, krate, kind)
}

/// Resolves the class id of the lock owning `cell`, minting a fresh
/// anonymous class on first use for unclassified locks (so distinct
/// instances are never aliased). This is the always-compiled lookup
/// `pk-trace` uses to name lock hold spans.
#[inline]
pub fn classify(cell: &ClassCell, kind: LockKind) -> ClassId {
    ClassId(imp::resolve(cell, kind))
}

/// Human-readable name of class `id` (a placeholder for unknown ids).
pub fn class_name(id: ClassId) -> String {
    imp::name_of(id.0)
}

/// Metadata of one registered class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Dotted class name, e.g. `vfs.dentry.d_lock`.
    pub name: String,
    /// Crate that registered it.
    pub krate: String,
    /// The lock kind.
    pub kind: LockKind,
}

/// Returns every registered class (including anonymous ones), indexed
/// by `ClassId - 1`.
pub fn classes() -> Vec<ClassInfo> {
    imp::table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .infos
        .clone()
}

pub(crate) mod imp {
    use super::*;

    #[derive(Default)]
    pub(crate) struct ClassTable {
        pub(crate) infos: Vec<ClassInfo>,
        by_name: HashMap<String, u32>,
    }

    pub(crate) fn table() -> &'static Mutex<ClassTable> {
        static TABLE: OnceLock<Mutex<ClassTable>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(ClassTable::default()))
    }

    pub(crate) fn intern(name: &str, krate: &str, kind: LockKind) -> ClassId {
        let mut t = table().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = t.by_name.get(name) {
            return ClassId(id);
        }
        t.infos.push(ClassInfo {
            name: name.to_string(),
            krate: krate.to_string(),
            kind,
        });
        let id = t.infos.len() as u32; // ids start at 1
        t.by_name.insert(name.to_string(), id);
        ClassId(id)
    }

    /// Mints a fresh anonymous class for an unclassified lock instance.
    pub(crate) fn anon(kind: LockKind) -> ClassId {
        let mut t = table().lock().unwrap_or_else(|e| e.into_inner());
        let id = t.infos.len() as u32 + 1;
        let name = format!("anon.{}#{id}", kind.label());
        t.infos.push(ClassInfo {
            name: name.clone(),
            krate: "?".to_string(),
            kind,
        });
        t.by_name.insert(name, id);
        ClassId(id)
    }

    /// Name of class `id`, or a placeholder for unknown ids.
    pub(crate) fn name_of(id: u32) -> String {
        let t = table().lock().unwrap_or_else(|e| e.into_inner());
        t.infos
            .get(id.wrapping_sub(1) as usize)
            .map(|c| c.name.clone())
            .unwrap_or_else(|| format!("class#{id}"))
    }

    /// Resolves a cell to a class id, minting an anonymous class for
    /// unclassified locks on first use.
    pub(crate) fn resolve(cell: &ClassCell, kind: LockKind) -> u32 {
        let id = cell.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = anon(kind);
        match cell
            .id
            .compare_exchange(0, fresh.0, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh.0,
            // Another thread classified it first; its id wins (the
            // anonymous entry we minted stays as an unused row).
            Err(existing) => existing,
        }
    }
}
