//! The global lock-order graph with incremental cycle detection.
//!
//! Nodes are lock classes; a directed edge `A → B` means "some thread
//! held an `A`-class lock while acquiring a `B`-class lock". The first
//! time an acquisition would add an edge whose reverse path already
//! exists, the validator reports a would-deadlock chain — before any
//! actual deadlock can occur (two threads interleaving the two orders
//! is not required, exactly as in Linux lockdep).
//!
//! Offending edges are *not* inserted, so the recorded graph stays
//! acyclic and a topological order over it is the canonical lock
//! hierarchy (what DESIGN.md documents).

#![cfg(feature = "lockdep")]

use crate::class::imp::name_of;
use crate::held::Held;
use crate::report::imp::report;
use crate::report::ViolationKind;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::Location;
use std::sync::{Mutex, OnceLock};

pub(crate) struct EdgeData {
    pub(crate) from_loc: &'static Location<'static>,
    pub(crate) to_loc: &'static Location<'static>,
    pub(crate) count: u64,
}

#[derive(Default)]
pub(crate) struct Graph {
    pub(crate) edges: HashMap<(u32, u32), EdgeData>,
    adj: HashMap<u32, Vec<u32>>,
    /// Reversed edges already reported, so a hot offending path does
    /// not re-run cycle detection on every execution.
    reported: HashSet<(u32, u32)>,
}

impl Graph {
    /// Returns the path `from → … → to` in the current graph, if any.
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &next in self.adj.get(&n).into_iter().flatten() {
                if seen.insert(next) {
                    parent.insert(next, n);
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

pub(crate) fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

fn site(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

/// Records the edges implied by acquiring `to_class` at `to_loc` while
/// `held` is the current held-lock stack. Runs cycle detection on each
/// new edge; reports (and withholds) edges that would close a cycle.
pub(crate) fn record_edges(held: &[Held], to_class: u32, to_loc: &'static Location<'static>) {
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    let mut seen_from: HashSet<u32> = HashSet::new();
    for h in held {
        if h.class == to_class || !seen_from.insert(h.class) {
            // Same-class nesting carries no cross-class order, and a
            // class already processed for this acquisition adds nothing.
            continue;
        }
        let key = (h.class, to_class);
        if let Some(e) = g.edges.get_mut(&key) {
            e.count += 1;
            continue;
        }
        if g.reported.contains(&key) {
            continue;
        }
        // New edge: would `to_class → … → h.class` close a cycle?
        if let Some(path) = g.path(to_class, h.class) {
            let chain = describe_cycle(&g, &path, h, to_class, to_loc, held);
            g.reported.insert(key);
            report(
                ViolationKind::LockOrder,
                format!("abba:{}->{}", h.class, to_class),
                chain,
            );
            continue; // keep the graph acyclic
        }
        g.edges.insert(
            key,
            EdgeData {
                from_loc: h.loc,
                to_loc,
                count: 1,
            },
        );
        g.adj.entry(h.class).or_default().push(to_class);
    }
}

/// Builds the would-deadlock diagnostic: both acquisition orders with
/// their source sites, plus the full held stack of the offending thread.
fn describe_cycle(
    g: &Graph,
    path: &[u32],
    holding: &Held,
    to_class: u32,
    to_loc: &'static Location<'static>,
    held: &[Held],
) -> String {
    let mut msg = format!(
        "would-deadlock: acquiring \"{}\" at {} while holding \"{}\" (acquired at {}) \
         requires order {} -> {}, but the opposite order is already established: ",
        name_of(to_class),
        site(to_loc),
        name_of(holding.class),
        site(holding.loc),
        name_of(holding.class),
        name_of(to_class),
    );
    for pair in path.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if let Some(e) = g.edges.get(&(a, b)) {
            msg.push_str(&format!(
                "\"{}\" (held at {}) -> \"{}\" (acquired at {}); ",
                name_of(a),
                site(e.from_loc),
                name_of(b),
                site(e.to_loc),
            ));
        }
    }
    msg.push_str("held stack: [");
    for (i, h) in held.iter().enumerate() {
        if i > 0 {
            msg.push_str(", ");
        }
        msg.push_str(&format!("\"{}\" at {}", name_of(h.class), site(h.loc)));
    }
    msg.push(']');
    msg
}

use crate::EdgeSummary;

/// Returns every observed class→class edge, sorted by class names.
pub(crate) fn edge_summaries() -> Vec<EdgeSummary> {
    let g = graph().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<EdgeSummary> = g
        .edges
        .iter()
        .map(|(&(a, b), e)| EdgeSummary {
            from: name_of(a),
            to: name_of(b),
            from_site: site(e.from_loc),
            to_site: site(e.to_loc),
            count: e.count,
        })
        .collect();
    out.sort_by(|x, y| (&x.from, &x.to).cmp(&(&y.from, &y.to)));
    out
}
