//! Per-core discipline: slot mutation must come from the owning core.
//!
//! `SloppyCounter` banking, the per-core vfsmount cache, skb free
//! lists, and the per-core run queues all assume their slots are
//! mutated by the core that owns them — that assumption is what makes
//! them scalable, and nothing enforced it. Workload drivers declare
//! which logical core they are acting as with [`ActingCore::enter`];
//! instrumented mutation sites then call [`check_percore_mutation`].
//! Deliberate cross-core paths (reconciliation, work stealing, remote
//! teardown) wrap themselves in [`MigrationScope::enter`] — the
//! explicit escape hatch that marks them as reviewed.

#[cfg(feature = "lockdep")]
use crate::report::imp::report;
#[cfg(feature = "lockdep")]
use crate::report::ViolationKind;
#[cfg(feature = "lockdep")]
use std::cell::RefCell;

#[cfg(feature = "lockdep")]
thread_local! {
    static ACTING: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    static MIGRATE_DEPTH: RefCell<u32> = const { RefCell::new(0) };
}

/// RAII declaration: "this thread is acting as logical core N".
///
/// Scopes nest; the innermost declaration wins. With no declaration in
/// scope, per-core mutation checks are skipped (the thread's identity
/// is unknown, e.g. in unit tests that drive arbitrary cores).
#[derive(Debug)]
pub struct ActingCore {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ActingCore {
    /// Declares the acting core until the returned guard drops.
    #[must_use = "the declaration ends when the guard drops"]
    pub fn enter(core: usize) -> ActingCore {
        #[cfg(feature = "lockdep")]
        ACTING.with(|a| a.borrow_mut().push(core));
        #[cfg(not(feature = "lockdep"))]
        let _ = core;
        ActingCore {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for ActingCore {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        ACTING.with(|a| {
            a.borrow_mut().pop();
        });
    }
}

/// Returns the innermost declared acting core, if any.
pub fn acting_core() -> Option<usize> {
    #[cfg(feature = "lockdep")]
    {
        ACTING.with(|a| a.borrow().last().copied())
    }
    #[cfg(not(feature = "lockdep"))]
    None
}

/// RAII escape hatch: inside this scope, cross-core per-core-slot
/// mutation is permitted (reconciliation, stealing, remote teardown).
#[derive(Debug)]
pub struct MigrationScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl MigrationScope {
    /// Opens a migration scope until the returned guard drops.
    #[must_use = "the escape hatch closes when the guard drops"]
    pub fn enter() -> MigrationScope {
        #[cfg(feature = "lockdep")]
        MIGRATE_DEPTH.with(|d| *d.borrow_mut() += 1);
        MigrationScope {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for MigrationScope {
    fn drop(&mut self) {
        #[cfg(feature = "lockdep")]
        MIGRATE_DEPTH.with(|d| {
            let mut d = d.borrow_mut();
            *d = d.saturating_sub(1);
        });
    }
}

/// Asserts that mutating the per-core slot owned by `owner` at the
/// named `site` happens from the owning core (or inside a
/// [`MigrationScope`]). No-op when no acting core is declared or the
/// `lockdep` feature is off.
#[track_caller]
#[inline]
pub fn check_percore_mutation(site: &'static str, owner: usize) {
    #[cfg(feature = "lockdep")]
    {
        if MIGRATE_DEPTH.with(|d| *d.borrow()) > 0 {
            return;
        }
        if let Some(actor) = acting_core() {
            if actor != owner {
                let loc = std::panic::Location::caller();
                report(
                    ViolationKind::CrossCoreMutation,
                    format!("xcore:{site}:{owner}:{actor}"),
                    format!(
                        "per-core slot \"{site}\" owned by core {owner} mutated from \
                         core {actor} at {}:{} without a migration scope",
                        loc.file(),
                        loc.line(),
                    ),
                );
            }
        }
    }
    #[cfg(not(feature = "lockdep"))]
    let _ = (site, owner);
}
