//! `pk-lockdep`: a runtime lock-order and concurrency-correctness
//! validator, modeled on the Linux kernel's lockdep.
//!
//! The paper's method is to find the lock that serializes the kernel
//! and split it; every split multiplies the ways locks can compose and
//! none of the five lock types in `pk-sync` validated how. This crate
//! closes that gap with four checks:
//!
//! 1. **Lock classes** ([`register_class`]) — validation is per class
//!    of lock (all dentry `d_lock`s are one class), so an ordering
//!    observed once stands for the whole population.
//! 2. **Lock-order graph** — every acquisition records the class→class
//!    edges implied by the thread's held-lock stack; incremental cycle
//!    detection reports a *would-deadlock* chain (with both acquisition
//!    sites) the first time an ABBA order is observed, before any
//!    actual deadlock.
//! 3. **Epoch rules** — acquiring a blocking (yielding) lock inside an
//!    epoch read-side section, or calling `synchronize()` from one
//!    (a reader that can never quiesce), is reported.
//! 4. **Per-core discipline** ([`check_percore_mutation`]) — per-core
//!    slots (sloppy-counter banks, vfsmount/skb caches, run queues)
//!    must be mutated by their owning core; deliberate cross-core paths
//!    declare themselves with [`MigrationScope`].
//!
//! The *validation* hooks are gated behind the `lockdep` cargo feature:
//! with the feature off (the default), every hook in this crate is an
//! empty `#[inline]` function. The class *registry* ([`register_class`],
//! [`classify`], [`class_name`], [`classes`]) is always compiled — it is
//! the shared naming authority for lock spans in `pk-trace` — so a
//! [`ClassCell`] is one `AtomicU32` per lock in every build.
//!
//! Findings surface two ways: [`violations`] returns the deduplicated
//! reports (the `lockdep_report` binary exits non-zero on any), and
//! [`collector`] exposes counters through the `pk-obs` registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
#[cfg(feature = "lockdep")]
mod graph;
#[cfg(feature = "lockdep")]
mod held;
mod percore;
mod report;

pub use class::{
    class_name, classes, classify, register_class, ClassCell, ClassId, ClassInfo, LockKind,
};
pub use percore::{acting_core, check_percore_mutation, ActingCore, MigrationScope};
pub use report::{violation_count, violations, Violation, ViolationKind};

/// A summarized observed lock-order edge: "`from` was held while
/// acquiring `to`", with the source sites that first established it.
#[derive(Debug, Clone)]
pub struct EdgeSummary {
    /// Class held first.
    pub from: String,
    /// Class acquired while holding `from`.
    pub to: String,
    /// Source site where `from` was held.
    pub from_site: String,
    /// Source site of the `to` acquisition that created the edge.
    pub to_site: String,
    /// How many acquisitions traversed this edge.
    pub count: u64,
}

/// Reports whether the validator is compiled in.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "lockdep")
}

/// Validates and records an acquisition of the lock owning `cell`.
///
/// Called by every `pk-sync` guard constructor *before* the caller
/// starts waiting, so ordering violations are detected even on
/// executions that happen not to deadlock. `trylock` acquisitions
/// cannot wait and therefore create no inbound ordering edges, but
/// they join the held stack so later acquisitions order against them.
#[track_caller]
#[inline]
pub fn acquire(cell: &ClassCell, kind: LockKind, trylock: bool) {
    #[cfg(feature = "lockdep")]
    held::acquire(cell, kind, trylock, std::panic::Location::caller());
    #[cfg(not(feature = "lockdep"))]
    let _ = (cell, kind, trylock);
}

/// Records the release of the lock owning `cell` (called on guard drop).
#[inline]
pub fn release(cell: &ClassCell) {
    #[cfg(feature = "lockdep")]
    held::release(cell);
    #[cfg(not(feature = "lockdep"))]
    let _ = cell;
}

/// Marks entry into an epoch (RCU) read-side section on this thread.
#[inline]
pub fn epoch_enter() {
    #[cfg(feature = "lockdep")]
    held::epoch_enter();
}

/// Marks exit from an epoch read-side section.
#[inline]
pub fn epoch_exit() {
    #[cfg(feature = "lockdep")]
    held::epoch_exit();
}

/// Validates a grace-period wait (`synchronize()`): calling it inside a
/// read-side section is a self-deadlock and is reported.
#[track_caller]
#[inline]
pub fn check_synchronize() {
    #[cfg(feature = "lockdep")]
    held::check_synchronize(std::panic::Location::caller());
}

/// Validates an `rcu_barrier()` (deferred-queue flush): like
/// `synchronize()`, it waits out a grace period, so calling it inside a
/// read-side section is a self-deadlock and is reported. `call_rcu()`
/// itself needs no check — deferring reclamation from inside a read-side
/// section is the legal, encouraged pattern.
#[track_caller]
#[inline]
pub fn check_rcu_barrier() {
    #[cfg(feature = "lockdep")]
    held::check_rcu_barrier(std::panic::Location::caller());
}

/// Current epoch read-section nesting depth of this thread.
#[inline]
pub fn epoch_depth() -> u32 {
    #[cfg(feature = "lockdep")]
    {
        held::epoch_depth()
    }
    #[cfg(not(feature = "lockdep"))]
    0
}

/// Returns every observed class→class edge (empty when the feature is
/// off). The graph is kept acyclic — offending edges are reported, not
/// inserted — so these edges define the canonical lock hierarchy.
pub fn edges() -> Vec<EdgeSummary> {
    #[cfg(feature = "lockdep")]
    {
        graph::edge_summaries()
    }
    #[cfg(not(feature = "lockdep"))]
    Vec::new()
}

/// Deepest held-lock stack any thread has reached.
pub fn max_held_depth() -> usize {
    #[cfg(feature = "lockdep")]
    {
        held::max_depth()
    }
    #[cfg(not(feature = "lockdep"))]
    0
}

/// Total validated acquisitions across all threads.
pub fn acquisition_count() -> u64 {
    #[cfg(feature = "lockdep")]
    {
        held::acquisitions()
    }
    #[cfg(not(feature = "lockdep"))]
    0
}

struct LockdepSource;

impl pk_obs::Collect for LockdepSource {
    fn collect(&self, out: &mut pk_obs::Snapshot) {
        out.push(pk_obs::Sample::gauge("lockdep.enabled", enabled() as i64));
        out.push(pk_obs::Sample::gauge(
            "lockdep.classes",
            classes().len() as i64,
        ));
        out.push(pk_obs::Sample::gauge("lockdep.edges", edges().len() as i64));
        out.push(pk_obs::Sample::gauge(
            "lockdep.max_held_depth",
            max_held_depth() as i64,
        ));
        out.push(pk_obs::Sample::counter(
            "lockdep.acquisitions",
            acquisition_count(),
        ));
        out.push(pk_obs::Sample::counter(
            "lockdep.violations",
            violation_count() as u64,
        ));
    }
}

/// Returns the validator's `pk-obs` metric source (edges observed, max
/// held depth, violations). Register it with a `Registry`.
pub fn collector() -> std::sync::Arc<dyn pk_obs::Collect> {
    std::sync::Arc::new(LockdepSource)
}

#[cfg(all(test, feature = "lockdep"))]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let a = register_class("test.lib.a", "pk-lockdep", LockKind::Spin);
        let b = register_class("test.lib.a", "pk-lockdep", LockKind::Spin);
        assert_eq!(a, b);
        assert_ne!(a, ClassId::UNSET);
        assert!(classes().iter().any(|c| c.name == "test.lib.a"));
    }

    #[test]
    fn consistent_order_produces_edges_not_violations() {
        let a = ClassCell::new();
        a.set_class(register_class("test.order.a", "pk-lockdep", LockKind::Spin));
        let b = ClassCell::new();
        b.set_class(register_class("test.order.b", "pk-lockdep", LockKind::Spin));
        for _ in 0..3 {
            acquire(&a, LockKind::Spin, false);
            acquire(&b, LockKind::Spin, false);
            release(&b);
            release(&a);
        }
        assert!(edges()
            .iter()
            .any(|e| e.from == "test.order.a" && e.to == "test.order.b" && e.count == 3));
        assert!(!violations()
            .iter()
            .any(|v| v.message.contains("test.order.")));
    }

    #[test]
    fn abba_is_reported_with_both_sites() {
        let a = ClassCell::new();
        a.set_class(register_class("test.abba.a", "pk-lockdep", LockKind::Spin));
        let b = ClassCell::new();
        b.set_class(register_class("test.abba.b", "pk-lockdep", LockKind::Spin));
        // Establish a -> b …
        acquire(&a, LockKind::Spin, false);
        acquire(&b, LockKind::Spin, false);
        release(&b);
        release(&a);
        // … then attempt b -> a on the same thread: no deadlock occurs,
        // but the validator must still flag the order inversion.
        acquire(&b, LockKind::Spin, false);
        acquire(&a, LockKind::Spin, false);
        release(&a);
        release(&b);
        let v = violations();
        let hit = v
            .iter()
            .find(|v| {
                v.kind == ViolationKind::LockOrder
                    && v.message.contains("test.abba.a")
                    && v.message.contains("test.abba.b")
            })
            .expect("ABBA must be detected");
        assert!(hit.message.contains(file!()), "sites: {}", hit.message);
        assert!(hit.message.contains("would-deadlock"), "{}", hit.message);
    }

    #[test]
    fn transitive_cycles_are_detected() {
        let mk = |n: &str| {
            let c = ClassCell::new();
            c.set_class(register_class(n, "pk-lockdep", LockKind::Spin));
            c
        };
        let (a, b, c) = (mk("test.tri.a"), mk("test.tri.b"), mk("test.tri.c"));
        let pair = |x: &ClassCell, y: &ClassCell| {
            acquire(x, LockKind::Spin, false);
            acquire(y, LockKind::Spin, false);
            release(y);
            release(x);
        };
        pair(&a, &b);
        pair(&b, &c);
        pair(&c, &a); // closes a -> b -> c -> a
        assert!(violations().iter().any(|v| {
            v.kind == ViolationKind::LockOrder
                && v.message.contains("test.tri.c")
                && v.message.contains("test.tri.a")
                && v.message.contains("test.tri.b")
        }));
    }

    #[test]
    fn trylock_creates_no_inbound_edge() {
        let a = ClassCell::new();
        a.set_class(register_class("test.try.a", "pk-lockdep", LockKind::Spin));
        let b = ClassCell::new();
        b.set_class(register_class("test.try.b", "pk-lockdep", LockKind::Spin));
        acquire(&a, LockKind::Spin, false);
        acquire(&b, LockKind::Spin, true); // try_lock: cannot wait
        release(&b);
        release(&a);
        assert!(!edges()
            .iter()
            .any(|e| e.from == "test.try.a" && e.to == "test.try.b"));
        // Reverse order with a real acquisition is therefore legal.
        acquire(&b, LockKind::Spin, false);
        acquire(&a, LockKind::Spin, false);
        release(&a);
        release(&b);
        assert!(!violations().iter().any(|v| v.message.contains("test.try.")));
    }

    #[test]
    fn blocking_inside_epoch_is_reported() {
        let m = ClassCell::new();
        m.set_class(register_class(
            "test.epoch.mutex",
            "pk-lockdep",
            LockKind::Blocking,
        ));
        epoch_enter();
        acquire(&m, LockKind::Blocking, false);
        release(&m);
        epoch_exit();
        assert!(violations().iter().any(|v| {
            v.kind == ViolationKind::BlockingInEpoch && v.message.contains("test.epoch.mutex")
        }));
    }

    #[test]
    fn spin_inside_epoch_is_allowed() {
        let s = ClassCell::new();
        s.set_class(register_class(
            "test.epoch.spin",
            "pk-lockdep",
            LockKind::Spin,
        ));
        epoch_enter();
        acquire(&s, LockKind::Spin, false);
        release(&s);
        epoch_exit();
        assert!(!violations()
            .iter()
            .any(|v| v.message.contains("test.epoch.spin")));
    }

    #[test]
    fn synchronize_inside_epoch_is_reported() {
        epoch_enter();
        check_synchronize();
        epoch_exit();
        assert!(violations()
            .iter()
            .any(|v| v.kind == ViolationKind::SynchronizeInEpoch));
    }

    #[test]
    fn cross_core_mutation_is_reported_and_scoped() {
        {
            let _core = ActingCore::enter(0);
            assert_eq!(acting_core(), Some(0));
            check_percore_mutation("test.slot.ok", 0); // owning core: fine
            {
                let _m = MigrationScope::enter();
                check_percore_mutation("test.slot.scoped", 5); // declared: fine
            }
            check_percore_mutation("test.slot.bad", 3); // cross-core: flagged
        }
        assert_eq!(acting_core(), None);
        let v = violations();
        assert!(v.iter().any(|v| {
            v.kind == ViolationKind::CrossCoreMutation
                && v.message.contains("test.slot.bad")
                && v.message.contains("owned by core 3")
                && v.message.contains("core 0")
        }));
        assert!(!v.iter().any(|v| v.message.contains("test.slot.ok")));
        assert!(!v.iter().any(|v| v.message.contains("test.slot.scoped")));
    }

    #[test]
    fn unclassified_locks_get_distinct_anonymous_classes() {
        let a = ClassCell::new();
        let b = ClassCell::new();
        // a -> b then b -> a: distinct instances must NOT alias into a
        // false ABBA (each gets its own anonymous class, and real
        // ordering is tracked per class pair).
        acquire(&a, LockKind::Spin, false);
        acquire(&b, LockKind::Spin, false);
        release(&b);
        release(&a);
        let (ca, cb) = (a.class().unwrap(), b.class().unwrap());
        assert_ne!(ca, cb);
        // The same two instances in reverse order IS a real inversion.
        acquire(&b, LockKind::Spin, false);
        acquire(&a, LockKind::Spin, false);
        release(&a);
        release(&b);
        let names = classes();
        let name_of = |id: ClassId| names[(id.0 - 1) as usize].name.clone();
        assert!(violations()
            .iter()
            .any(|v| v.message.contains(&name_of(ca)) && v.message.contains(&name_of(cb))));
    }

    #[test]
    fn collector_exports_lockdep_samples() {
        let mut snap = pk_obs::Snapshot::new();
        collector().collect(&mut snap);
        assert!(snap.find("lockdep.enabled").is_some());
        assert!(snap.find("lockdep.violations").is_some());
        assert!(snap.find("lockdep.edges").is_some());
        assert!(snap.find("lockdep.max_held_depth").is_some());
    }
}
