//! Per-core run queues with work stealing.

use crate::process::Pid;
use pk_percpu::{CoreId, PerCore};
use pk_sync::SpinLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Scheduler diagnostics.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Dispatches satisfied from the local queue.
    pub local_dispatches: AtomicU64,
    /// Dispatches that stole from another core's queue.
    pub steals: AtomicU64,
    /// Dispatches that found every queue empty.
    pub idle: AtomicU64,
}

/// Mostly-private per-core run queues (§4.1's model fix).
///
/// Enqueue and dispatch touch only the local queue's lock in the common
/// case; load balancing happens by stealing when a core runs dry.
#[derive(Debug)]
pub struct Scheduler {
    queues: PerCore<SpinLock<VecDeque<Pid>>>,
    stats: SchedStats,
}

impl Scheduler {
    /// Creates `cores` empty run queues.
    pub fn new(cores: usize) -> Self {
        let runq_class =
            pk_lockdep::register_class("proc.sched.runq", "pk-proc", pk_lockdep::LockKind::Spin);
        Self {
            queues: PerCore::new_with(cores, |_| {
                let q = SpinLock::new(VecDeque::new());
                q.set_class(runq_class);
                q
            }),
            stats: SchedStats::default(),
        }
    }

    /// Makes `pid` runnable on `core`'s queue.
    pub fn enqueue(&self, core: CoreId, pid: Pid) {
        // Remote wakeups legitimately enqueue onto another core's queue
        // (the waker holds the target's run-queue lock, as in Linux).
        let _migrate = pk_lockdep::MigrationScope::enter();
        self.queues.get(core).lock().push_back(pid);
    }

    /// Picks the next process for `core`: local queue first, then steal
    /// from the most loaded peer.
    pub fn pick_next(&self, core: CoreId) -> Option<Pid> {
        pk_lockdep::check_percore_mutation("proc.sched.runq", core.index());
        if let Some(pid) = self.queues.get(core).lock().pop_front() {
            self.stats.local_dispatches.fetch_add(1, Ordering::Relaxed);
            return Some(pid);
        }
        // Stealing is the deliberate cross-core path of §4.1's mostly-
        // private run queues.
        let _migrate = pk_lockdep::MigrationScope::enter();
        let mut victim: Option<(usize, usize)> = None; // (core, load)
        for (id, q) in self.queues.iter_with_id() {
            if id == core {
                continue;
            }
            let load = q.lock().len();
            if load > victim.map_or(0, |(_, l)| l) {
                victim = Some((id.index(), load));
            }
        }
        if let Some((v, _)) = victim {
            if let Some(pid) = self.queues.get(CoreId(v)).lock().pop_back() {
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(pid);
            }
        }
        self.stats.idle.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Run-queue length of `core`.
    pub fn load(&self, core: CoreId) -> usize {
        self.queues.get(core).lock().len()
    }

    /// Total runnable processes across all queues.
    pub fn total_load(&self) -> usize {
        self.queues.fold(0, |a, q| a + q.lock().len())
    }

    /// Returns the diagnostics.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_dispatch_preferred() {
        let s = Scheduler::new(4);
        s.enqueue(CoreId(0), Pid(10));
        s.enqueue(CoreId(1), Pid(11));
        assert_eq!(s.pick_next(CoreId(0)), Some(Pid(10)));
        assert_eq!(s.stats().local_dispatches.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats().steals.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn steal_from_loaded_peer() {
        let s = Scheduler::new(4);
        s.enqueue(CoreId(2), Pid(1));
        s.enqueue(CoreId(2), Pid(2));
        s.enqueue(CoreId(3), Pid(3));
        // Core 0 is empty: steals from core 2 (the most loaded), from the
        // back of the queue.
        assert_eq!(s.pick_next(CoreId(0)), Some(Pid(2)));
        assert_eq!(s.stats().steals.load(Ordering::Relaxed), 1);
        assert_eq!(s.load(CoreId(2)), 1);
    }

    #[test]
    fn idle_when_everything_empty() {
        let s = Scheduler::new(2);
        assert_eq!(s.pick_next(CoreId(1)), None);
        assert_eq!(s.stats().idle.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fifo_within_a_queue() {
        let s = Scheduler::new(1);
        for i in 0..5 {
            s.enqueue(CoreId(0), Pid(i));
        }
        for i in 0..5 {
            assert_eq!(s.pick_next(CoreId(0)), Some(Pid(i)));
        }
        assert_eq!(s.total_load(), 0);
    }

    #[test]
    fn concurrent_enqueue_dispatch() {
        let s = std::sync::Arc::new(Scheduler::new(4));
        let producers: Vec<_> = (0..4)
            .map(|c| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        s.enqueue(CoreId(c), Pid(c as u64 * 1000 + i));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|c| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while s.pick_next(CoreId(c)).is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 2000);
    }
}
