//! Process-management substrate for the MOSBENCH userspace kernel.
//!
//! Exim "forks a new process for each connection, which ... also forks
//! twice to deliver each message" (§3.1), so process creation and
//! destruction are on MOSBENCH's hot path. The scheduler follows the
//! pattern the paper holds up as the model for all its fixes: "the set of
//! runnable threads is partitioned into mostly-private per-core
//! scheduling queues; in the common case, each core only reads, writes,
//! and locks its own queue" (§4.1).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod process;
mod sched;

pub use process::{Pid, ProcError, Process, ProcessState, ProcessTable};
pub use sched::{SchedStats, Scheduler};
