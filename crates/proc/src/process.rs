//! Processes and the process table.

use parking_lot::RwLock;
use pk_percpu::CoreId;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// On a run queue or executing.
    Runnable,
    /// Blocked (waiting on I/O or a child).
    Sleeping,
    /// Exited, not yet reaped by its parent.
    Zombie,
}

/// Errors from process operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcError {
    /// Unknown pid.
    NoSuchProcess,
    /// Attempted to reap a child that has not exited.
    NotAZombie,
    /// Attempted to reap a process that is not a child of the caller.
    NotYourChild,
    /// Fork failed for lack of resources (`EAGAIN`); retrying later may
    /// succeed.
    ResourceExhausted,
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSuchProcess => f.write_str("no such process"),
            Self::NotAZombie => f.write_str("child has not exited"),
            Self::NotYourChild => f.write_str("not a child of the caller"),
            Self::ResourceExhausted => f.write_str("resource temporarily unavailable"),
        }
    }
}

impl std::error::Error for ProcError {}

/// A process: identity, parentage, and scheduling affinity.
#[derive(Debug)]
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// Parent pid (`Pid(0)` for the initial process).
    pub parent: Pid,
    /// Current state.
    state: RwLock<ProcessState>,
    /// The core the process was created on (its cache-affine home). Exim's
    /// foreseen bottleneck — "a per-connection process and the delivery
    /// process it forks run on different cores" (§5.2) — is observable by
    /// comparing home cores of parent and child.
    pub home_core: CoreId,
}

impl Process {
    /// Returns the process state.
    pub fn state(&self) -> ProcessState {
        *self.state.read()
    }

    fn set_state(&self, s: ProcessState) {
        *self.state.write() = s;
    }
}

/// The global process table.
#[derive(Debug)]
pub struct ProcessTable {
    procs: RwLock<HashMap<Pid, Arc<Process>>>,
    next_pid: AtomicU64,
    forks: AtomicU64,
    execs: AtomicU64,
    exits: AtomicU64,
    /// Forks where the child landed on a different core than the
    /// parent's home — the §6 foreseen cost ("the costs of thread and
    /// process creation seem likely to grow ... in the case where parent
    /// and child are on different cores").
    cross_core_forks: AtomicU64,
    /// `proc.fork_fail`: fork fails with EAGAIN, as when a process or
    /// memory limit is hit.
    fault_fork: pk_fault::FaultPoint,
}

impl ProcessTable {
    /// Creates a table containing the initial process (`Pid(1)`).
    pub fn new() -> Self {
        Self::with_faults(&pk_fault::FaultPlane::disabled())
    }

    /// Like [`ProcessTable::new`], with fork failures injectable through
    /// `faults` (`proc.fork_fail`).
    pub fn with_faults(faults: &pk_fault::FaultPlane) -> Self {
        let t = Self {
            procs: RwLock::new(HashMap::new()),
            next_pid: AtomicU64::new(1),
            forks: AtomicU64::new(0),
            execs: AtomicU64::new(0),
            exits: AtomicU64::new(0),
            cross_core_forks: AtomicU64::new(0),
            fault_fork: faults.point("proc.fork_fail"),
        };
        let init = t.spawn_raw(Pid(0), CoreId(0));
        debug_assert_eq!(init.pid, Pid(1));
        t
    }

    fn spawn_raw(&self, parent: Pid, core: CoreId) -> Arc<Process> {
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let p = Arc::new(Process {
            pid,
            parent,
            state: RwLock::new(ProcessState::Runnable),
            home_core: core,
        });
        self.procs.write().insert(pid, Arc::clone(&p));
        p
    }

    /// Forks a child of `parent` on `core`.
    pub fn fork(&self, parent: Pid, core: CoreId) -> Result<Arc<Process>, ProcError> {
        let parent_core = match self.procs.read().get(&parent) {
            Some(p) => p.home_core,
            None => return Err(ProcError::NoSuchProcess),
        };
        if self.fault_fork.should_inject() {
            return Err(ProcError::ResourceExhausted);
        }
        self.forks.fetch_add(1, Ordering::Relaxed);
        if parent_core != core {
            self.cross_core_forks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(self.spawn_raw(parent, core))
    }

    /// `exec(2)`: replaces the process image. In this model the only
    /// observable effect is the cost marker — which is the point: Exim's
    /// third application fix avoids "an exec() per mail message" (§5.2).
    pub fn exec(&self, pid: Pid) -> Result<(), ProcError> {
        if !self.procs.read().contains_key(&pid) {
            return Err(ProcError::NoSuchProcess);
        }
        self.execs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Marks `pid` as exited (zombie until reaped).
    pub fn exit(&self, pid: Pid) -> Result<(), ProcError> {
        let p = self
            .procs
            .read()
            .get(&pid)
            .cloned()
            .ok_or(ProcError::NoSuchProcess)?;
        p.set_state(ProcessState::Zombie);
        self.exits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reaps a zombie child: removes it from the table (`wait`).
    pub fn reap(&self, parent: Pid, child: Pid) -> Result<(), ProcError> {
        let mut procs = self.procs.write();
        let p = procs.get(&child).ok_or(ProcError::NoSuchProcess)?;
        if p.parent != parent {
            return Err(ProcError::NotYourChild);
        }
        if p.state() != ProcessState::Zombie {
            return Err(ProcError::NotAZombie);
        }
        procs.remove(&child);
        Ok(())
    }

    /// Puts a process to sleep / wakes it.
    pub fn set_sleeping(&self, pid: Pid, sleeping: bool) -> Result<(), ProcError> {
        let p = self
            .procs
            .read()
            .get(&pid)
            .cloned()
            .ok_or(ProcError::NoSuchProcess)?;
        p.set_state(if sleeping {
            ProcessState::Sleeping
        } else {
            ProcessState::Runnable
        });
        Ok(())
    }

    /// Fetches a process.
    pub fn get(&self, pid: Pid) -> Option<Arc<Process>> {
        self.procs.read().get(&pid).cloned()
    }

    /// Number of live (unreaped) processes.
    pub fn len(&self) -> usize {
        self.procs.read().len()
    }

    /// Returns whether only the initial process remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total forks performed.
    pub fn fork_count(&self) -> u64 {
        self.forks.load(Ordering::Relaxed)
    }

    /// Total exits performed.
    pub fn exit_count(&self) -> u64 {
        self.exits.load(Ordering::Relaxed)
    }

    /// Total execs performed.
    pub fn exec_count(&self) -> u64 {
        self.execs.load(Ordering::Relaxed)
    }

    /// Forks whose child landed on a different core than the parent.
    pub fn cross_core_fork_count(&self) -> u64 {
        self.cross_core_forks.load(Ordering::Relaxed)
    }
}

impl Default for ProcessTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_process_exists() {
        let t = ProcessTable::new();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(Pid(1)).unwrap().parent, Pid(0));
    }

    #[test]
    fn fork_exit_reap_lifecycle() {
        let t = ProcessTable::new();
        let child = t.fork(Pid(1), CoreId(2)).unwrap();
        assert_eq!(child.parent, Pid(1));
        assert_eq!(child.home_core, CoreId(2));
        assert_eq!(child.state(), ProcessState::Runnable);
        assert_eq!(t.reap(Pid(1), child.pid), Err(ProcError::NotAZombie));
        t.exit(child.pid).unwrap();
        assert_eq!(t.get(child.pid).unwrap().state(), ProcessState::Zombie);
        t.reap(Pid(1), child.pid).unwrap();
        assert!(t.get(child.pid).is_none());
        assert_eq!(t.fork_count(), 1);
        assert_eq!(t.exit_count(), 1);
    }

    #[test]
    fn reap_requires_parentage() {
        let t = ProcessTable::new();
        let a = t.fork(Pid(1), CoreId(0)).unwrap();
        let b = t.fork(a.pid, CoreId(0)).unwrap();
        t.exit(b.pid).unwrap();
        assert_eq!(t.reap(Pid(1), b.pid), Err(ProcError::NotYourChild));
        t.reap(a.pid, b.pid).unwrap();
    }

    #[test]
    fn fork_from_unknown_parent_fails() {
        let t = ProcessTable::new();
        assert_eq!(
            t.fork(Pid(99), CoreId(0)).unwrap_err(),
            ProcError::NoSuchProcess
        );
    }

    #[test]
    fn sleep_wake_cycle() {
        let t = ProcessTable::new();
        t.set_sleeping(Pid(1), true).unwrap();
        assert_eq!(t.get(Pid(1)).unwrap().state(), ProcessState::Sleeping);
        t.set_sleeping(Pid(1), false).unwrap();
        assert_eq!(t.get(Pid(1)).unwrap().state(), ProcessState::Runnable);
    }

    #[test]
    fn exec_counts_and_validates() {
        let t = ProcessTable::new();
        assert_eq!(t.exec(Pid(99)).unwrap_err(), ProcError::NoSuchProcess);
        let c = t.fork(Pid(1), CoreId(0)).unwrap();
        t.exec(c.pid).unwrap();
        t.exec(c.pid).unwrap();
        assert_eq!(t.exec_count(), 2);
    }

    #[test]
    fn cross_core_forks_are_counted() {
        let t = ProcessTable::new(); // init lives on core 0
        t.fork(Pid(1), CoreId(0)).unwrap();
        assert_eq!(t.cross_core_fork_count(), 0);
        t.fork(Pid(1), CoreId(3)).unwrap();
        assert_eq!(t.cross_core_fork_count(), 1);
    }

    #[test]
    fn injected_fork_failure_is_transient() {
        let faults = pk_fault::FaultPlane::with_seed(4);
        faults.set("proc.fork_fail", pk_fault::FaultSchedule::EveryNth(2));
        faults.enable();
        let t = ProcessTable::with_faults(&faults);
        t.fork(Pid(1), CoreId(0)).unwrap();
        assert_eq!(
            t.fork(Pid(1), CoreId(0)).unwrap_err(),
            ProcError::ResourceExhausted
        );
        assert_eq!(t.fork_count(), 1, "failed fork does not count as a fork");
        assert_eq!(t.len(), 2, "no half-made process in the table");
        t.fork(Pid(1), CoreId(0)).unwrap();
    }

    #[test]
    fn exim_style_double_fork() {
        // Master forks a per-connection process, which forks twice to
        // deliver (§3.1).
        let t = ProcessTable::new();
        let conn = t.fork(Pid(1), CoreId(0)).unwrap();
        let d1 = t.fork(conn.pid, CoreId(0)).unwrap();
        let d2 = t.fork(conn.pid, CoreId(1)).unwrap();
        assert_eq!(t.len(), 4);
        for p in [d1.pid, d2.pid] {
            t.exit(p).unwrap();
            t.reap(conn.pid, p).unwrap();
        }
        t.exit(conn.pid).unwrap();
        t.reap(Pid(1), conn.pid).unwrap();
        assert_eq!(t.len(), 1);
    }
}
