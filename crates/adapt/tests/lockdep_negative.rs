//! Negative test: the governor's state is registered under the named
//! pk-lockdep class `adapt.governor` (kind Blocking), so a policy flip
//! attempted from inside an RCU read-side section — where a promoted
//! structure's readers live — is caught as a would-stall-grace-periods
//! violation rather than silently wedging writers.

#![cfg(feature = "lockdep")]

use pk_adapt::{Governor, GovernorPolicy};
use pk_lockdep::ViolationKind;
use pk_sloppy::SloppyCounter;
use pk_sync::rcu;
use std::sync::Arc;

#[test]
fn policy_flip_inside_epoch_section_is_reported() {
    let g = Governor::new(GovernorPolicy::default());
    let c = Arc::new(SloppyCounter::new(4));
    c.degrade_to_central();
    g.register_counter("negtest.adapt.counter", Arc::clone(&c));

    {
        // A reader of the promoted structure holds the epoch open; a
        // governor epoch here would take the blocking state lock while
        // grace periods wait on this very section.
        let _epoch = rcu::read_lock();
        let _ = g.epoch();
    }

    let v = pk_lockdep::violations()
        .into_iter()
        .find(|v| v.kind == ViolationKind::BlockingInEpoch && v.message.contains("adapt.governor"))
        .unwrap_or_else(|| {
            panic!(
                "no BlockingInEpoch violation naming adapt.governor; store: {:#?}",
                pk_lockdep::violations()
            )
        });
    assert!(
        v.message.contains("epoch read-side"),
        "missing epoch diagnosis: {}",
        v.message
    );
}

#[test]
fn policy_flip_outside_epoch_sections_is_clean() {
    let g = Governor::new(GovernorPolicy::default());
    let c = Arc::new(SloppyCounter::new(4));
    g.register_counter("negtest.adapt.clean", Arc::clone(&c));
    // Registration and epochs outside any read-side section: the
    // Blocking class alone must not be flagged.
    let _ = g.epoch();
    let _ = g.epoch();
    assert!(
        !pk_lockdep::violations()
            .iter()
            .any(|v| v.message.contains("negtest.adapt.clean")),
        "flip outside epoch sections must be clean"
    );
}
