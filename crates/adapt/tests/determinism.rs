//! The determinism contract and the hysteresis state machine, tested
//! from outside the crate.
//!
//! ISSUE-8's contract: at a pinned seed the controller's decision log
//! is **byte-identical** run to run, *including* runs racing on
//! separate OS threads — the controller is driven by the simulator's
//! virtual clock, so host scheduling must be unobservable. Hysteresis
//! is checked by property: over arbitrary observation streams, no knob
//! ever reverses inside its cooldown window, consecutive decisions for
//! a knob strictly alternate, and every decision's trigger share is on
//! the correct side of the band.

use pk_adapt::{render_log, AdaptController, AdaptPolicy, Observation};
use pk_kernel::{FixId, KernelConfig};
use pk_sim::{Network, Station};
use proptest::prelude::*;
use std::thread;

/// A three-bottleneck synthetic network: each classed station's demand
/// vanishes once its fix is promoted (the `demand_unless` idiom), at
/// which point the next-worst bottleneck dominates — forcing the
/// controller through a multi-epoch promotion cascade.
fn cascade(cfg: &KernelConfig) -> Network {
    let mut n = Network::new();
    n.push(Station::delay("user", 9_000.0, false));
    let d = |fix: FixId, cycles: f64| if cfg.has(fix) { 0.0 } else { cycles };
    n.push(
        Station::spinlock("mount lock", d(FixId::PerCoreMountCache, 700.0), 0.35, true)
            .with_class("vfs.mount_table"),
    );
    n.push(
        Station::queue("dentry refs", d(FixId::SloppyDentryRefs, 260.0), true)
            .with_class("vfs.dentry_ref"),
    );
    n.push(
        Station::queue("dst refs", d(FixId::SloppyDstRefs, 120.0), true).with_class("net.dst_ref"),
    );
    n
}

#[test]
fn decision_log_is_byte_identical_across_os_threads() {
    let run = || {
        AdaptController::new(KernelConfig::adaptive(48), AdaptPolicy::default(), 42)
            .converge_des(cascade, 48)
    };
    let reference = run();
    assert!(reference.converged, "cascade must settle");
    assert!(
        !reference.decisions.is_empty(),
        "cascade must promote something"
    );
    let reference_log = render_log(&reference.decisions);

    // Eight racing controllers, each on its own OS thread, interleaved
    // however the host scheduler pleases.
    let handles: Vec<_> = (0..8)
        .map(|_| thread::spawn(move || render_log(&run().decisions)))
        .collect();
    for h in handles {
        assert_eq!(
            h.join().unwrap(),
            reference_log,
            "host scheduling leaked into the decision log"
        );
    }
}

#[test]
fn cascade_promotes_every_bottleneck_without_flapping() {
    let out = AdaptController::new(KernelConfig::adaptive(48), AdaptPolicy::default(), 42)
        .converge_des(cascade, 48);
    assert!(out.config.has(FixId::PerCoreMountCache));
    assert!(out.config.has(FixId::SloppyDentryRefs));
    assert!(out.config.has(FixId::SloppyDstRefs));
    assert_eq!(
        out.max_direction_changes(),
        1,
        "each knob moves exactly once: {:?}",
        out.decisions
    );
}

#[test]
fn different_seeds_may_differ_but_each_seed_is_stable() {
    for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
        let run = |s: u64| {
            AdaptController::new(KernelConfig::adaptive(24), AdaptPolicy::default(), s)
                .converge_des(cascade, 24)
        };
        let (a, b) = (run(seed), run(seed));
        assert_eq!(render_log(&a.decisions), render_log(&b.decisions));
        assert_eq!(a.config, b.config);
        assert_eq!(a.epochs, b.epochs);
    }
}

/// Classes with registered fixes, used by the property streams.
const CLASSES: [&str; 4] = [
    "vfs.mount_table",
    "vfs.dentry_ref",
    "net.dst_ref",
    "mm.page_line",
];

fn observation_stream() -> impl Strategy<Value = Vec<Vec<(usize, u64)>>> {
    // Up to 40 epochs; each epoch observes a subset of the classes at
    // an arbitrary share in [0, 10000] basis points.
    proptest::collection::vec(
        proptest::collection::vec((0usize..CLASSES.len(), 0u64..10_001), 1..CLASSES.len()),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hysteresis_never_reverses_inside_cooldown(stream in observation_stream()) {
        let policy = AdaptPolicy::default();
        let mut c = AdaptController::new(KernelConfig::adaptive(8), policy, 1);
        for epoch in &stream {
            let obs: Vec<Observation> = epoch
                .iter()
                .map(|&(i, share_bp)| Observation { class: CLASSES[i], share_bp })
                .collect();
            c.observe(&obs);
        }
        // Per-knob invariants over the full log.
        for class in CLASSES {
            let knob: Vec<_> = c.decisions().iter().filter(|d| d.class == class).collect();
            for pair in knob.windows(2) {
                prop_assert_ne!(
                    pair[0].enabled, pair[1].enabled,
                    "consecutive decisions for a knob must alternate"
                );
                prop_assert!(
                    pair[1].epoch - pair[0].epoch >= policy.cooldown_epochs,
                    "reversal inside the cooldown window: {:?} then {:?}",
                    pair[0], pair[1]
                );
            }
        }
        // Every decision fired on the correct side of the band.
        for d in c.decisions() {
            if d.enabled {
                prop_assert!(d.share_bp >= policy.promote_share_bp);
            } else {
                prop_assert!(d.share_bp <= policy.demote_share_bp);
            }
        }
    }

    #[test]
    fn identical_streams_give_identical_logs(stream in observation_stream()) {
        let feed = || {
            let mut c = AdaptController::new(
                KernelConfig::adaptive(8),
                AdaptPolicy::default(),
                9,
            );
            for epoch in &stream {
                let obs: Vec<Observation> = epoch
                    .iter()
                    .map(|&(i, share_bp)| Observation { class: CLASSES[i], share_bp })
                    .collect();
                c.observe(&obs);
            }
            c.log_json()
        };
        prop_assert_eq!(feed(), feed());
    }
}
