//! Functional levers: the governor that retunes *live* kernel
//! structures.
//!
//! The [`AdaptController`](crate::AdaptController) decides *policy* over
//! the queueing model; the [`Governor`] applies the same
//! observe→hysteresis→act loop to real objects at runtime:
//!
//! * a degraded [`SloppyCounter`] whose central line is getting hammered
//!   is promoted back to per-core banking
//!   ([`SloppyCounter::restore_per_core`]);
//! * a banked counter that has gone idle is demoted to exact central
//!   mode ([`SloppyCounter::degrade_to_central`]) so its drift
//!   disappears while nobody is paying for exactness;
//! * a banked counter still taking too many central trips has its
//!   spare-banking threshold doubled
//!   ([`SloppyCounter::set_threshold`]) — the drift-vs-contention
//!   trade tuned from the counter's own `(central, local)` op counts;
//! * a registered stripe lever (e.g. [`Dcache::split_buckets`]) fires
//!   when its observed per-stripe load exceeds the configured bound.
//!
//! All governor state lives under one [`AdaptiveMutex`] registered with
//! pk-lockdep as the named class **`adapt.governor`** (kind Blocking).
//! That registration is load-bearing: a policy flip necessarily takes
//! this lock, so lockdep can prove a flip is never attempted from an
//! RCU read-side section — see `tests/lockdep_negative.rs`.
//!
//! [`Dcache::split_buckets`]: ../pk_vfs/struct.Dcache.html

use pk_lockdep::{register_class, LockKind};
use pk_sloppy::SloppyCounter;
use pk_sync::AdaptiveMutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// Tuning for the runtime governor's hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorPolicy {
    /// Central-line ops per epoch above which a degraded counter is
    /// promoted back to per-core banking.
    pub promote_central_ops: u64,
    /// Total ops per epoch below which a banked counter is demoted to
    /// exact central mode. Must sit below `promote_central_ops` — the
    /// gap is the hysteresis band.
    pub demote_total_ops: u64,
    /// A banked counter whose central ops exceed `local_ops /
    /// tune_divisor` this epoch has its threshold doubled (too much
    /// excess is being returned — bank more).
    pub tune_divisor: u64,
    /// Upper bound for threshold doubling.
    pub max_threshold: i64,
    /// Epochs an entry is frozen after any action.
    pub cooldown_epochs: u32,
    /// Per-stripe load above which a stripe lever fires.
    pub split_load: u64,
    /// Maximum times any one stripe lever may fire.
    pub max_splits: u32,
}

impl Default for GovernorPolicy {
    fn default() -> Self {
        Self {
            promote_central_ops: 64,
            demote_total_ops: 8,
            tune_divisor: 4,
            max_threshold: 1 << 20,
            cooldown_epochs: 2,
            split_load: 32,
            max_splits: 4,
        }
    }
}

/// One action the governor committed against a live structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GovAction {
    /// Resumed per-core banking on a contended degraded counter.
    RestoreBanking,
    /// Degraded an idle banked counter to exact central mode.
    Degrade,
    /// Retuned a counter's spare-banking threshold.
    SetThreshold(i64),
    /// Fired a stripe lever; payload is the new stripe count.
    Split(usize),
}

/// A logged governor action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovDecision {
    /// Governor epoch (1-based) at which the action fired.
    pub epoch: u32,
    /// The registered name of the structure acted on.
    pub name: String,
    /// What was done.
    pub action: GovAction,
}

struct CounterEntry {
    counter: Arc<SloppyCounter>,
    last_central: u64,
    last_local: u64,
    last_change: Option<u32>,
    direction_changes: u32,
}

/// A stripe lever: `load` observes current peak per-stripe load,
/// `split` doubles the stripe count and returns the new count.
struct StripeEntry {
    load: Box<dyn Fn() -> u64 + Send>,
    split: Box<dyn Fn() -> usize + Send>,
    splits_done: u32,
    last_change: Option<u32>,
}

#[derive(Default)]
struct GovState {
    epoch: u32,
    // Vec keyed by insertion order: registration order is part of the
    // determinism contract (BTreeMap would also do, but order-of-
    // registration reads better in logs).
    counters: Vec<(String, CounterEntry)>,
    stripes: Vec<(String, StripeEntry)>,
    log: Vec<GovDecision>,
}

/// The runtime policy governor. See the module docs for the loop it
/// runs; all methods are safe to call from any thread.
pub struct Governor {
    policy: GovernorPolicy,
    state: AdaptiveMutex<GovState>,
}

impl Governor {
    /// Creates a governor and registers its state lock under the named
    /// lockdep class `adapt.governor` (Blocking).
    pub fn new(policy: GovernorPolicy) -> Self {
        assert!(
            policy.demote_total_ops < policy.promote_central_ops,
            "hysteresis requires demote < promote"
        );
        assert!(
            policy.tune_divisor > 0,
            "tune_divisor must be nonzero (epoch divides by it)"
        );
        let state = AdaptiveMutex::new(GovState::default());
        state.set_class(register_class(
            "adapt.governor",
            "pk-adapt",
            LockKind::Blocking,
        ));
        Self { policy, state }
    }

    /// Registers a sloppy counter for governance under `name`.
    pub fn register_counter(&self, name: &str, counter: Arc<SloppyCounter>) {
        let (central, local) = counter.op_counts();
        let mut st = self.state.lock();
        st.counters.push((
            name.to_string(),
            CounterEntry {
                counter,
                last_central: central,
                last_local: local,
                last_change: None,
                direction_changes: 0,
            },
        ));
    }

    /// Registers a stripe lever under `name`. `load` reports the peak
    /// per-stripe load; `split` doubles the stripe count and returns
    /// the new count (e.g. `Dcache::split_buckets`).
    pub fn register_stripe(
        &self,
        name: &str,
        load: impl Fn() -> u64 + Send + 'static,
        split: impl Fn() -> usize + Send + 'static,
    ) {
        let mut st = self.state.lock();
        st.stripes.push((
            name.to_string(),
            StripeEntry {
                load: Box::new(load),
                split: Box::new(split),
                splits_done: 0,
                last_change: None,
            },
        ));
    }

    /// Runs one governance epoch: samples every registered structure,
    /// applies hysteresis, and commits any actions. Returns the actions
    /// taken this epoch.
    ///
    /// Acquires the governor's blocking state lock — must never be
    /// called from inside an RCU read-side section (pk-lockdep enforces
    /// this via the `adapt.governor` class).
    pub fn epoch(&self) -> Vec<GovDecision> {
        let policy = self.policy;
        let mut st = self.state.lock();
        st.epoch += 1;
        let epoch = st.epoch;
        let mut made = Vec::new();

        for (name, e) in &mut st.counters {
            let (central, local) = e.counter.op_counts();
            let dc = central.saturating_sub(e.last_central);
            let dl = local.saturating_sub(e.last_local);
            e.last_central = central;
            e.last_local = local;
            if let Some(at) = e.last_change {
                if epoch - at < policy.cooldown_epochs {
                    continue;
                }
            }
            let action = if e.counter.is_degraded() {
                (dc >= policy.promote_central_ops).then(|| {
                    e.counter.restore_per_core();
                    e.direction_changes += 1;
                    GovAction::RestoreBanking
                })
            } else if dc + dl <= policy.demote_total_ops {
                e.counter.degrade_to_central();
                e.direction_changes += 1;
                Some(GovAction::Degrade)
            } else if dc > dl / policy.tune_divisor {
                // Banking is live but the central line is still hot:
                // the threshold is too low, excess keeps flowing back.
                let cur = e.counter.config().threshold;
                let next = (cur * 2).max(1).min(policy.max_threshold);
                (next != cur).then(|| {
                    e.counter.set_threshold(next);
                    GovAction::SetThreshold(next)
                })
            } else {
                None
            };
            if let Some(action) = action {
                e.last_change = Some(epoch);
                made.push(GovDecision {
                    epoch,
                    name: name.clone(),
                    action,
                });
            }
        }

        for (name, e) in &mut st.stripes {
            if e.splits_done >= policy.max_splits {
                continue;
            }
            if let Some(at) = e.last_change {
                if epoch - at < policy.cooldown_epochs {
                    continue;
                }
            }
            if (e.load)() >= policy.split_load {
                let stripes = (e.split)();
                e.splits_done += 1;
                e.last_change = Some(epoch);
                made.push(GovDecision {
                    epoch,
                    name: name.clone(),
                    action: GovAction::Split(stripes),
                });
            }
        }

        st.log.extend(made.iter().cloned());
        made
    }

    /// The full action log, in commit order.
    pub fn decisions(&self) -> Vec<GovDecision> {
        self.state.lock().log.clone()
    }

    /// The largest banking direction-change count over all governed
    /// counters (threshold retunes and splits are monotone and do not
    /// count as direction changes).
    pub fn max_direction_changes(&self) -> u32 {
        self.state
            .lock()
            .counters
            .iter()
            .map(|(_, e)| e.direction_changes)
            .max()
            .unwrap_or(0)
    }

    /// Renders the action log as JSON lines (keys in fixed order).
    pub fn log_json(&self) -> String {
        let mut out = String::new();
        for d in self.decisions() {
            let action = match d.action {
                GovAction::RestoreBanking => "\"restore_banking\"".to_string(),
                GovAction::Degrade => "\"degrade\"".to_string(),
                GovAction::SetThreshold(t) => format!("{{\"set_threshold\":{t}}}"),
                GovAction::Split(n) => format!("{{\"split\":{n}}}"),
            };
            let _ = writeln!(
                out,
                "{{\"epoch\":{},\"name\":\"{}\",\"action\":{}}}",
                d.epoch, d.name, action
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_percpu::CoreId;
    use pk_sloppy::SloppyConfig;

    fn counter(cores: usize, threshold: i64) -> Arc<SloppyCounter> {
        Arc::new(SloppyCounter::with_config(
            cores,
            SloppyConfig {
                threshold,
                ..SloppyConfig::default()
            },
        ))
    }

    #[test]
    fn contended_degraded_counter_is_promoted() {
        let g = Governor::new(GovernorPolicy::default());
        let c = counter(4, 8);
        c.degrade_to_central();
        g.register_counter("vfs.dentry_ref", Arc::clone(&c));
        // Degraded mode: every op is a central op.
        for _ in 0..100 {
            c.acquire(CoreId(0), 1);
            c.release(CoreId(0), 1);
        }
        let made = g.epoch();
        assert_eq!(made.len(), 1);
        assert_eq!(made[0].action, GovAction::RestoreBanking);
        assert!(!c.is_degraded());
    }

    #[test]
    fn idle_banked_counter_is_demoted_after_cooldown() {
        let g = Governor::new(GovernorPolicy::default());
        let c = counter(4, 8);
        g.register_counter("vfs.vfsmount_ref", Arc::clone(&c));
        // Epoch 1: idle from the start → demote (no prior change, no
        // cooldown to respect).
        let made = g.epoch();
        assert_eq!(made.len(), 1);
        assert_eq!(made[0].action, GovAction::Degrade);
        assert!(c.is_degraded());
        // Still idle: promotion needs real central traffic, none comes.
        for _ in 0..4 {
            assert!(g.epoch().is_empty());
        }
        assert_eq!(g.max_direction_changes(), 1);
    }

    #[test]
    fn hot_central_line_doubles_threshold() {
        let g = Governor::new(GovernorPolicy::default());
        // Threshold 0: every release returns excess to central, so
        // central trips track local ops 1:1 — maximal contention signal.
        let c = counter(2, 0);
        g.register_counter("net.dst_ref", Arc::clone(&c));
        for _ in 0..200 {
            c.acquire(CoreId(0), 1);
            c.release(CoreId(0), 1);
        }
        let made = g.epoch();
        assert_eq!(made.len(), 1);
        assert_eq!(made[0].action, GovAction::SetThreshold(1));
        assert_eq!(c.config().threshold, 1);
        // Keep the pressure on past the cooldown: doubles again.
        for _ in 0..6 {
            for _ in 0..200 {
                c.acquire(CoreId(0), 3);
                c.release(CoreId(0), 3);
            }
            g.epoch();
        }
        assert!(c.config().threshold > 1);
        // Threshold tuning is monotone: never a direction change.
        assert_eq!(g.max_direction_changes(), 0);
    }

    #[test]
    fn stripe_lever_fires_on_load_and_respects_caps() {
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        let g = Governor::new(GovernorPolicy {
            cooldown_epochs: 1,
            max_splits: 2,
            ..GovernorPolicy::default()
        });
        let load = Arc::new(AtomicU64::new(100));
        let stripes = Arc::new(AtomicUsize::new(64));
        let (l, s) = (Arc::clone(&load), Arc::clone(&stripes));
        g.register_stripe(
            "vfs.dcache",
            move || l.load(Ordering::Relaxed),
            move || {
                let n = s.load(Ordering::Relaxed) * 2;
                s.store(n, Ordering::Relaxed);
                n
            },
        );
        assert_eq!(g.epoch()[0].action, GovAction::Split(128));
        assert_eq!(g.epoch()[0].action, GovAction::Split(256));
        // Cap reached: load stays high but the lever is spent.
        assert!(g.epoch().is_empty());
        assert_eq!(stripes.load(Ordering::Relaxed), 256);
    }

    #[test]
    #[should_panic(expected = "tune_divisor")]
    fn zero_tune_divisor_is_rejected() {
        Governor::new(GovernorPolicy {
            tune_divisor: 0,
            ..GovernorPolicy::default()
        });
    }

    #[test]
    fn promote_demote_cycle_preserves_counter_invariant() {
        let g = Governor::new(GovernorPolicy::default());
        let c = counter(4, 8);
        g.register_counter("cycle", Arc::clone(&c));
        for round in 0..6 {
            if round % 2 == 0 {
                for core in 0..4 {
                    c.acquire(CoreId(core), 5);
                    c.release(CoreId(core), 5);
                }
            }
            g.epoch();
            g.epoch(); // burn the cooldown
            assert_eq!(c.central(), c.in_use() + c.spares());
        }
        assert_eq!(c.reconcile(), 0);
    }
}
