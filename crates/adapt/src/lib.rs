//! Adaptive contention management: the third kernel personality.
//!
//! The paper's method was manual: profile a workload at 48 cores, find
//! the contended kernel structure, apply the matching fix (a sloppy
//! counter, a per-core cache, finer-grained locks), repeat — 16
//! hand-placed patches in all. This crate closes that loop by machine.
//!
//! Two layers, same observe→hysteresis→act loop:
//!
//! * [`AdaptController`] works at the *model* level. At seeded epoch
//!   boundaries it runs the workload's queueing network through the
//!   DES, computes each classed kernel structure's share of end-to-end
//!   cycles/op, and flips the fix registered for that class
//!   ([`pk_kernel::fix_for_class`]) when the share crosses a
//!   threshold. Promotion and demotion are separated by a hysteresis
//!   band and a cooldown window, so policy cannot flap. Everything is
//!   driven by the simulator's virtual clock and a pinned seed — two
//!   runs produce byte-identical decision logs.
//! * [`Governor`] works at the *runtime* level, applying the same
//!   discipline to live objects: it promotes and demotes
//!   [`pk_sloppy::SloppyCounter`]s between per-core banking and exact
//!   central mode, retunes their banking thresholds from observed
//!   drift-vs-contention ratios, and fires registered stripe levers
//!   (e.g. dcache bucket splits) when per-stripe load exceeds a bound.
//!   Its state lives under the named lockdep class `adapt.governor`.
//!
//! The `adaptive` personality ([`pk_kernel::KernelConfig::adaptive`])
//! boots with **zero** fixes enabled and earns each one from
//! observation; `pk-bench --bin adaptive_report` asserts it reaches
//! ≥ 90% of the hand-fixed PK kernel's throughput on every roster
//! workload with no per-workload knowledge anywhere in this crate.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod controller;
mod governor;

pub use controller::{
    render_log, AdaptController, AdaptPolicy, ConvergeOutcome, Decision, Observation,
};
pub use governor::{GovAction, GovDecision, Governor, GovernorPolicy};
