//! The deterministic adaptation controller.
//!
//! The controller closes the paper's loop by machine: where Boyd-Wickizer
//! et al. profiled one bottleneck at a time and hand-placed 16 fixes,
//! [`AdaptController`] samples per-station contention at epoch
//! boundaries, maps each contended kernel structure to the lever
//! registered for it in the fix table ([`pk_kernel::fix_for_class`]),
//! and flips that lever in the live [`KernelConfig`] — promotion when a
//! structure's residence share crosses the upper threshold, demotion
//! when it falls below the lower one, with a cooldown in between so the
//! policy cannot flap.
//!
//! Everything is driven by the simulator's virtual clock and a pinned
//! seed: two runs at the same seed produce byte-identical decision
//! logs, which is what lets CI assert on the controller's behaviour.

use pk_kernel::{fix_for_class, FixId, KernelConfig};
use pk_sim::{des, Network};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tuning for the hysteresis state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptPolicy {
    /// Residence share (basis points of cycles/op) above which a
    /// structure's lever is promoted.
    pub promote_share_bp: u64,
    /// Residence share (basis points) below which an enabled lever is
    /// demoted. Must be strictly less than `promote_share_bp` — the gap
    /// is the hysteresis band.
    pub demote_share_bp: u64,
    /// Epochs a knob is frozen after any change (no reversal inside the
    /// window, whatever the signal does).
    pub cooldown_epochs: u32,
    /// Consecutive decision-free epochs after which the controller
    /// declares convergence.
    pub settle_epochs: u32,
    /// Hard epoch cap for [`AdaptController::converge_des`].
    pub max_epochs: u32,
    /// DES operations per core per measurement epoch.
    pub ops_per_core: u64,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        Self {
            promote_share_bp: 50, // 0.50% of cycles/op
            demote_share_bp: 10,  // 0.10%
            cooldown_epochs: 2,
            settle_epochs: 2,
            max_epochs: 32,
            ops_per_core: 200,
        }
    }
}

/// One epoch's contention sample for one classed kernel structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The structure's class name (matches `Station::class` and
    /// `Fix::class`).
    pub class: &'static str,
    /// The structure's share of end-to-end cycles/op, in basis points
    /// (service + queueing wait). Integer so decision logs are
    /// byte-stable.
    pub share_bp: u64,
}

/// One policy change the controller committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Epoch (1-based) at which the change was made.
    pub epoch: u32,
    /// The structure class whose observation triggered the change.
    pub class: &'static str,
    /// The lever that was flipped.
    pub fix: FixId,
    /// New state of the lever.
    pub enabled: bool,
    /// The observed share that crossed the threshold.
    pub share_bp: u64,
}

/// Per-lever hysteresis state.
#[derive(Debug, Clone, Copy)]
struct KnobState {
    enabled: bool,
    /// Epoch of the most recent change (cooldown anchor).
    last_change: Option<u32>,
    /// How many times the knob has changed direction (first change
    /// counts as one). The ISSUE-8 convergence bound is ≤ 3.
    direction_changes: u32,
}

/// Result of running the controller to convergence over the DES.
#[derive(Debug, Clone)]
pub struct ConvergeOutcome {
    /// The final (post-adaptation) kernel configuration.
    pub config: KernelConfig,
    /// Measurement epochs consumed.
    pub epochs: u32,
    /// Whether the controller settled before `max_epochs`.
    pub converged: bool,
    /// Every decision, in commit order.
    pub decisions: Vec<Decision>,
    /// Direction changes per knob (class → count).
    pub direction_changes: BTreeMap<&'static str, u32>,
}

impl ConvergeOutcome {
    /// The largest direction-change count over all knobs (0 if no knob
    /// ever moved). The flap bound the report asserts on.
    pub fn max_direction_changes(&self) -> u32 {
        self.direction_changes.values().copied().max().unwrap_or(0)
    }
}

/// The epoch-driven promotion/demotion controller.
///
/// Workload-agnostic by construction: it sees only classed stations and
/// the fix registry, never workload names. Feed it observations
/// directly ([`AdaptController::observe`]) or let it measure through
/// the DES ([`AdaptController::converge_des`]).
#[derive(Debug)]
pub struct AdaptController {
    policy: AdaptPolicy,
    config: KernelConfig,
    seed: u64,
    epoch: u32,
    knobs: BTreeMap<&'static str, KnobState>,
    log: Vec<Decision>,
}

/// SplitMix64: the per-epoch seed mixer (deterministic, stateless).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AdaptController {
    /// Creates a controller over `config` (normally
    /// [`KernelConfig::adaptive`]) with the given policy and seed.
    ///
    /// # Panics
    ///
    /// Panics if the policy's demote threshold is not strictly below
    /// its promote threshold (no hysteresis band → guaranteed flapping).
    pub fn new(config: KernelConfig, policy: AdaptPolicy, seed: u64) -> Self {
        assert!(
            policy.demote_share_bp < policy.promote_share_bp,
            "hysteresis requires demote < promote"
        );
        Self {
            policy,
            config,
            seed,
            epoch: 0,
            knobs: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// The controller's current configuration (fixes flipped so far).
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// Epochs observed so far.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The full decision log, in commit order.
    pub fn decisions(&self) -> &[Decision] {
        &self.log
    }

    /// Consumes one epoch of observations and commits any threshold
    /// crossings that survive hysteresis. Returns the decisions made
    /// this epoch.
    ///
    /// Rules, applied per classed structure in class order:
    /// * no registered lever ([`fix_for_class`] = `None`) → ignored;
    /// * inside the cooldown window after a change → frozen;
    /// * lever off and share ≥ promote threshold → promote;
    /// * lever on and share ≤ demote threshold → demote;
    /// * a structure **absent** from the epoch's observations (e.g. its
    ///   station vanished once the fix zeroed its demand) is *not*
    ///   treated as share 0 — no observation, no decision. This is the
    ///   anti-flap rule: promotion removes the signal, and the absence
    ///   of a signal must not argue for demotion.
    pub fn observe(&mut self, observations: &[Observation]) -> Vec<Decision> {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut sorted: Vec<&Observation> = observations.iter().collect();
        sorted.sort_by_key(|o| o.class);
        let mut made = Vec::new();
        for obs in sorted {
            let Some(fix) = fix_for_class(obs.class) else {
                continue;
            };
            let knob = self.knobs.entry(obs.class).or_insert(KnobState {
                enabled: self.config.has(fix),
                last_change: None,
                direction_changes: 0,
            });
            if let Some(at) = knob.last_change {
                if epoch - at < self.policy.cooldown_epochs {
                    continue;
                }
            }
            let flip = if !knob.enabled {
                obs.share_bp >= self.policy.promote_share_bp
            } else {
                obs.share_bp <= self.policy.demote_share_bp
            };
            if !flip {
                continue;
            }
            knob.enabled = !knob.enabled;
            knob.last_change = Some(epoch);
            knob.direction_changes += 1;
            self.config = self.config.with_fix(fix, knob.enabled);
            let d = Decision {
                epoch,
                class: obs.class,
                fix,
                enabled: knob.enabled,
                share_bp: obs.share_bp,
            };
            self.log.push(d);
            made.push(d);
        }
        made
    }

    /// Measures one epoch through the DES: builds the network for the
    /// current config, simulates it at this epoch's derived seed, and
    /// returns the per-class residence shares.
    fn measure<F>(&self, build: &F, cores: usize) -> Vec<Observation>
    where
        F: Fn(&KernelConfig) -> Network,
    {
        let net = build(&self.config);
        let epoch_seed = splitmix64(self.seed ^ u64::from(self.epoch).wrapping_mul(0xA5A5_A5A5));
        let r = des::simulate(&net, cores, self.policy.ops_per_core, epoch_seed);
        let mut obs = Vec::new();
        for (j, st) in net.stations().iter().enumerate() {
            let Some(class) = st.class else { continue };
            let residence = st.demand_cycles + r.mean_wait_cycles[j];
            let share_bp = (residence / r.cycles_per_op * 10_000.0).round() as u64;
            obs.push(Observation { class, share_bp });
        }
        obs
    }

    /// Runs measure→observe epochs until the policy settles (no
    /// decision for `settle_epochs` consecutive epochs) or `max_epochs`
    /// is hit. `build` lowers a config to the workload's queueing
    /// network — the only workload-specific input, supplied by the
    /// caller so this crate stays workload-agnostic.
    pub fn converge_des<F>(mut self, build: F, cores: usize) -> ConvergeOutcome
    where
        F: Fn(&KernelConfig) -> Network,
    {
        let mut quiet = 0u32;
        let mut converged = false;
        while self.epoch < self.policy.max_epochs {
            let observations = self.measure(&build, cores);
            let made = self.observe(&observations);
            if made.is_empty() {
                quiet += 1;
                if quiet >= self.policy.settle_epochs {
                    converged = true;
                    break;
                }
            } else {
                quiet = 0;
            }
        }
        let direction_changes = self
            .knobs
            .iter()
            .map(|(class, k)| (*class, k.direction_changes))
            .collect();
        ConvergeOutcome {
            config: self.config,
            epochs: self.epoch,
            converged,
            decisions: self.log,
            direction_changes,
        }
    }

    /// Renders the decision log as JSON lines (one object per
    /// decision, keys in fixed order). Byte-identical for identical
    /// seeds — the determinism contract's observable artifact.
    pub fn log_json(&self) -> String {
        render_log(&self.log)
    }
}

/// Renders a decision slice as JSON lines (shared by the controller and
/// [`ConvergeOutcome`] consumers).
pub fn render_log(decisions: &[Decision]) -> String {
    let mut out = String::new();
    for d in decisions {
        let _ = writeln!(
            out,
            "{{\"epoch\":{},\"class\":\"{}\",\"fix\":\"{:?}\",\"enabled\":{},\"share_bp\":{}}}",
            d.epoch, d.class, d.fix, d.enabled, d.share_bp
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_sim::Station;

    fn obs(class: &'static str, share_bp: u64) -> Observation {
        Observation { class, share_bp }
    }

    #[test]
    fn promotes_above_threshold_and_maps_class_to_fix() {
        let mut c = AdaptController::new(KernelConfig::adaptive(8), AdaptPolicy::default(), 1);
        let made = c.observe(&[obs("vfs.mount_table", 4_000), obs("vfs.dentry_ref", 30)]);
        assert_eq!(made.len(), 1);
        assert_eq!(made[0].fix, FixId::PerCoreMountCache);
        assert!(made[0].enabled);
        assert!(c.config().has(FixId::PerCoreMountCache));
        assert!(!c.config().has(FixId::SloppyDentryRefs), "30bp < 50bp");
    }

    #[test]
    fn unknown_classes_are_ignored() {
        let mut c = AdaptController::new(KernelConfig::adaptive(8), AdaptPolicy::default(), 1);
        let made = c.observe(&[obs("app.lock_manager", 9_999)]);
        assert!(made.is_empty());
        assert_eq!(c.config().enabled_count(), 0);
    }

    #[test]
    fn cooldown_freezes_reversals() {
        let policy = AdaptPolicy {
            cooldown_epochs: 3,
            ..AdaptPolicy::default()
        };
        let mut c = AdaptController::new(KernelConfig::adaptive(8), policy, 1);
        assert_eq!(c.observe(&[obs("net.dst_ref", 800)]).len(), 1);
        // Signal collapses immediately, but the knob is frozen for the
        // cooldown window (epochs 2 and 3; change was at epoch 1).
        assert!(c.observe(&[obs("net.dst_ref", 0)]).is_empty());
        assert!(c.observe(&[obs("net.dst_ref", 0)]).is_empty());
        // Epoch 4: window over, demotion allowed.
        let made = c.observe(&[obs("net.dst_ref", 0)]);
        assert_eq!(made.len(), 1);
        assert!(!made[0].enabled);
    }

    #[test]
    fn absent_signal_does_not_demote() {
        let mut c = AdaptController::new(KernelConfig::adaptive(8), AdaptPolicy::default(), 1);
        c.observe(&[obs("vfs.dentry_ref", 900)]);
        // The fixed structure's station vanished: no observation at all.
        for _ in 0..10 {
            assert!(c.observe(&[]).is_empty());
        }
        assert!(
            c.config().has(FixId::SloppyDentryRefs),
            "no flap on silence"
        );
    }

    #[test]
    fn hysteresis_band_blocks_mid_range_flapping() {
        let mut c = AdaptController::new(KernelConfig::adaptive(8), AdaptPolicy::default(), 1);
        c.observe(&[obs("mm.page_line", 600)]);
        // Share in the (demote, promote) band: no decision either way.
        for _ in 0..10 {
            assert!(c.observe(&[obs("mm.page_line", 30)]).is_empty());
        }
        assert!(c.config().has(FixId::PageFalseSharing));
    }

    #[test]
    fn converge_des_promotes_the_modeled_bottleneck() {
        // Model world: a classed spinlock whose demand disappears once
        // its fix is on — the demand_unless idiom in miniature.
        let build = |cfg: &KernelConfig| {
            let mut n = Network::new();
            n.push(Station::delay("user", 10_000.0, false));
            let lock = if cfg.has(FixId::PerCoreMountCache) {
                0.0
            } else {
                900.0
            };
            n.push(Station::spinlock("mount lock", lock, 0.4, true).with_class("vfs.mount_table"));
            n
        };
        let c = AdaptController::new(KernelConfig::adaptive(16), AdaptPolicy::default(), 42);
        let out = c.converge_des(build, 16);
        assert!(out.converged);
        assert!(out.config.has(FixId::PerCoreMountCache));
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.max_direction_changes(), 1);
    }

    #[test]
    fn converge_des_is_deterministic() {
        let build = |cfg: &KernelConfig| {
            let mut n = Network::new();
            n.push(Station::delay("user", 8_000.0, false));
            let d = if cfg.has(FixId::SloppyDstRefs) {
                0.0
            } else {
                400.0
            };
            n.push(Station::queue("dst refs", d, true).with_class("net.dst_ref"));
            n
        };
        let run = || {
            AdaptController::new(KernelConfig::adaptive(8), AdaptPolicy::default(), 7)
                .converge_des(build, 8)
        };
        let (a, b) = (run(), run());
        assert_eq!(render_log(&a.decisions), render_log(&b.decisions));
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.config, b.config);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_panic() {
        let policy = AdaptPolicy {
            promote_share_bp: 10,
            demote_share_bp: 50,
            ..AdaptPolicy::default()
        };
        AdaptController::new(KernelConfig::adaptive(4), policy, 0);
    }
}
