//! Negative tests: the workload drivers must *degrade*, never panic,
//! when the kernel's syscall surface starts failing underneath them.
//!
//! Every test arms real fault points (`vfs.dentry_alloc`,
//! `mm.alloc_enomem`) on a seeded plane and drives the exact paths
//! that used to `unwrap()`/`expect()` kernel results: driver boot,
//! per-message delivery, per-query execution, and the pedsort
//! index/merge cycle. A failure must come back as a typed
//! [`KernelError`] (or be absorbed by the driver's retry/bounce
//! accounting) — a panic fails the test by failing the harness.

use pk_fault::{FaultPlane, FaultSchedule};
use pk_kernel::{Kernel, KernelError};
use pk_percpu::CoreId;
use pk_workloads::exim::EximDriver;
use pk_workloads::gmake::GmakeDriver;
use pk_workloads::metis::{MetisDriver, MetisVariant};
use pk_workloads::pedsort_indexer::{load_final_index, Indexer};
use pk_workloads::postgres::{PgVariant, PostgresDriver};
use pk_workloads::KernelChoice;
use std::sync::Arc;

/// A plane that fails every Nth check at the named points.
fn plane(seed: u64, every: u64, points: &[&'static str]) -> Arc<FaultPlane> {
    let plane = Arc::new(FaultPlane::with_seed(seed));
    for p in points {
        plane.set(p, FaultSchedule::EveryNth(every));
    }
    plane.enable();
    plane
}

#[test]
fn exim_boot_survives_dentry_alloc_faults() {
    // Arm the plane *before* construction: the spool layout itself now
    // propagates instead of panicking on "spool layout".
    let faults = plane(11, 3, &["vfs.dentry_alloc"]);
    match EximDriver::with_faults(KernelChoice::Pk, 4, faults) {
        // EveryNth(3) across 60+ mkdirs must trip at least once.
        Ok(_) => panic!("boot was expected to hit an injected fault"),
        Err(e) => assert!(e.is_transient(), "ENOMEM is transient: {e}"),
    }
}

#[test]
fn exim_delivery_absorbs_midstream_faults() {
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        // Boot fault-free, then arm: failures land mid-delivery.
        let faults = Arc::new(FaultPlane::with_seed(7));
        let d = EximDriver::with_faults(choice, 4, Arc::clone(&faults)).unwrap();
        faults.set("vfs.dentry_alloc", FaultSchedule::Probability(0.02));
        faults.set("mm.alloc_enomem", FaultSchedule::Probability(0.02));
        faults.enable();
        for conn in 0..8 {
            // Transient errors are retried then bounced inside the
            // driver; only a permanent error surfaces, and never a
            // panic.
            if let Err(e) = d.run_connection(CoreId(conn % 4), conn) {
                assert!(!e.is_transient(), "transients are bounced: {e}");
            }
        }
        faults.disable();
        assert!(faults.injected_total() > 0, "mix never fired");
        assert_eq!(
            d.delivered() + d.bounced(),
            d.attempted(),
            "every attempted message was delivered or bounced"
        );
    }
}

#[test]
fn postgres_boot_fails_typed_under_dentry_alloc_faults() {
    // Table + index loading mkdir/write dozens of fresh dentries, so a
    // boot-time allocation fault must surface as a typed transient
    // error — this path used to `expect("pg layout")`.
    let faults = plane(19, 3, &["vfs.dentry_alloc"]);
    match PostgresDriver::with_faults(PgVariant::PkModPg, 4, 64, faults) {
        Ok(_) => panic!("boot was expected to hit an injected fault"),
        Err(e) => assert!(e.is_transient(), "ENOMEM is transient: {e}"),
    }
}

#[test]
fn postgres_queries_degrade_gracefully_under_dcache_faults() {
    // Boot fault-free, then put the per-query open path under memory
    // pressure: `vfs.dcache_pressure` forces lookup misses on the two
    // hot paths, pushing each walk back through `Dcache::insert`, and
    // `vfs.dentry_alloc` fails those re-insertions. The namei contract
    // is that a failed dentry *cache fill* degrades to uncached
    // resolution rather than failing the walk with ENOMEM — so every
    // query must still succeed, with the absorbed failures visible in
    // the dcache stats instead of as errors (and never as a panic).
    let faults = Arc::new(FaultPlane::with_seed(13));
    let d = PostgresDriver::with_faults(PgVariant::PkModPg, 4, 512, Arc::clone(&faults)).unwrap();
    faults.set("vfs.dcache_pressure", FaultSchedule::EveryNth(3));
    faults.set("vfs.dentry_alloc", FaultSchedule::EveryNth(2));
    faults.enable();
    for q in 0..64u64 {
        match d.query((q % 4) as usize, q, q % 16 == 0) {
            Ok(()) => {}
            Err(e) => assert!(e.is_transient(), "injected ENOMEM is transient: {e}"),
        }
    }
    faults.disable();
    let absorbed = d
        .kernel()
        .vfs()
        .stats()
        .dentry_alloc_failures
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        faults.injected_total() > 0 && absorbed > 0,
        "pressure-forced misses over 64 queries must trip dentry_alloc \
         (injected={}, absorbed={absorbed})",
        faults.injected_total()
    );
    // Degraded walks must not leak descriptors or wedge rows: the same
    // rows are queryable once the faults stop, and every file opened
    // during the faulted run was closed.
    for q in 0..64u64 {
        d.query((q % 4) as usize, q, false).unwrap();
    }
    assert_eq!(
        d.kernel().vfs().superblock().open_files(),
        0,
        "descriptors leaked"
    );
}

#[test]
fn pedsort_driver_index_file_fails_typed_under_alloc_faults() {
    use pk_workloads::pedsort::PedsortDriver;
    // Boot fault-free, then arm: failures land inside index_file's
    // mmap/touch/write/munmap path, which used to `expect()` each one.
    let faults = Arc::new(FaultPlane::with_seed(31));
    let d = PedsortDriver::with_faults(KernelChoice::Pk, 2, 12, true, Arc::clone(&faults)).unwrap();
    faults.set("mm.alloc_enomem", FaultSchedule::EveryNth(3));
    faults.set("vfs.dentry_alloc", FaultSchedule::EveryNth(3));
    faults.enable();
    let mut failures = 0;
    for f in 0..12 {
        if let Err(e) = d.index_file(f % 2, f) {
            assert!(e.is_transient(), "alloc faults are transient: {e}");
            failures += 1;
        }
    }
    assert!(failures > 0, "EveryNth(3) across 12 indexes must fire");
    faults.disable();
    assert!(faults.injected_total() > 0);
    // Recovery: with the plane quiet again, the same driver keeps
    // indexing — failed files tore their mappings down on the way out.
    d.index_file(0, 0).unwrap();
}

#[test]
fn pedsort_driver_boot_fails_typed_under_dentry_faults() {
    use pk_workloads::pedsort::PedsortDriver;
    let faults = plane(37, 3, &["vfs.dentry_alloc"]);
    match PedsortDriver::with_faults(KernelChoice::Pk, 2, 24, false, faults) {
        Ok(_) => panic!("corpus population was expected to hit an injected fault"),
        Err(e) => assert!(e.is_transient(), "ENOMEM is transient: {e}"),
    }
}

#[test]
fn pedsort_run_fails_typed_under_alloc_faults() {
    let faults = Arc::new(FaultPlane::with_seed(23));
    let kernel = Arc::new(Kernel::with_faults(
        KernelChoice::Pk.config(4),
        Arc::clone(&faults),
    ));
    let core = CoreId(0);
    kernel.vfs().mkdir_p("/corpus", core).unwrap();
    for i in 0..6 {
        kernel
            .vfs()
            .write_file(
                &format!("/corpus/doc{i}"),
                format!("alpha beta gamma doc{i} token{}", i * 3).as_bytes(),
                core,
            )
            .unwrap();
    }
    faults.set("vfs.dentry_alloc", FaultSchedule::EveryNth(4));
    faults.set("mm.alloc_enomem", FaultSchedule::EveryNth(4));
    faults.enable();
    // The phase-1/phase-2 workers now ferry errors back through the
    // scope join instead of `expect("phase 1")`-ing inside the thread.
    match Indexer::with_limits(Arc::clone(&kernel), 8, 8).run("/corpus", "/out", 2) {
        Ok(_) => panic!("EveryNth(4) across the index run must fire"),
        Err(e) => assert!(e.is_transient(), "alloc faults are transient: {e}"),
    }
    faults.disable();
    assert!(faults.injected_total() > 0);
}

#[test]
fn gmake_compile_fails_typed_under_fork_faults() {
    // Boot fault-free, then make every other fork fail with EAGAIN —
    // the path that used to `expect("fork cc")` inside `compile`.
    let faults = Arc::new(FaultPlane::with_seed(31));
    let d = GmakeDriver::with_faults(KernelChoice::Pk, 4, 8, Arc::clone(&faults)).unwrap();
    faults.set("proc.fork_fail", FaultSchedule::EveryNth(2));
    faults.enable();
    let mut failed = 0;
    for i in 0..8 {
        if let Err(e) = d.compile(i % 4, i) {
            assert!(e.is_transient(), "EAGAIN is transient: {e}");
            failed += 1;
        }
    }
    assert!(failed > 0, "EveryNth(2) across 8 forks must fire");
    faults.disable();
    // Failed forks leaked nothing; the build completes once the
    // pressure lifts.
    for i in 0..8 {
        d.compile(i % 4, i).unwrap();
    }
    d.link(8).unwrap();
    assert_eq!(d.kernel().procs().len(), 1, "compiler processes leaked");
}

#[test]
fn metis_job_fails_typed_under_alloc_faults() {
    // Every table-memory page fault hits an injected ENOMEM: the map
    // phase must ferry the error out of its worker threads instead of
    // `expect("table fault")`-ing inside them.
    let faults = Arc::new(FaultPlane::with_seed(37));
    let d = MetisDriver::with_faults(MetisVariant::StockSmallPages, 2, Arc::clone(&faults));
    let docs: Vec<String> = (0..8)
        .map(|i| format!("{i}\tthe quick brown fox {i} jumps over lazy dogs"))
        .collect();
    faults.set("mm.alloc_enomem", FaultSchedule::EveryNth(1));
    faults.enable();
    match d.run_job(&docs, 2) {
        Ok(_) => panic!("every allocation was armed to fail"),
        Err(e) => assert!(e.is_transient(), "ENOMEM is transient: {e}"),
    }
    faults.disable();
    assert!(faults.injected_total() > 0);
    // The same driver recovers once allocations succeed again.
    assert!(d.run_job(&docs, 2).unwrap() >= 8);
}

#[test]
fn corrupt_index_surfaces_as_typed_error() {
    let kernel = Arc::new(Kernel::new(KernelChoice::Pk.config(2)));
    let core = CoreId(0);
    kernel.vfs().mkdir_p("/out", core).unwrap();
    // A chunk whose line has no term/postings tab: the deserializer
    // used to `expect("tab")`.
    kernel
        .vfs()
        .write_file("/out/w0-final0.db", b"garbage-without-tab\n", core)
        .unwrap();
    match load_final_index(&kernel, "/out") {
        Ok(_) => panic!("corrupt chunk must not parse"),
        Err(e) => {
            assert!(matches!(e, KernelError::Corrupt(_)), "got {e}");
            assert!(!e.is_transient(), "re-reading corrupt bytes never helps");
        }
    }
}
