//! The actual pedsort indexing algorithm (§3.6).
//!
//! Each worker runs searchy's two phases:
//!
//! * **Phase 1** — pull input files off a shared work queue (sorted so
//!   large files go first, to avoid stragglers), record word positions
//!   in a per-worker hash table, and whenever the table reaches a fixed
//!   size limit, sort it alphabetically and flush it to an intermediate
//!   index file.
//! * **Phase 2** — merge the intermediate indexes the worker produced,
//!   concatenating position lists, and emit a final index split into
//!   fixed-size chunks ("each core starts a new Berkeley DB every
//!   200,000 entries ... making the aggregate work performed by the
//!   indexer constant regardless of the number of cores").
//!
//! The index files live in the kernel's tmpfs, so phase 1 is both
//! compute- and file-system-intensive exactly as the paper describes.

use pk_kernel::{Kernel, KernelError};
use pk_percpu::CoreId;
use pk_sync::SpinLock;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// A word occurrence: `(file_id, position)`.
pub type Posting = (u32, u32);

/// Entry limit before a phase-1 hash table is flushed.
pub const DEFAULT_TABLE_LIMIT: usize = 4_096;

/// Entries per final index chunk (the paper uses 200,000; scaled-down
/// corpora use smaller chunks via [`Indexer::with_limits`]).
pub const DEFAULT_CHUNK_ENTRIES: usize = 200_000;

/// The shared phase-1 work queue of `(file_id, path, size)`.
#[derive(Debug)]
struct WorkQueue {
    files: SpinLock<Vec<(u32, String)>>,
}

impl WorkQueue {
    /// Builds a queue sorted so the largest files are processed first
    /// ("to avoid stragglers in phase 1, the initial work queue is
    /// sorted so large files are processed first").
    fn new(mut files: Vec<(u32, String, u64)>) -> Self {
        files.sort_by_key(|f| std::cmp::Reverse(f.2));
        let files = SpinLock::new(files.into_iter().rev().map(|(id, p, _)| (id, p)).collect());
        files.set_class(pk_lockdep::register_class(
            "pedsort.work_queue",
            "pk-workloads",
            pk_lockdep::LockKind::Spin,
        ));
        Self { files }
    }

    fn pop(&self) -> Option<(u32, String)> {
        self.files.lock().pop()
    }
}

/// The pedsort indexer over a kernel's tmpfs.
#[derive(Debug)]
pub struct Indexer {
    kernel: Arc<Kernel>,
    table_limit: usize,
    chunk_entries: usize,
}

/// Statistics from one indexing run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Input files processed.
    pub files: usize,
    /// Total words (tokens) seen.
    pub tokens: u64,
    /// Intermediate indexes flushed in phase 1.
    pub intermediate_flushes: usize,
    /// Final index chunks written in phase 2.
    pub final_chunks: usize,
    /// Distinct terms in the final index.
    pub distinct_terms: usize,
}

impl Indexer {
    /// Creates an indexer with the paper's limits.
    pub fn new(kernel: Arc<Kernel>) -> Self {
        Self::with_limits(kernel, DEFAULT_TABLE_LIMIT, DEFAULT_CHUNK_ENTRIES)
    }

    /// Creates an indexer with explicit table/chunk limits (for tests
    /// and scaled-down corpora).
    pub fn with_limits(kernel: Arc<Kernel>, table_limit: usize, chunk_entries: usize) -> Self {
        assert!(table_limit > 0 && chunk_entries > 0);
        Self {
            kernel,
            table_limit,
            chunk_entries,
        }
    }

    /// Indexes every file under `corpus_dir`, running `workers` workers
    /// (threads), writing output under `out_dir`. Returns per-run stats.
    pub fn run(
        &self,
        corpus_dir: &str,
        out_dir: &str,
        workers: usize,
    ) -> Result<IndexStats, KernelError> {
        assert!(workers > 0);
        let core0 = CoreId(0);
        let vfs = self.kernel.vfs();
        vfs.mkdir_p(out_dir, core0)?;
        // Enumerate the corpus.
        let walker = pk_vfs::PathWalker::new(vfs.tmpfs(), vfs.dcache(), vfs.mounts());
        let dir = walker.resolve(corpus_dir, core0)?;
        let mut files = Vec::new();
        for (i, name) in dir.child_names().into_iter().enumerate() {
            let path = format!("{corpus_dir}/{name}");
            let size = vfs.stat(&path, core0)?.size;
            files.push((i as u32, path, size));
        }
        let file_count = files.len();
        let queue = WorkQueue::new(files);

        // Phase 1 in parallel. Worker errors come back through the join
        // and fail the whole run; only a worker panic (a bug, not a
        // syscall failure) still unwinds.
        let results: Vec<(u64, usize, Vec<String>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queue = &queue;
                    let kernel = Arc::clone(&self.kernel);
                    s.spawn(move || phase1(&kernel, queue, out_dir, w, self.table_limit))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("phase-1 worker panicked"))
                .collect::<Result<_, _>>()
        })?;
        let tokens: u64 = results.iter().map(|r| r.0).sum();
        let flushes: usize = results.iter().map(|r| r.1).sum();

        // Phase 2 in parallel: each worker merges its own intermediates.
        let chunk_counts: Vec<(usize, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = results
                .iter()
                .enumerate()
                .map(|(w, (_, _, intermediates))| {
                    let kernel = Arc::clone(&self.kernel);
                    let intermediates = intermediates.clone();
                    s.spawn(move || phase2(&kernel, &intermediates, out_dir, w, self.chunk_entries))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("phase-2 worker panicked"))
                .collect::<Result<_, _>>()
        })?;

        Ok(IndexStats {
            files: file_count,
            tokens,
            intermediate_flushes: flushes,
            final_chunks: chunk_counts.iter().map(|c| c.0).sum(),
            distinct_terms: chunk_counts.iter().map(|c| c.1).sum(),
        })
    }
}

/// Serializes a sorted term→postings map as `term\tfile:pos,file:pos\n`.
fn serialize(map: &BTreeMap<String, Vec<Posting>>) -> Vec<u8> {
    let mut out = Vec::new();
    for (term, posts) in map {
        out.extend_from_slice(term.as_bytes());
        out.push(b'\t');
        for (i, (f, p)) in posts.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            out.extend_from_slice(format!("{f}:{p}").as_bytes());
        }
        out.push(b'\n');
    }
    out
}

/// Parses the `serialize` format back into a map.
///
/// Index files live in the kernel's tmpfs and are re-read through the
/// syscall surface, so malformed bytes (a truncated write, an injected
/// fault) must surface as [`KernelError::Corrupt`] — not a panic.
fn deserialize(data: &[u8]) -> Result<BTreeMap<String, Vec<Posting>>, KernelError> {
    let mut map = BTreeMap::new();
    for line in data.split(|b| *b == b'\n') {
        if line.is_empty() {
            continue;
        }
        let tab = line
            .iter()
            .position(|b| *b == b'\t')
            .ok_or(KernelError::Corrupt("index line missing term/postings tab"))?;
        let term = String::from_utf8(line[..tab].to_vec())
            .map_err(|_| KernelError::Corrupt("index term is not UTF-8"))?;
        let mut posts: Vec<Posting> = Vec::new();
        for s in line[tab + 1..].split(|b| *b == b',') {
            if s.is_empty() {
                continue;
            }
            let s = std::str::from_utf8(s)
                .map_err(|_| KernelError::Corrupt("index posting is not UTF-8"))?;
            let (f, p) = s
                .split_once(':')
                .ok_or(KernelError::Corrupt("index posting missing file:pos colon"))?;
            let f = f
                .parse()
                .map_err(|_| KernelError::Corrupt("index posting file id is not a number"))?;
            let p = p
                .parse()
                .map_err(|_| KernelError::Corrupt("index posting position is not a number"))?;
            posts.push((f, p));
        }
        map.insert(term, posts);
    }
    Ok(map)
}

/// Phase 1 for one worker. Returns `(tokens, flushes, intermediate
/// paths)`.
fn phase1(
    kernel: &Kernel,
    queue: &WorkQueue,
    out_dir: &str,
    worker: usize,
    table_limit: usize,
) -> Result<(u64, usize, Vec<String>), KernelError> {
    let core = CoreId(worker);
    let vfs = kernel.vfs();
    let mut table: HashMap<String, Vec<Posting>> = HashMap::new();
    let mut entries = 0usize;
    let mut tokens = 0u64;
    let mut intermediates = Vec::new();
    let flush = |table: &mut HashMap<String, Vec<Posting>>,
                 intermediates: &mut Vec<String>|
     -> Result<(), KernelError> {
        if table.is_empty() {
            return Ok(());
        }
        // Sort alphabetically and flush to an intermediate index.
        let sorted: BTreeMap<String, Vec<Posting>> = std::mem::take(table).into_iter().collect();
        let path = format!("{out_dir}/w{worker}-int{}.idx", intermediates.len());
        vfs.write_file(&path, &serialize(&sorted), core)?;
        intermediates.push(path);
        Ok(())
    };
    while let Some((file_id, path)) = queue.pop() {
        let data = vfs.read_file(&path, core)?;
        let text = String::from_utf8_lossy(&data);
        for (pos, word) in text.split_whitespace().enumerate() {
            let term = word.to_ascii_lowercase();
            tokens += 1;
            let posts = table.entry(term).or_insert_with(|| {
                entries += 1;
                Vec::new()
            });
            posts.push((file_id, pos as u32));
            if entries >= table_limit {
                flush(&mut table, &mut intermediates)?;
                entries = 0;
            }
        }
    }
    flush(&mut table, &mut intermediates)?;
    let flushes = intermediates.len();
    Ok((tokens, flushes, intermediates))
}

/// Phase 2 for one worker: merge its intermediates, emit chunked final
/// indexes. Returns `(chunks, distinct_terms)`.
fn phase2(
    kernel: &Kernel,
    intermediates: &[String],
    out_dir: &str,
    worker: usize,
    chunk_entries: usize,
) -> Result<(usize, usize), KernelError> {
    let core = CoreId(worker);
    let vfs = kernel.vfs();
    // Merge, concatenating position lists of words that appear in
    // multiple intermediate indexes.
    let mut merged: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
    for path in intermediates {
        let data = vfs.read_file(path, core)?;
        for (term, mut posts) in deserialize(&data)? {
            merged.entry(term).or_default().append(&mut posts);
        }
        vfs.unlink(path, core)?;
    }
    let distinct = merged.len();
    for posts in merged.values_mut() {
        posts.sort_unstable();
    }
    // Emit in chunks of `chunk_entries` ("a new Berkeley DB every
    // 200,000 entries").
    let mut chunks = 0usize;
    let mut current: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
    let write_chunk =
        |map: &BTreeMap<String, Vec<Posting>>, chunks: &mut usize| -> Result<(), KernelError> {
            if map.is_empty() {
                return Ok(());
            }
            let path = format!("{out_dir}/w{worker}-final{chunks}.db");
            vfs.write_file(&path, &serialize(map), core)?;
            *chunks += 1;
            Ok(())
        };
    for (term, posts) in merged {
        current.insert(term, posts);
        if current.len() >= chunk_entries {
            write_chunk(&current, &mut chunks)?;
            current.clear();
        }
    }
    write_chunk(&current, &mut chunks)?;
    Ok((chunks, distinct))
}

/// Loads an entire final index (all chunks of all workers) for
/// verification.
pub fn load_final_index(
    kernel: &Kernel,
    out_dir: &str,
) -> Result<BTreeMap<String, Vec<Posting>>, KernelError> {
    let core = CoreId(0);
    let vfs = kernel.vfs();
    let walker = pk_vfs::PathWalker::new(vfs.tmpfs(), vfs.dcache(), vfs.mounts());
    let dir = walker.resolve(out_dir, core)?;
    let mut all: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
    for name in dir.child_names() {
        if !name.ends_with(".db") {
            continue;
        }
        let data = vfs.read_file(&format!("{out_dir}/{name}"), core)?;
        for (term, mut posts) in deserialize(&data)? {
            all.entry(term).or_default().append(&mut posts);
        }
    }
    for posts in all.values_mut() {
        posts.sort_unstable();
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::KernelChoice;
    use pk_kernel::KernelConfig;

    fn corpus(kernel: &Kernel, files: &[&str]) {
        let core = CoreId(0);
        kernel.vfs().mkdir_p("/corpus", core).unwrap();
        for (i, text) in files.iter().enumerate() {
            kernel
                .vfs()
                .write_file(&format!("/corpus/doc{i}"), text.as_bytes(), core)
                .unwrap();
        }
    }

    #[test]
    fn indexes_a_small_corpus() {
        let kernel = Arc::new(Kernel::new(KernelConfig::pk(4)));
        corpus(&kernel, &["alpha beta alpha", "beta gamma", "delta"]);
        let idx = Indexer::with_limits(Arc::clone(&kernel), 64, 64);
        let stats = idx.run("/corpus", "/out", 2).unwrap();
        assert_eq!(stats.files, 3);
        assert_eq!(stats.tokens, 6);
        assert_eq!(stats.distinct_terms, 4);
        let index = load_final_index(&kernel, "/out").unwrap();
        // "alpha" appears at positions 0 and 2 of doc0 (file ids follow
        // enumeration order of the sorted directory listing).
        let alpha = index.get("alpha").unwrap();
        assert_eq!(alpha.len(), 2);
        assert_eq!(alpha[0].0, alpha[1].0, "same file");
        assert_eq!((alpha[0].1, alpha[1].1), (0, 2));
        assert_eq!(index.get("gamma").unwrap().len(), 1);
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let texts: Vec<String> = (0..12)
            .map(|i| format!("w{} common shared tokens row {}", i % 5, i))
            .collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let mut baseline = None;
        for workers in [1, 2, 4] {
            let kernel = Arc::new(Kernel::new(KernelConfig::pk(4)));
            corpus(&kernel, &refs);
            let idx = Indexer::with_limits(Arc::clone(&kernel), 16, 32);
            let stats = idx.run("/corpus", "/out", workers).unwrap();
            assert_eq!(stats.tokens, 72);
            let index = load_final_index(&kernel, "/out").unwrap();
            match &baseline {
                None => baseline = Some(index),
                Some(b) => assert_eq!(b, &index, "workers={workers}"),
            }
        }
    }

    #[test]
    fn small_table_limit_forces_flushes() {
        let kernel = Arc::new(Kernel::new(KernelConfig::pk(2)));
        corpus(&kernel, &["a b c d e f g h i j k l m n o p"]);
        let idx = Indexer::with_limits(Arc::clone(&kernel), 4, 1000);
        let stats = idx.run("/corpus", "/out", 1).unwrap();
        assert!(
            stats.intermediate_flushes >= 4,
            "16 distinct terms over limit-4 tables: {}",
            stats.intermediate_flushes
        );
        assert_eq!(stats.distinct_terms, 16);
    }

    #[test]
    fn chunking_splits_the_final_index() {
        let kernel = Arc::new(Kernel::new(KernelConfig::pk(2)));
        corpus(&kernel, &["one two three four five six seven eight"]);
        let idx = Indexer::with_limits(Arc::clone(&kernel), 1000, 3);
        let stats = idx.run("/corpus", "/out", 1).unwrap();
        assert_eq!(stats.final_chunks, 3, "8 terms / 3 per chunk");
        let index = load_final_index(&kernel, "/out").unwrap();
        assert_eq!(index.len(), 8);
    }

    #[test]
    fn stock_and_pk_kernels_agree() {
        let texts = ["the quick brown fox", "jumps over the lazy dog"];
        let mut indexes = Vec::new();
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let kernel = Arc::new(Kernel::new(choice.config(2)));
            corpus(&kernel, &texts);
            Indexer::with_limits(Arc::clone(&kernel), 8, 8)
                .run("/corpus", "/out", 2)
                .unwrap();
            indexes.push(load_final_index(&kernel, "/out").unwrap());
        }
        assert_eq!(indexes[0], indexes[1]);
    }
}
