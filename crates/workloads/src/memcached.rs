//! The memcached object-cache workload (§3.2, §5.3, Figure 5).
//!
//! One memcached instance per core, each on its own UDP port, queried
//! for non-existent keys by 792 client threads; 68-byte requests, 64-byte
//! responses. 80% of single-core time is kernel packet processing.
//!
//! Stock bottlenecks, in the order the paper fixed them: packet-buffer
//! allocation from node 0 (~30% throughput once fixed), false sharing in
//! `net_device`/`device` (another 30% at 48 cores), and the `dst_entry`
//! reference count (replaced with a sloppy counter). The PK residual is
//! the IXGBE card itself, "which appears to handle fewer packets as the
//! number of virtual queues increases" — throughput per core drops off
//! after 16 cores.

use crate::common::{config_label, demand_unless, gen2_demand, KernelChoice};
use bytes::Bytes;
use pk_fault::{FaultPlane, RetryPolicy};
use pk_kernel::{FixId, Kernel, KernelConfig};
use pk_net::{SockAddr, UdpSocket};
use pk_percpu::CoreId;
use pk_sim::{CoreSweep, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Request size on the wire (§5.3).
pub const REQUEST_BYTES: usize = 68;
/// Response size on the wire (§5.3).
pub const RESPONSE_BYTES: usize = 64;
/// Client batch size (§5.3).
pub const BATCH: usize = 20;
/// Base UDP port for per-core instances.
pub const BASE_PORT: u16 = 11211;

/// Single-core throughput anchor, requests/sec/core (Figure 5).
pub const REQS_PER_SEC_1CORE: f64 = 270_000.0;
/// Kernel fraction of single-core time (§3.2).
pub const KERNEL_FRACTION: f64 = 0.80;

/// Functional driver: per-core server instances over the real stack.
#[derive(Debug)]
pub struct MemcachedDriver {
    kernel: Kernel,
    sockets: Vec<Arc<UdpSocket>>,
    served: AtomicU64,
    /// Sends that were retried after a transient refusal (NIC drop,
    /// backpressure). A real memcached client resends on timeout.
    client_retries: AtomicU64,
    /// Packets abandoned after the retry budget ran out — reported, not
    /// silently lost.
    client_drops: AtomicU64,
    retry: RetryPolicy,
}

impl MemcachedDriver {
    /// Boots a kernel and binds one instance per core.
    pub fn new(choice: KernelChoice, cores: usize) -> Self {
        Self::with_faults(choice, cores, Arc::new(FaultPlane::disabled()))
    }

    /// Boots a kernel wired to `faults` and binds one instance per core.
    /// Arm the plane only after construction so the binds run clean.
    pub fn with_faults(choice: KernelChoice, cores: usize, faults: Arc<FaultPlane>) -> Self {
        let kernel = Kernel::with_faults(choice.config(cores), faults);
        let sockets = (0..cores)
            .map(|c| {
                kernel
                    .net()
                    .udp_bind(BASE_PORT + c as u16, CoreId(c))
                    .expect("port free")
            })
            .collect();
        Self {
            kernel,
            sockets,
            served: AtomicU64::new(0),
            client_retries: AtomicU64::new(0),
            client_drops: AtomicU64::new(0),
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// Returns the kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Sends retried after transient refusals.
    pub fn client_retries(&self) -> u64 {
        self.client_retries.load(Ordering::Relaxed)
    }

    /// Packets abandoned after the retry budget ran out.
    pub fn client_drops(&self) -> u64 {
        self.client_drops.load(Ordering::Relaxed)
    }

    /// Sends one packet with bounded retry on transient refusal,
    /// counting retries and final drops. Returns whether it got through.
    fn send_with_retry(&self, core: CoreId, from: SockAddr, to: SockAddr, body: Bytes) -> bool {
        let seed = self.kernel.faults().seed();
        let token = (u64::from(from.ip) << 24) ^ (u64::from(to.port) << 8) ^ core.0 as u64;
        let out = self.retry.run(seed, token, |_| {
            self.kernel.net().udp_send(core, from, to, body.clone())
        });
        if out.attempts > 1 {
            self.client_retries
                .fetch_add(u64::from(out.attempts) - 1, Ordering::Relaxed);
        }
        match out.result {
            Ok(()) => true,
            Err(_) => {
                self.client_drops.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// A client sends one batch of [`BATCH`] requests to the instance of
    /// `target_core` (clients "deterministically distribute key lookups
    /// among the servers"). Returns how many got through; refused sends
    /// are retried with deterministic backoff first.
    pub fn client_batch(&self, client_id: u32, target_core: usize) -> usize {
        let from = SockAddr::new(0x0a01_0000 + client_id, 7000 + (client_id % 100) as u16);
        let to = SockAddr::new(
            0x0a00_0001,
            BASE_PORT + (target_core % self.sockets.len()) as u16,
        );
        (0..BATCH)
            .filter(|_| {
                self.send_with_retry(
                    CoreId(target_core),
                    from,
                    to,
                    Bytes::from(vec![b'q'; REQUEST_BYTES]),
                )
            })
            .count()
    }

    /// The server on `core` drains its NIC queue and answers every
    /// pending request; returns the number served. A response the NIC
    /// refuses is retried, then counted as a client-visible drop.
    pub fn server_poll(&self, core: usize) -> usize {
        let net = self.kernel.net();
        let core_id = CoreId(core);
        net.process_rx(core_id, usize::MAX);
        let mut served = 0;
        let sock = &self.sockets[core % self.sockets.len()];
        while let Some(dgram) = sock.recv() {
            let reply_to = SockAddr::new(dgram.from.src_ip, dgram.from.src_port);
            let from = SockAddr::new(0x0a00_0001, sock.port);
            net.release(core_id, dgram.skb);
            self.send_with_retry(
                core_id,
                from,
                reply_to,
                Bytes::from(vec![b'r'; RESPONSE_BYTES]),
            );
            served += 1;
        }
        self.served.fetch_add(served as u64, Ordering::Relaxed);
        served
    }

    /// Drains every core's queue (the harness' end-of-round sweep);
    /// loops until no core makes progress, since processing one core's
    /// NIC queue can deliver datagrams to another core's socket.
    pub fn drain_all(&self) -> usize {
        let mut total = 0;
        loop {
            let round: usize = (0..self.sockets.len()).map(|c| self.server_poll(c)).sum();
            if round == 0 {
                return total;
            }
            total += round;
        }
    }
}

/// Figure-5 performance model.
#[derive(Debug, Clone, Copy)]
pub struct MemcachedModel {
    /// The kernel's fix set (any subset of the 16, for ablations).
    pub config: KernelConfig,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl MemcachedModel {
    /// Creates the model for `choice`.
    pub fn new(choice: KernelChoice) -> Self {
        Self::with_config(choice.config(48))
    }

    /// Creates the model for an arbitrary fix subset.
    pub fn with_config(config: KernelConfig) -> Self {
        Self {
            config,
            machine: MachineSpec::paper(),
        }
    }

    fn total_cycles(&self) -> f64 {
        self.machine.clock_hz / REQS_PER_SEC_1CORE
    }

    /// The card's sustainable request rate with `q` active virtual
    /// queues: a saturating curve calibrated to Figure 5's PK line
    /// (knee after 16 cores, per-core throughput ≈115 k at 48; aggregate
    /// still grows 16→48 as §5.3 reports).
    pub fn nic_request_cap(q: usize) -> f64 {
        let q = q as f64;
        710_000.0 * q / (1.0 + q / 9.25)
    }
}

impl WorkloadModel for MemcachedModel {
    fn name(&self) -> String {
        format!("memcached/{}", config_label(&self.config))
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        let user = t * (1.0 - KERNEL_FRACTION);
        // Stock shared demands per request, sized so the stock knee lands
        // at ~3–4 cores (Figure 5's steep initial drop).
        let cfg = &self.config;
        let dst_refcount = demand_unless(cfg, FixId::SloppyDstRefs, t * 0.100);
        let proto_counters = demand_unless(cfg, FixId::SloppyProtoAccounting, t * 0.050);
        let node0_alloc = demand_unless(cfg, FixId::LocalDmaBuffers, t * 0.060);
        let netdev_false_sharing = demand_unless(cfg, FixId::NetDeviceFalseSharing, t * 0.035);
        let shared = dst_refcount + proto_counters + node0_alloc + netdev_false_sharing;
        let kernel_local = t * KERNEL_FRACTION - shared;
        let cross_core = if cores > 1 { t * 0.05 } else { 0.0 };
        // Generation-2 growth stations: the flow-director table's rwlock
        // becomes write-hot once thousands of flows churn per poll
        // interval, and flat sloppy dst counters hit their reconcile
        // wall — both invisible at 48 cores.
        let flow_table = demand_unless(
            cfg,
            FixId::PerSocketFlowTables,
            gen2_demand(t, 0.000_12, cores),
        );
        let dst_ref_scale = demand_unless(cfg, FixId::SnziNetRefs, gen2_demand(t, 0.000_06, cores));

        let mut net = Network::new();
        net.push(Station::delay("user", user, false));
        net.push(Station::delay("kernel-local", kernel_local, true));
        net.push(Station::delay("cross-core misses", cross_core, true));
        // Gen-2 stations precede the gen-1 locks in visit order so the
        // first station to saturate past ~96 cores — and therefore the
        // one that captures the collapse queue — is the gen-2 one.
        net.push(
            Station::spinlock("flow-director table lock", flow_table, 0.3, true)
                .with_class("net.flow_table"),
        );
        net.push(
            Station::spinlock("dst ref saturation", dst_ref_scale, 0.25, true)
                .with_class("net.dst_ref_scale"),
        );
        net.push(
            Station::queue("dst_entry refcount", dst_refcount, true).with_class("net.dst_ref"),
        );
        net.push(
            Station::queue("proto memory counters", proto_counters, true)
                .with_class("net.proto_accounting"),
        );
        net.push(
            Station::spinlock("node-0 allocator", node0_alloc, 0.15, true)
                .with_class("net.dma_node0"),
        );
        net.push(
            Station::queue("net_device false sharing", netdev_false_sharing, true)
                .with_class("net.device_line"),
        );
        net
    }

    fn throughput_cap(&self, cores: usize) -> Option<f64> {
        // The card degrades with queue count for both kernels, but stock
        // never reaches the cap — CPU-side contention binds first.
        Some(Self::nic_request_cap(cores))
    }
}

/// Runs the Figure-5 sweep for one kernel.
pub fn figure5(choice: KernelChoice) -> Vec<SweepPoint> {
    CoreSweep::run(&MemcachedModel::new(choice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_anchor() {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let p = CoreSweep::point(&MemcachedModel::new(choice), 1);
            let err = (p.per_core_per_sec - REQS_PER_SEC_1CORE).abs() / REQS_PER_SEC_1CORE;
            assert!(err < 0.01, "{choice:?}: {}", p.per_core_per_sec);
        }
    }

    #[test]
    fn figure5_shapes() {
        let stock = figure5(KernelChoice::Stock);
        let pk = figure5(KernelChoice::Pk);
        let ratio = |s: &[SweepPoint]| s.last().unwrap().per_core_per_sec / s[0].per_core_per_sec;
        assert!(
            ratio(&stock) < 0.3,
            "stock collapses early: {}",
            ratio(&stock)
        );
        let pk_ratio = ratio(&pk);
        assert!(
            (0.3..0.6).contains(&pk_ratio),
            "PK NIC-bound ratio ≈0.45: {pk_ratio}"
        );
        // PK's per-core throughput peaks at or before 16 cores; the
        // decline afterwards is the card, not the kernel.
        let peak = pk
            .iter()
            .max_by(|a, b| a.per_core_per_sec.total_cmp(&b.per_core_per_sec))
            .unwrap();
        assert!(peak.cores <= 16, "PK per-core peak at {} cores", peak.cores);
        assert!(pk.last().unwrap().hw_capped, "PK at 48 is NIC-capped");
        assert!(!stock.last().unwrap().hw_capped, "stock is CPU-bound");
        // PK total throughput still grows 16→48 (§5.3: the card delivers
        // more in aggregate).
        let total_at =
            |s: &[SweepPoint], n: usize| s.iter().find(|p| p.cores == n).unwrap().total_per_sec;
        assert!(total_at(&pk, 48) > total_at(&pk, 16));
        // PK beats stock everywhere past one core.
        for (s, p) in stock.iter().zip(pk.iter()).skip(1) {
            assert!(
                p.per_core_per_sec > s.per_core_per_sec,
                "at {} cores",
                s.cores
            );
        }
    }

    #[test]
    fn driver_round_trip() {
        let d = MemcachedDriver::new(KernelChoice::Pk, 4);
        d.client_batch(1, 2);
        let served = d.drain_all();
        assert_eq!(served, BATCH);
        assert_eq!(d.served(), BATCH as u64);
        // All request memory was released (responses left the machine).
        assert_eq!(
            d.kernel().net().proto().usage(pk_net::Protocol::Udp),
            0,
            "accounting balanced"
        );
    }

    #[test]
    fn driver_separate_ports_per_core() {
        let d = MemcachedDriver::new(KernelChoice::Stock, 3);
        for c in 0..3 {
            d.client_batch(c as u32 + 10, c);
        }
        assert_eq!(d.drain_all(), 3 * BATCH);
        for c in 0..3 {
            assert_eq!(
                d.kernel().net().owner_of(BASE_PORT + c as u16),
                Some(CoreId(c as usize))
            );
        }
    }

    #[test]
    fn injected_rx_drops_are_retried_and_reported() {
        let faults = Arc::new(FaultPlane::with_seed(0x11211));
        let d = MemcachedDriver::with_faults(KernelChoice::Pk, 2, Arc::clone(&faults));
        faults.set("net.rx_drop", pk_fault::FaultSchedule::EveryNth(10));
        faults.enable();
        let mut sent = 0;
        for client in 0..10 {
            sent += d.client_batch(client, (client as usize) % 2);
        }
        let served = d.drain_all();
        faults.disable();
        assert!(d.client_retries() > 0, "10% drop rate must force retries");
        assert!(
            sent >= 10 * BATCH - (d.client_drops() as usize),
            "sent {sent} + drops {} must cover the offered load",
            d.client_drops()
        );
        // Every request that got through was served, and nothing leaked:
        // dropped packets returned their buffers and charges.
        assert!(served >= sent.saturating_sub(d.client_drops() as usize));
        assert_eq!(
            d.kernel().net().proto().usage(pk_net::Protocol::Udp),
            0,
            "drops must not leak accounting"
        );
    }

    #[test]
    fn nic_cap_is_saturating() {
        let c1 = MemcachedModel::nic_request_cap(1);
        let c16 = MemcachedModel::nic_request_cap(16);
        let c48 = MemcachedModel::nic_request_cap(48);
        assert!(c16 > c1);
        assert!(c48 > c16, "aggregate still grows");
        assert!(c48 / 48.0 < c16 / 16.0, "per-queue rate degrades");
    }
}
