//! A real parallel `make` executor (§3.5).
//!
//! gmake "supports executing independent build rules concurrently" and
//! the paper runs it with "the maximum number of concurrent jobs ...
//! twice the number of cores." This module implements that executor:
//! a dependency DAG of rules with recipes that run against the kernel
//! substrate, dispatched to worker threads through a ready queue, with
//! the serial-stage/straggler structure that limits gmake's speedup.

use pk_kernel::{Kernel, KernelError};
use pk_percpu::CoreId;
use pk_sync::SpinLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A recipe: runs on a core against the kernel, like a compiler process.
pub type Recipe = Box<dyn Fn(&Kernel, CoreId) -> Result<(), pk_vfs::VfsError> + Send + Sync>;

/// One build rule.
pub struct Rule {
    /// Target name (diagnostic).
    pub name: String,
    /// Indices of rules that must complete first.
    pub deps: Vec<usize>,
    /// The work.
    pub recipe: Recipe,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("deps", &self.deps)
            .finish()
    }
}

/// A build dependency graph.
#[derive(Debug, Default)]
pub struct BuildGraph {
    rules: Vec<Rule>,
}

impl BuildGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, returning its index for use as a dependency.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        deps: Vec<usize>,
        recipe: impl Fn(&Kernel, CoreId) -> Result<(), pk_vfs::VfsError> + Send + Sync + 'static,
    ) -> usize {
        let idx = self.rules.len();
        for &d in &deps {
            assert!(d < idx, "dependencies must be added before dependents");
        }
        self.rules.push(Rule {
            name: name.into(),
            deps,
            recipe: Box::new(recipe),
        });
        idx
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns whether the graph has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Builds the classic kernel-build shape: one serial configure stage,
    /// `objects` parallel compiles reading `/src/f{i}.c` and writing
    /// `/obj/f{i}.o`, and one serial link stage producing `/obj/vmlinux`.
    pub fn kernel_build(objects: usize) -> Self {
        let mut g = Self::new();
        let configure = g.add("configure", vec![], |k, core| {
            k.vfs().mkdir_p("/obj", core)?;
            k.vfs().write_file("/obj/.config", b"CONFIG_SMP=y", core)
        });
        let compiles: Vec<usize> = (0..objects)
            .map(|i| {
                g.add(format!("cc f{i}.o"), vec![configure], move |k, core| {
                    let src = k.vfs().read_file(&format!("/src/f{i}.c"), core)?;
                    let obj: Vec<u8> = src.iter().map(|b| b.wrapping_add(1)).collect();
                    k.vfs().write_file(&format!("/obj/f{i}.o"), &obj, core)
                })
            })
            .collect();
        g.add("ld vmlinux", compiles, move |k, core| {
            let mut image = Vec::new();
            for i in 0..objects {
                image.extend(k.vfs().read_file(&format!("/obj/f{i}.o"), core)?);
            }
            k.vfs().write_file("/obj/vmlinux", &image, core)
        });
        g
    }
}

/// Result of a parallel build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Rules executed.
    pub rules_run: usize,
    /// Jobs that ran while at least one other job was in flight
    /// (parallelism actually achieved).
    pub overlapped: u64,
    /// Processes forked (one per rule, like gmake's children).
    pub processes: u64,
}

/// The parallel executor.
#[derive(Debug)]
pub struct ParallelMake {
    /// Maximum concurrent jobs (the paper: 2 × cores).
    pub jobs: usize,
}

impl ParallelMake {
    /// Creates an executor with `jobs` maximum concurrency.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0);
        Self { jobs }
    }

    /// Runs the graph to completion against `kernel`.
    ///
    /// On the first failed fork, recipe, or reap, the remaining workers
    /// stop dispatching (in-flight jobs finish) and that first error is
    /// returned — like `make` without `-k`. Child processes are reaped
    /// even when their recipe fails.
    pub fn build(
        &self,
        kernel: &Arc<Kernel>,
        graph: &BuildGraph,
    ) -> Result<BuildReport, KernelError> {
        let n = graph.rules.len();
        // Indegrees and reverse edges.
        let mut indegree: Vec<AtomicUsize> = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, rule) in graph.rules.iter().enumerate() {
            indegree.push(AtomicUsize::new(rule.deps.len()));
            for &d in &rule.deps {
                dependents[d].push(i);
            }
        }
        let ready: SpinLock<VecDeque<usize>> = SpinLock::new(
            (0..n)
                .filter(|&i| indegree[i].load(Ordering::Relaxed) == 0)
                .collect(),
        );
        ready.set_class(pk_lockdep::register_class(
            "gmake.ready_queue",
            "pk-workloads",
            pk_lockdep::LockKind::Spin,
        ));
        let completed = AtomicUsize::new(0);
        let in_flight = AtomicUsize::new(0);
        let overlapped = AtomicU64::new(0);
        let processes = AtomicU64::new(0);
        // First failure wins; its presence tells every worker to stop.
        let failure: SpinLock<Option<KernelError>> = SpinLock::new(None);
        failure.set_class(pk_lockdep::register_class(
            "gmake.failure_slot",
            "pk-workloads",
            pk_lockdep::LockKind::Spin,
        ));

        std::thread::scope(|s| {
            for worker in 0..self.jobs {
                let kernel = Arc::clone(kernel);
                let graph = &graph;
                let ready = &ready;
                let indegree = &indegree;
                let dependents = &dependents;
                let completed = &completed;
                let in_flight = &in_flight;
                let overlapped = &overlapped;
                let processes = &processes;
                let failure = &failure;
                s.spawn(move || {
                    let core = CoreId(worker % kernel.config().cores);
                    loop {
                        if failure.lock().is_some() {
                            return;
                        }
                        let job = ready.lock().pop_front();
                        match job {
                            Some(i) => {
                                if in_flight.fetch_add(1, Ordering::AcqRel) > 0 {
                                    overlapped.fetch_add(1, Ordering::Relaxed);
                                }
                                let result = run_rule(&kernel, core, &graph.rules[i], processes);
                                in_flight.fetch_sub(1, Ordering::AcqRel);
                                match result {
                                    Ok(()) => {
                                        // Release dependents.
                                        for &dep in &dependents[i] {
                                            if indegree[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                                                ready.lock().push_back(dep);
                                            }
                                        }
                                        completed.fetch_add(1, Ordering::AcqRel);
                                    }
                                    Err(e) => {
                                        let mut slot = failure.lock();
                                        if slot.is_none() {
                                            *slot = Some(e);
                                        }
                                        return;
                                    }
                                }
                            }
                            None => {
                                if completed.load(Ordering::Acquire) == n {
                                    return;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = failure.lock().take() {
            return Err(e);
        }
        Ok(BuildReport {
            rules_run: completed.load(Ordering::Relaxed),
            overlapped: overlapped.load(Ordering::Relaxed),
            processes: processes.load(Ordering::Relaxed),
        })
    }
}

/// Forks a child, runs `rule`'s recipe in it, and reaps it. The child
/// is reaped even when its recipe fails, and the recipe's error wins.
fn run_rule(
    kernel: &Kernel,
    core: CoreId,
    rule: &Rule,
    processes: &AtomicU64,
) -> Result<(), KernelError> {
    // Each rule runs as a forked child, like gmake's compiler processes.
    let pid = kernel.fork(pk_proc::Pid(1), core)?;
    processes.fetch_add(1, Ordering::Relaxed);
    let ran = (rule.recipe)(kernel, core).map_err(KernelError::from);
    let reaped = kernel.exit(pid, core);
    ran.and(reaped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::KernelChoice;

    fn kernel_with_sources(choice: KernelChoice, cores: usize, n: usize) -> Arc<Kernel> {
        let k = Arc::new(Kernel::new(choice.config(cores)));
        k.vfs().mkdir_p("/src", CoreId(0)).unwrap();
        for i in 0..n {
            k.vfs()
                .write_file(
                    &format!("/src/f{i}.c"),
                    format!("source {i}").as_bytes(),
                    CoreId(0),
                )
                .unwrap();
        }
        k
    }

    #[test]
    fn builds_the_kernel_shape() {
        let k = kernel_with_sources(KernelChoice::Pk, 4, 20);
        let graph = BuildGraph::kernel_build(20);
        assert_eq!(graph.len(), 22); // configure + 20 compiles + link
        let report = ParallelMake::new(8).build(&k, &graph).unwrap();
        assert_eq!(report.rules_run, 22);
        assert_eq!(report.processes, 22);
        let vmlinux = k.vfs().stat("/obj/vmlinux", CoreId(0)).unwrap();
        assert!(vmlinux.size > 0);
        // All build processes were reaped.
        assert_eq!(k.procs().len(), 1);
    }

    #[test]
    fn respects_dependencies() {
        // A diamond: a → (b, c) → d; d must see both b and c outputs.
        let k = Arc::new(Kernel::new(KernelChoice::Pk.config(2)));
        let mut g = BuildGraph::new();
        let a = g.add("a", vec![], |k, c| k.vfs().write_file("/a", b"A", c));
        let b = g.add("b", vec![a], |k, c| {
            let a = k.vfs().read_file("/a", c)?;
            k.vfs().write_file("/b", &a, c)
        });
        let c_ = g.add("c", vec![a], |k, c| {
            let a = k.vfs().read_file("/a", c)?;
            k.vfs().write_file("/c", &a, c)
        });
        g.add("d", vec![b, c_], |k, c| {
            let mut out = k.vfs().read_file("/b", c)?;
            out.extend(k.vfs().read_file("/c", c)?);
            k.vfs().write_file("/d", &out, c)
        });
        let report = ParallelMake::new(4).build(&k, &g).unwrap();
        assert_eq!(report.rules_run, 4);
        assert_eq!(k.vfs().read_file("/d", CoreId(0)).unwrap(), b"AA");
    }

    #[test]
    fn single_job_is_fully_serial() {
        let k = kernel_with_sources(KernelChoice::Stock, 1, 6);
        let report = ParallelMake::new(1)
            .build(&k, &BuildGraph::kernel_build(6))
            .unwrap();
        assert_eq!(report.overlapped, 0, "one job never overlaps");
        assert_eq!(report.rules_run, 8);
    }

    #[test]
    fn parallel_jobs_overlap() {
        // Recipes yield mid-execution so overlap happens even on a
        // single-CPU host.
        let k = Arc::new(Kernel::new(KernelChoice::Pk.config(4)));
        let mut g = BuildGraph::new();
        for i in 0..16 {
            g.add(format!("job{i}"), vec![], move |k, c| {
                for _ in 0..20 {
                    std::thread::yield_now();
                }
                k.vfs().write_file(&format!("/out{i}"), b"x", c)
            });
        }
        let report = ParallelMake::new(8).build(&k, &g).unwrap();
        assert_eq!(report.rules_run, 16);
        assert!(
            report.overlapped > 0,
            "with 8 workers and yielding jobs some work overlaps"
        );
    }

    #[test]
    fn failed_recipe_surfaces_typed_and_reaps_children() {
        let k = Arc::new(Kernel::new(KernelChoice::Pk.config(2)));
        let mut g = BuildGraph::new();
        let missing = g.add("cc missing.o", vec![], |k, c| {
            // Reads a source that was never laid out: permanent ENOENT.
            k.vfs().read_file("/src/missing.c", c).map(|_| ())
        });
        g.add("ld after", vec![missing], |k, c| {
            k.vfs().write_file("/never", b"x", c)
        });
        let err = ParallelMake::new(2).build(&k, &g).unwrap_err();
        assert!(!err.is_transient(), "ENOENT is permanent: {err}");
        // The dependent rule never ran and the failed child was reaped.
        assert!(k.vfs().stat("/never", CoreId(0)).is_err());
        assert_eq!(k.procs().len(), 1, "failed build leaked processes");
    }

    #[test]
    #[should_panic(expected = "dependencies must be added before dependents")]
    fn forward_dependencies_rejected() {
        let mut g = BuildGraph::new();
        g.add("bad", vec![5], |_, _| Ok(()));
    }

    #[test]
    fn stock_and_pk_build_identical_images() {
        let mut images = Vec::new();
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let k = kernel_with_sources(choice, 4, 10);
            ParallelMake::new(8)
                .build(&k, &BuildGraph::kernel_build(10))
                .unwrap();
            images.push(k.vfs().read_file("/obj/vmlinux", CoreId(0)).unwrap());
        }
        assert_eq!(images[0], images[1]);
    }
}
