//! The PostgreSQL workload (§3.4, §5.5, Figures 7 and 8).
//!
//! A 10 M-row indexed table in tmpfs, one connection per server core,
//! queries in batches of 256; 100% reads (Figure 7) or 95%/5%
//! read/write (Figure 8).
//!
//! Three configurations, as in the figures:
//!
//! * **Stock** — stock kernel, unmodified PostgreSQL: row/table locks
//!   hash onto only 16 user-level mutexes, so the read/write workload
//!   collapses from *user-level* contention at 28 cores.
//! * **Stock + mod PG** — the paper's application fix: a lock-free
//!   uncontended path and 1024 mutexes ([`LockManager`]). Now the
//!   *kernel* collapses at 36 cores: `lseek` "acquires a mutex on the
//!   corresponding inode," and "Linux's adaptive mutex implementation
//!   suffers from starvation under intense contention" (system time
//!   1.7 µs/query at 32 cores → 322 µs at 48).
//! * **PK + mod PG** — PK's atomic-read `lseek` removes the mutex; the
//!   residual limit is an application-level spin lock on the buffer-cache
//!   page holding the root of the table index.

use crate::common::{demand_unless, gen2_demand, KernelChoice};
use pk_kernel::{FixId, Kernel, KernelConfig, KernelError};
use pk_percpu::{CacheAligned, CoreId};
use pk_sim::{CoreSweep, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use pk_sync::AdaptiveMutex;
use pk_vfs::Whence;
use std::sync::atomic::{AtomicU64, Ordering};

/// Queries per batch (§5.5).
pub const BATCH: usize = 256;
/// Single-core throughput anchor, queries/sec/core (Figures 7–8).
pub const QUERIES_PER_SEC_1CORE: f64 = 21_000.0;
/// Mutex count in unmodified PostgreSQL's lock manager (§5.5).
pub const STOCK_LOCK_PARTITIONS: usize = 16;
/// Mutex count after the paper's modification.
pub const MOD_LOCK_PARTITIONS: usize = 1024;

/// Lock mode for the user-level lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (row updates).
    Exclusive,
}

/// PostgreSQL's user-level row/table lock manager.
///
/// Unmodified: every acquisition — even a non-conflicting shared one —
/// exclusively locks one of 16 partition mutexes. Modified (the paper's
/// rewrite): 1024 partitions and a lock-free CAS fast path for
/// uncontended acquisitions.
#[derive(Debug)]
pub struct LockManager {
    /// Per-lock state words: bit 63 = exclusive, low bits = shared count.
    slots: Vec<CacheAligned<AtomicU64>>,
    partitions: Vec<AdaptiveMutex<()>>,
    lock_free_fast_path: bool,
    fast_path_hits: AtomicU64,
    mutex_acquisitions: AtomicU64,
}

const EXCL_BIT: u64 = 1 << 63;

impl LockManager {
    /// The unmodified 16-partition manager.
    pub fn stock() -> Self {
        Self::new(STOCK_LOCK_PARTITIONS, false)
    }

    /// The paper's modified manager: 1024 partitions, lock-free when
    /// uncontended.
    pub fn modified() -> Self {
        Self::new(MOD_LOCK_PARTITIONS, true)
    }

    fn new(partitions: usize, lock_free_fast_path: bool) -> Self {
        let class = pk_lockdep::register_class(
            "pg.lockmgr.partition",
            "pk-workloads",
            pk_lockdep::LockKind::Blocking,
        );
        Self {
            slots: (0..partitions * 8)
                .map(|_| CacheAligned::new(AtomicU64::new(0)))
                .collect(),
            partitions: (0..partitions)
                .map(|_| {
                    let m = AdaptiveMutex::new(());
                    m.set_class(class);
                    m
                })
                .collect(),
            lock_free_fast_path,
            fast_path_hits: AtomicU64::new(0),
            mutex_acquisitions: AtomicU64::new(0),
        }
    }

    fn slot(&self, lock_id: u64) -> &AtomicU64 {
        &self.slots[(lock_id as usize) % self.slots.len()]
    }

    fn partition(&self, lock_id: u64) -> &AdaptiveMutex<()> {
        &self.partitions[(lock_id as usize) % self.partitions.len()]
    }

    /// Attempts to acquire `lock_id` in `mode`; returns whether granted.
    pub fn acquire(&self, lock_id: u64, mode: LockMode) -> bool {
        if self.lock_free_fast_path && mode == LockMode::Shared {
            // Lock-free shared acquisition when no writer holds the lock.
            let slot = self.slot(lock_id);
            let mut cur = slot.load(Ordering::Acquire);
            while cur & EXCL_BIT == 0 {
                match slot.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        self.fast_path_hits.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(actual) => cur = actual,
                }
            }
            // Writer present: fall through to the mutex path.
        }
        let _g = self.partition(lock_id).lock();
        self.mutex_acquisitions.fetch_add(1, Ordering::Relaxed);
        let slot = self.slot(lock_id);
        let cur = slot.load(Ordering::Acquire);
        match mode {
            LockMode::Shared => {
                if cur & EXCL_BIT != 0 {
                    false
                } else {
                    slot.store(cur + 1, Ordering::Release);
                    true
                }
            }
            LockMode::Exclusive => {
                if cur != 0 {
                    false
                } else {
                    slot.store(EXCL_BIT, Ordering::Release);
                    true
                }
            }
        }
    }

    /// Releases `lock_id` held in `mode`.
    pub fn release(&self, lock_id: u64, mode: LockMode) {
        let slot = self.slot(lock_id);
        match mode {
            LockMode::Shared => {
                slot.fetch_sub(1, Ordering::AcqRel);
            }
            LockMode::Exclusive => {
                slot.store(0, Ordering::Release);
            }
        }
    }

    /// `(fast_path_hits, mutex_acquisitions)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.fast_path_hits.load(Ordering::Relaxed),
            self.mutex_acquisitions.load(Ordering::Relaxed),
        )
    }
}

/// The three Figure-7/8 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PgVariant {
    /// Stock kernel, unmodified PostgreSQL.
    Stock,
    /// Stock kernel, modified lock manager.
    StockModPg,
    /// PK kernel, modified lock manager.
    PkModPg,
}

impl PgVariant {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Stock => "Stock",
            Self::StockModPg => "Stock + mod PG",
            Self::PkModPg => "PK + mod PG",
        }
    }

    /// The kernel this variant runs on.
    pub fn kernel(self) -> KernelChoice {
        match self {
            Self::Stock | Self::StockModPg => KernelChoice::Stock,
            Self::PkModPg => KernelChoice::Pk,
        }
    }

    /// Whether PostgreSQL's lock manager is modified.
    pub fn modified_pg(self) -> bool {
        !matches!(self, Self::Stock)
    }
}

/// Functional driver: lseek-heavy indexed queries against tmpfs tables,
/// with the user-level lock manager in the loop.
#[derive(Debug)]
pub struct PostgresDriver {
    kernel: Kernel,
    locks: LockManager,
    queries: AtomicU64,
}

/// The two table files every query lseeks (§5.5: "PostgreSQL calls lseek
/// many times per query on the same two files").
pub const TABLE_FILE: &str = "/pgdata/table";
/// The index file.
pub const INDEX_FILE: &str = "/pgdata/index";

impl PostgresDriver {
    /// Boots the variant's kernel and loads a small table + index.
    ///
    /// Table and index loading go through the kernel's syscall surface,
    /// so a boot-time failure (an injected allocation fault, a full
    /// tmpfs) surfaces as an error, not a panic.
    pub fn new(variant: PgVariant, cores: usize, rows: usize) -> Result<Self, KernelError> {
        Self::with_faults(
            variant,
            cores,
            rows,
            std::sync::Arc::new(pk_fault::FaultPlane::disabled()),
        )
    }

    /// As [`PostgresDriver::new`], wiring the kernel to `faults` so
    /// tests can inject failures into the boot and query paths.
    pub fn with_faults(
        variant: PgVariant,
        cores: usize,
        rows: usize,
        faults: std::sync::Arc<pk_fault::FaultPlane>,
    ) -> Result<Self, KernelError> {
        let kernel = Kernel::with_faults(variant.kernel().config(cores), faults);
        let core = CoreId(0);
        kernel.vfs().mkdir_p("/pgdata", core)?;
        let row = [b'r'; 32];
        let table: Vec<u8> = (0..rows).flat_map(|_| row).collect();
        kernel.vfs().write_file(TABLE_FILE, &table, core)?;
        let idx: Vec<u8> = (0..rows).flat_map(|i| (i as u64).to_le_bytes()).collect();
        kernel.vfs().write_file(INDEX_FILE, &idx, core)?;
        Ok(Self {
            kernel,
            locks: if variant.modified_pg() {
                LockManager::modified()
            } else {
                LockManager::stock()
            },
            queries: AtomicU64::new(0),
        })
    }

    /// Returns the kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Returns the lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Queries executed.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Executes one query on `core`: take the row lock, lseek both files
    /// (SEEK_END — the hot kernel path), read the row, release.
    ///
    /// `write` executes the 5% update flavour (exclusive row lock +
    /// a table write). On failure the row lock is released and both
    /// files are closed, so an injected fault degrades one query
    /// without wedging the row or leaking descriptors.
    pub fn query(&self, core: usize, row_id: u64, write: bool) -> Result<(), KernelError> {
        let core_id = CoreId(core);
        let mode = if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        // Unmodified PostgreSQL exclusively locks a partition mutex even
        // for shared acquisitions; the modified manager is lock-free.
        while !self.locks.acquire(row_id, mode) {
            std::hint::spin_loop();
        }
        let result = self.query_locked(core_id, row_id, write);
        self.locks.release(row_id, mode);
        if result.is_ok() {
            self.queries.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The file-system half of [`PostgresDriver::query`], run with the
    /// row lock held. Closes whatever it opened on every path.
    fn query_locked(&self, core_id: CoreId, row_id: u64, write: bool) -> Result<(), KernelError> {
        let vfs = self.kernel.vfs();
        let table = vfs.open(TABLE_FILE, core_id)?;
        let outcome = (|| -> Result<(), KernelError> {
            let index = vfs.open(INDEX_FILE, core_id)?;
            // "PostgreSQL calls lseek many times per query on the same
            // two files."
            let seeks = (|| -> Result<(), KernelError> {
                for _ in 0..4 {
                    table.lseek(0, Whence::End)?;
                    index.lseek(0, Whence::End)?;
                }
                let off = (row_id % 1024) * 32;
                let _row = table.read_at(off, 32)?;
                if write {
                    table.inode.write_at(off, &[b'w'; 32]);
                }
                Ok(())
            })();
            vfs.close(&index, core_id);
            seeks
        })();
        vfs.close(&table, core_id);
        outcome
    }
}

/// Figure-7/8 performance model.
#[derive(Debug, Clone, Copy)]
pub struct PostgresModel {
    /// Which configuration.
    pub variant: PgVariant,
    /// 100% reads (Figure 7) or 95/5 read/write (Figure 8).
    pub read_only: bool,
    /// When set, kernel demands derive from this fix subset instead of
    /// the variant's stock/PK pairing (the ablation and adaptive axis).
    /// The application side is always the modified PostgreSQL — the
    /// config axis covers only the 16 kernel fixes.
    pub config: Option<KernelConfig>,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl PostgresModel {
    /// Creates the model.
    pub fn new(variant: PgVariant, read_only: bool) -> Self {
        Self {
            variant,
            read_only,
            config: None,
            machine: MachineSpec::paper(),
        }
    }

    /// Creates the model for an arbitrary kernel fix subset, paired with
    /// the modified PostgreSQL (the paper's PK application pairing).
    pub fn with_config(config: KernelConfig, read_only: bool) -> Self {
        Self {
            variant: PgVariant::PkModPg,
            read_only,
            config: Some(config),
            machine: MachineSpec::paper(),
        }
    }

    fn total_cycles(&self) -> f64 {
        self.machine.clock_hz / QUERIES_PER_SEC_1CORE
    }
}

impl WorkloadModel for PostgresModel {
    fn name(&self) -> String {
        let kernel = match &self.config {
            Some(cfg) => crate::common::config_label(cfg),
            None => self.variant.label().to_string(),
        };
        format!(
            "PostgreSQL {}/{}",
            if self.read_only { "ro" } else { "rw" },
            kernel
        )
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        // The kernel-side lseek inode mutex: present until the atomic-
        // read fix removes it. The starvation-prone adaptive mutex gives
        // it a collapse term (knee ≈36 cores).
        let lseek = match &self.config {
            Some(cfg) => demand_unless(cfg, FixId::AtomicLseek, t * 0.028),
            None if self.variant.kernel() == KernelChoice::Stock => t * 0.028,
            None => 0.0,
        };
        // The user-level lock manager. Unmodified: 16 partitions; heavy
        // for the read/write mix, light for read-only (which "makes
        // little use of row- and table-level locks"). Modified: 64× more
        // partitions plus the lock-free path.
        let lm_base = if self.read_only { t * 0.005 } else { t * 0.042 };
        let lock_manager = if self.config.is_some() || self.variant.modified_pg() {
            lm_base / 64.0
        } else {
            lm_base
        };
        // The residual buffer-cache root-page spin lock (application).
        let root_page = if self.read_only { t * 0.038 } else { t * 0.046 };
        let kernel_local = t * 0.010;
        let user = t - kernel_local - lseek - lock_manager - root_page;
        let cross_core = if cores > 1 { t * 0.03 } else { 0.0 };
        // Generation-2 growth station: each query's open/lseek cycle
        // still pays the reference walk per component; linear in cores,
        // it owns the stock curve past a few hundred cores.
        let g = gen2_demand(t, 0.000_08, cores);
        let path_walk = match &self.config {
            Some(cfg) => demand_unless(cfg, FixId::RcuPathWalk, g),
            None if self.variant.kernel() == KernelChoice::Stock => g,
            None => 0.0,
        };

        let mut net = Network::new();
        net.push(Station::delay("user", user, false));
        net.push(Station::delay("kernel-local", kernel_local, true));
        net.push(Station::delay("cross-core misses", cross_core, true));
        // Gen-2 station first in visit order: past ~96 cores it is the
        // first to saturate and captures the collapse queue.
        net.push(
            Station::spinlock("per-component path-walk refs", path_walk, 0.25, true)
                .with_class("vfs.path_walk"),
        );
        net.push(
            Station::spinlock("lseek inode mutex", lseek, 0.13, true)
                .with_class("vfs.inode_lseek_mutex"),
        );
        net.push(Station::spinlock(
            "PG lock manager",
            lock_manager,
            0.10,
            false,
        ));
        net.push(Station::queue("root index page lock", root_page, false));
        net
    }
}

/// Runs the Figure-7 (read-only) or Figure-8 (read/write) sweep.
pub fn figure(variant: PgVariant, read_only: bool) -> Vec<SweepPoint> {
    CoreSweep::run(&PostgresModel::new(variant, read_only))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_manager_grants_and_conflicts() {
        for lm in [LockManager::stock(), LockManager::modified()] {
            assert!(lm.acquire(7, LockMode::Shared));
            assert!(lm.acquire(7, LockMode::Shared), "shared coexists");
            assert!(!lm.acquire(7, LockMode::Exclusive), "writer blocked");
            lm.release(7, LockMode::Shared);
            lm.release(7, LockMode::Shared);
            assert!(lm.acquire(7, LockMode::Exclusive));
            assert!(!lm.acquire(7, LockMode::Shared), "reader blocked");
            lm.release(7, LockMode::Exclusive);
            assert!(lm.acquire(7, LockMode::Shared));
        }
    }

    #[test]
    fn modified_manager_uses_fast_path() {
        let lm = LockManager::modified();
        for i in 0..100 {
            assert!(lm.acquire(i, LockMode::Shared));
        }
        let (fast, mutex) = lm.stats();
        assert_eq!(fast, 100);
        assert_eq!(mutex, 0);

        let stock = LockManager::stock();
        for i in 0..100 {
            assert!(stock.acquire(i, LockMode::Shared));
        }
        let (fast, mutex) = stock.stats();
        assert_eq!(fast, 0, "unmodified PG has no fast path");
        assert_eq!(mutex, 100);
    }

    #[test]
    fn driver_runs_batches() {
        let d = PostgresDriver::new(PgVariant::PkModPg, 4, 1024).unwrap();
        for q in 0..64u64 {
            d.query((q % 4) as usize, q, q % 20 == 0).unwrap();
        }
        assert_eq!(d.queries(), 64);
        // PK uses atomic lseek: no inode mutex acquisitions.
        let stats = d.kernel().vfs().stats();
        assert_eq!(stats.lseek_mutex_acquisitions.load(Ordering::Relaxed), 0);
        assert!(stats.lseek_atomic_reads.load(Ordering::Relaxed) >= 8 * 64);
    }

    #[test]
    fn stock_driver_hits_the_inode_mutex() {
        let d = PostgresDriver::new(PgVariant::StockModPg, 2, 128).unwrap();
        for q in 0..8u64 {
            d.query(0, q, false).unwrap();
        }
        let stats = d.kernel().vfs().stats();
        assert_eq!(
            stats.lseek_mutex_acquisitions.load(Ordering::Relaxed),
            8 * 8
        );
    }

    #[test]
    fn figure7_shapes() {
        let stock = figure(PgVariant::Stock, true);
        let modpg = figure(PgVariant::StockModPg, true);
        let pk = figure(PgVariant::PkModPg, true);
        let ratio = |s: &[SweepPoint]| s.last().unwrap().per_core_per_sec / s[0].per_core_per_sec;
        // Read-only: both stock-kernel lines collapse (lseek); modPG
        // changes little (it "makes little use of row- and table-level
        // locks").
        assert!(ratio(&stock) < 0.35, "stock: {}", ratio(&stock));
        assert!(ratio(&modpg) < 0.35, "modpg: {}", ratio(&modpg));
        let pk_ratio = ratio(&pk);
        assert!((0.4..0.75).contains(&pk_ratio), "PK+modPG: {pk_ratio}");
        // Stock total throughput peaks in the mid-30s then collapses.
        let peak = modpg
            .iter()
            .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
            .unwrap();
        assert!(
            (24..=44).contains(&peak.cores),
            "collapse near 36 cores: {}",
            peak.cores
        );
        // System time per query explodes at 48 cores (322 µs in §5.5).
        let sys48 = modpg.last().unwrap().system_usec;
        let sys1 = modpg[0].system_usec;
        assert!(
            sys48 > 30.0 * sys1,
            "starved lseek mutex: {sys1} → {sys48} µs"
        );
        assert_eq!(modpg.last().unwrap().bottleneck, "lseek inode mutex");
        // PK spends little time in the kernel at 48 cores.
        assert!(pk.last().unwrap().system_usec < 5.0);
    }

    #[test]
    fn figure8_shapes() {
        let stock = figure(PgVariant::Stock, false);
        let modpg = figure(PgVariant::StockModPg, false);
        let pk = figure(PgVariant::PkModPg, false);
        // Unmodified PG peaks earliest (user-level lock manager, 28
        // cores in the paper).
        let peak_of = |s: &[SweepPoint]| {
            s.iter()
                .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
                .unwrap()
                .cores
        };
        assert!(peak_of(&stock) <= 32, "stock peak: {}", peak_of(&stock));
        assert!(peak_of(&modpg) >= peak_of(&stock));
        // At 32 cores modPG clearly beats unmodified PG.
        let at =
            |s: &[SweepPoint], n: usize| s.iter().find(|p| p.cores == n).unwrap().per_core_per_sec;
        assert!(at(&modpg, 32) > 1.15 * at(&stock, 32));
        // PK+modPG keeps scaling.
        let ratio = pk.last().unwrap().per_core_per_sec / pk[0].per_core_per_sec;
        assert!((0.4..0.75).contains(&ratio), "PK rw ratio: {ratio}");
    }
}
