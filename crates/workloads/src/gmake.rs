//! The parallel gmake workload (§3.5, §5.6, Figure 9).
//!
//! Building Linux 2.6.35-rc5: "gmake creates more processes than there
//! are cores, and reads and writes many files"; 7.6% of single-core time
//! is system time. It is the one MOSBENCH application that scales well on
//! the stock kernel — "35 times faster on 48 cores than on one core for
//! both the stock and PK kernels" — limited only by "serial stages at
//! the beginning of the build and straggling processes at the end."

use crate::common::{config_label, demand_unless, gen2_demand, KernelChoice};
use pk_fault::FaultPlane;
use pk_kernel::{FixId, Kernel, KernelConfig, KernelError};
use pk_percpu::CoreId;
use pk_proc::Pid;
use pk_sim::{CoreSweep, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Single-core throughput anchor, builds/hour/core (Figure 9).
pub const BUILDS_PER_HOUR_1CORE: f64 = 5.5;
/// System fraction of single-core build time (§3.5).
pub const SYSTEM_FRACTION: f64 = 0.076;
/// Amdahl serial fraction giving the paper's 35× speedup at 48 cores:
/// `48 / (1 + 47 f) = 35`.
pub const SERIAL_FRACTION: f64 = 0.0079;

/// Functional driver: a miniature kernel build over the real substrate.
#[derive(Debug)]
pub struct GmakeDriver {
    kernel: Kernel,
    objects_built: AtomicU64,
}

impl GmakeDriver {
    /// Boots a kernel and lays out a source tree of `sources` files.
    pub fn new(choice: KernelChoice, cores: usize, sources: usize) -> Result<Self, KernelError> {
        Self::with_faults(choice, cores, sources, Arc::new(FaultPlane::disabled()))
    }

    /// Like [`GmakeDriver::new`], with every substrate wired to `faults`.
    pub fn with_faults(
        choice: KernelChoice,
        cores: usize,
        sources: usize,
        faults: Arc<FaultPlane>,
    ) -> Result<Self, KernelError> {
        let kernel = Kernel::with_faults(choice.config(cores), faults);
        let core = CoreId(0);
        kernel.vfs().mkdir_p("/src", core)?;
        kernel.vfs().mkdir_p("/obj", core)?;
        for i in 0..sources {
            kernel.vfs().write_file(
                &format!("/src/f{i}.c"),
                format!("int f{i}();").as_bytes(),
                core,
            )?;
        }
        Ok(Self {
            kernel,
            objects_built: AtomicU64::new(0),
        })
    }

    /// Returns the kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Objects built so far.
    pub fn objects_built(&self) -> u64 {
        self.objects_built.load(Ordering::Relaxed)
    }

    /// Compiles one translation unit on `core`: fork the compiler
    /// process, read the source, write the object, exit.
    pub fn compile(&self, core: usize, source_id: usize) -> Result<(), KernelError> {
        let core_id = CoreId(core);
        let cc = self.kernel.fork(Pid(1), core_id)?;
        let compiled = self.compile_unit(core_id, source_id);
        // Reap the compiler even when it failed; the compile error wins.
        let reaped = self.kernel.exit(cc, core_id);
        compiled.and(reaped)?;
        self.objects_built.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn compile_unit(&self, core: CoreId, source_id: usize) -> Result<(), KernelError> {
        let src = self
            .kernel
            .vfs()
            .read_file(&format!("/src/f{source_id}.c"), core)?;
        let obj: Vec<u8> = src.iter().rev().copied().collect();
        self.kernel
            .vfs()
            .write_file(&format!("/obj/f{source_id}.o"), &obj, core)?;
        Ok(())
    }

    /// Links every object into `/obj/vmlinux` (the serial final stage).
    pub fn link(&self, sources: usize) -> Result<(), KernelError> {
        let core = CoreId(0);
        let ld = self.kernel.fork(Pid(1), core)?;
        let linked = self.link_image(core, sources);
        let reaped = self.kernel.exit(ld, core);
        linked.and(reaped)
    }

    fn link_image(&self, core: CoreId, sources: usize) -> Result<(), KernelError> {
        let mut image = Vec::new();
        for i in 0..sources {
            image.extend(self.kernel.vfs().read_file(&format!("/obj/f{i}.o"), core)?);
        }
        self.kernel.vfs().write_file("/obj/vmlinux", &image, core)?;
        Ok(())
    }
}

/// Figure-9 performance model.
#[derive(Debug, Clone, Copy)]
pub struct GmakeModel {
    /// The kernel's fix set (any subset of the 16, for ablations; the
    /// Stock and PK lines nearly coincide).
    pub config: KernelConfig,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl GmakeModel {
    /// Creates the model.
    pub fn new(choice: KernelChoice) -> Self {
        Self::with_config(choice.config(48))
    }

    /// Creates the model for an arbitrary fix subset.
    pub fn with_config(config: KernelConfig) -> Self {
        Self {
            config,
            machine: MachineSpec::paper(),
        }
    }

    fn total_cycles(&self) -> f64 {
        self.machine.clock_hz * 3600.0 / BUILDS_PER_HOUR_1CORE
    }
}

impl WorkloadModel for GmakeModel {
    fn name(&self) -> String {
        format!("gmake/{}", config_label(&self.config))
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        // Serial stages + stragglers: while one core runs the serial
        // work, the other `cores − 1` wait, so per-build the serial
        // phases cost every participant `f·t·cores` cycles of wall time
        // — Amdahl's law expressed as an n-scaled delay:
        // X(n) = n / (t(1−f) + f·t·n) = n / (t(1 + f(n−1))).
        let serial = t * SERIAL_FRACTION * cores as f64;
        // A little dentry-refcount traffic on the stock kernel ("the PK
        // kernel shows slightly lower system time owing to the changes to
        // the dentry cache"), far too small to matter.
        let dentry = demand_unless(&self.config, FixId::SloppyDentryRefs, t * 0.0006);
        let system_local = t * SYSTEM_FRACTION - dentry - t * SERIAL_FRACTION;
        let user = t - t * SYSTEM_FRACTION;
        // Generation-2 growth station: every compiler process's
        // fork/exec/exit churns pages through the global freelist —
        // nothing at 48 cores, the kernel-side collapse at 1024.
        let page_freelist = demand_unless(
            &self.config,
            FixId::PerSocketPageFreelists,
            gen2_demand(t, 0.000_06, cores),
        );

        let mut net = Network::new();
        net.push(Station::delay("compiler (user)", user, false));
        net.push(Station::delay("kernel-local", system_local, true));
        net.push(Station::delay("serial stages + stragglers", serial, false));
        // Gen-2 station first in visit order: past ~96 cores it is the
        // first to saturate and captures the collapse queue.
        net.push(
            Station::spinlock("global page freelist", page_freelist, 0.25, true)
                .with_class("mm.page_freelist"),
        );
        net.push(Station::queue("dentry refcounts", dentry, true).with_class("vfs.dentry_ref"));
        net
    }
}

/// Runs the Figure-9 sweep for one kernel.
pub fn figure9(choice: KernelChoice) -> Vec<SweepPoint> {
    CoreSweep::run(&GmakeModel::new(choice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_anchor() {
        let p = CoreSweep::point(&GmakeModel::new(KernelChoice::Stock), 1);
        let per_hour = p.per_core_per_sec * 3600.0;
        assert!((per_hour - BUILDS_PER_HOUR_1CORE).abs() / BUILDS_PER_HOUR_1CORE < 0.01);
    }

    #[test]
    fn figure9_shapes() {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let sweep = figure9(choice);
            let speedup = sweep.last().unwrap().total_per_sec / sweep[0].total_per_sec;
            assert!(
                (32.0..38.0).contains(&speedup),
                "{choice:?}: ~35× speedup at 48 cores, got {speedup:.1}"
            );
        }
        // PK system time is slightly lower than stock.
        let stock48 = figure9(KernelChoice::Stock).last().unwrap().system_usec;
        let pk48 = figure9(KernelChoice::Pk).last().unwrap().system_usec;
        assert!(pk48 < stock48);
        assert!(pk48 > stock48 * 0.95, "only *slightly* lower");
    }

    #[test]
    fn driver_builds_and_links() {
        let d = GmakeDriver::new(KernelChoice::Pk, 4, 12).unwrap();
        for i in 0..12 {
            d.compile(i % 4, i).unwrap();
        }
        d.link(12).unwrap();
        assert_eq!(d.objects_built(), 12);
        let st = d.kernel().vfs().stat("/obj/vmlinux", CoreId(0)).unwrap();
        assert!(st.size > 0);
        // One process per compile + one linker, all reaped.
        assert_eq!(d.kernel().procs().fork_count(), 13);
        assert_eq!(d.kernel().procs().len(), 1);
    }
}
