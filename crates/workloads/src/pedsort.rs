//! The Psearchy/pedsort file-indexer workload (§3.6, §5.7, Figure 10).
//!
//! pedsort indexes the Linux source tree (368 MB over 33,312 files) with
//! a 48 MB hash table per core and 200,000-entry output indexes. Three
//! variants, as in Figure 10:
//!
//! * **Stock + Threads** — one process, one thread per core: "a
//!   per-process kernel mutex serializes calls to mmap and munmap," and
//!   libc file streams mmap every input file, so the shared address
//!   space collapses the threaded version (system time 2.3 s → 41 s).
//!   Threads also force "slower, thread-safe variants of various library
//!   functions" even at one core.
//! * **Stock + Procs** — one process per core (a ~10-line change):
//!   kernel time stays small; user time rises with per-socket cache
//!   pressure because `msort_with_tmp` misses more as active cores share
//!   an L3.
//! * **Stock + Procs RR** — the same processes spread round-robin over
//!   sockets: "each new socket provides access to more total L3 cache
//!   space," so mid-range core counts run faster.

use crate::common::{gen2_demand, KernelChoice};
use pk_fault::FaultPlane;
use pk_kernel::{Kernel, KernelError};
use pk_mm::{AddressSpace, PageSize};
use pk_percpu::CoreId;
use pk_sim::{CoreSweep, L3Model, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Corpus size (§5.7).
pub const CORPUS_BYTES: u64 = 368 << 20;
/// Corpus file count (§5.7).
pub const CORPUS_FILES: usize = 33_312;
/// Per-core hash table size (§5.7).
pub const HASH_TABLE_BYTES: u64 = 48 << 20;

/// Single-core throughput anchor for the process versions, jobs/hour
/// (Figure 10).
pub const JOBS_PER_HOUR_1CORE: f64 = 47.0;
/// Single-core system time, seconds (§5.7).
pub const SYSTEM_SECONDS_1CORE: f64 = 2.3;
/// Thread-safe-libc penalty on user time for the threaded version.
pub const THREAD_LIBC_PENALTY: f64 = 1.10;

/// The three Figure-10 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PedsortVariant {
    /// One process, one thread per core (shared address space).
    Threads,
    /// One process per core, cores packed onto sockets.
    Procs,
    /// One process per core, cores spread round-robin over sockets.
    ProcsRoundRobin,
}

impl PedsortVariant {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Threads => "Stock + Threads",
            Self::Procs => "Stock + Procs",
            Self::ProcsRoundRobin => "Stock + Procs RR",
        }
    }
}

/// Functional driver: index files through the real kernel, with the
/// threads/procs distinction expressed as shared vs per-worker address
/// spaces.
#[derive(Debug)]
pub struct PedsortDriver {
    kernel: Kernel,
    /// One address space shared by all workers (threads) or one per
    /// worker (procs).
    spaces: Vec<Arc<AddressSpace>>,
    shared_space: bool,
    indexed: AtomicU64,
}

impl PedsortDriver {
    /// Boots a kernel with `files` corpus files and `workers` workers.
    pub fn new(
        choice: KernelChoice,
        cores: usize,
        files: usize,
        threads: bool,
    ) -> Result<Self, KernelError> {
        Self::with_faults(
            choice,
            cores,
            files,
            threads,
            Arc::new(FaultPlane::disabled()),
        )
    }

    /// [`PedsortDriver::new`] on a kernel wired to `plane` — setup
    /// failures (corpus population under injected ENOMEM / dentry
    /// faults) surface as typed errors instead of panics.
    pub fn with_faults(
        choice: KernelChoice,
        cores: usize,
        files: usize,
        threads: bool,
        plane: Arc<FaultPlane>,
    ) -> Result<Self, KernelError> {
        let kernel = Kernel::with_faults(choice.config(cores), plane);
        let core = CoreId(0);
        kernel.vfs().mkdir_p("/corpus", core)?;
        kernel.vfs().mkdir_p("/out", core)?;
        for i in 0..files {
            kernel.vfs().write_file(
                &format!("/corpus/f{i}"),
                format!("word{} common text {}", i % 7, i).as_bytes(),
                core,
            )?;
        }
        let spaces = if threads {
            vec![kernel.new_address_space()]
        } else {
            (0..cores).map(|_| kernel.new_address_space()).collect()
        };
        Ok(Self {
            kernel,
            spaces,
            shared_space: threads,
            indexed: AtomicU64::new(0),
        })
    }

    /// Returns the kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Files indexed so far.
    pub fn indexed(&self) -> u64 {
        self.indexed.load(Ordering::Relaxed)
    }

    /// Indexes one corpus file on `core`: mmap the input (libc file
    /// streams "access file contents via mmap"), read it, tokenize into
    /// the per-core table, write an index chunk, munmap.
    ///
    /// Every kernel call propagates as a typed [`KernelError`] — an
    /// injected allocation failure mid-index unwinds the mapping it
    /// created instead of panicking the worker.
    pub fn index_file(&self, core: usize, file_id: usize) -> Result<(), KernelError> {
        let core_id = CoreId(core);
        let space = if self.shared_space {
            &self.spaces[0]
        } else {
            &self.spaces[core % self.spaces.len()]
        };
        let data = self
            .kernel
            .vfs()
            .read_file(&format!("/corpus/f{file_id}"), core_id)?;
        // The mmap/munmap pair on the (possibly shared) address space —
        // the threaded version's serialization point.
        let region = space.mmap(data.len().max(1) as u64, PageSize::Base4K)?;
        // From here the mapping must not leak: tear it down before
        // surfacing any later failure.
        let indexed = (|| -> Result<(), KernelError> {
            space.touch_all(region, core)?;
            let tokens = data.split(|b| *b == b' ').count();
            self.kernel.vfs().write_file(
                &format!("/out/core{core}-f{file_id}.idx"),
                format!("{tokens}").as_bytes(),
                core_id,
            )?;
            Ok(())
        })();
        let unmapped = space.munmap(region, core).map_err(KernelError::from);
        indexed?;
        unmapped?;
        self.indexed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Figure-10 performance model.
#[derive(Debug, Clone, Copy)]
pub struct PedsortModel {
    /// Which line.
    pub variant: PedsortVariant,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl PedsortModel {
    /// Creates the model.
    pub fn new(variant: PedsortVariant) -> Self {
        Self {
            variant,
            machine: MachineSpec::paper(),
        }
    }

    fn total_cycles(&self) -> f64 {
        self.machine.clock_hz * 3600.0 / JOBS_PER_HOUR_1CORE
    }

    /// Active cores per socket under this variant's placement.
    fn cores_per_socket(&self, cores: usize) -> f64 {
        let sockets = match self.variant {
            PedsortVariant::ProcsRoundRobin => self.machine.sockets_for_rr(cores),
            _ => self.machine.sockets_for(cores),
        }
        .expect("core count oversubscribes the machine — validated at sweep entry");
        cores as f64 / sockets as f64
    }
}

impl WorkloadModel for PedsortModel {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        let system = SYSTEM_SECONDS_1CORE * self.machine.clock_hz;
        let mut user = t - system;
        // Cache-capacity pressure: each active core's sorting working set
        // competes for the socket's L3; more cores per socket → higher
        // miss rate in msort_with_tmp → more user cycles (§5.7). The
        // per-entry working set far exceeds L3, so the *marginal* effect
        // is modelled as a linear user-time inflation per extra core on
        // the socket, calibrated to Figure 10's packed-procs decline.
        let cps = self.cores_per_socket(cores);
        let l3 = L3Model::new(self.machine);
        let _ = l3; // capacity model retained for the ablation binaries
        user *= 1.0 + 0.065 * (cps - 1.0);
        let mut net = Network::new();
        match self.variant {
            PedsortVariant::Threads => {
                // Thread-safe libc is slower even at one core, and the
                // shared address space serializes mmap/munmap in the
                // kernel.
                user *= THREAD_LIBC_PENALTY;
                let mmap_sem = system * 0.75;
                net.push(Station::delay("kernel-local", system - mmap_sem, true));
                // Generation-2 growth station, ahead of mmap_sem in
                // visit order: the shared address space frees sort
                // temporaries through the global page freelist, and past
                // ~96 cores it saturates first and owns the collapse.
                // The per-process variants (the paper's fix) keep frees
                // socket-local, so only Threads pays it.
                net.push(
                    Station::spinlock(
                        "global page freelist",
                        gen2_demand(t, 0.000_05, cores),
                        0.25,
                        true,
                    )
                    .with_class("mm.page_freelist"),
                );
                net.push(Station::spinlock(
                    "mmap_sem (shared AS)",
                    mmap_sem,
                    1.5,
                    true,
                ));
            }
            _ => {
                net.push(Station::delay("kernel-local", system, true));
            }
        }
        net.push(Station::delay("msort_with_tmp (user)", user, false));
        net
    }
}

/// Runs the Figure-10 sweep for one variant.
pub fn figure10(variant: PedsortVariant) -> Vec<SweepPoint> {
    CoreSweep::run(&PedsortModel::new(variant))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_anchors() {
        let procs = CoreSweep::point(&PedsortModel::new(PedsortVariant::Procs), 1);
        let per_hour = procs.per_core_per_sec * 3600.0;
        assert!((per_hour - JOBS_PER_HOUR_1CORE).abs() / JOBS_PER_HOUR_1CORE < 0.01);
        // Threads are slower even at one core (thread-safe libc).
        let threads = CoreSweep::point(&PedsortModel::new(PedsortVariant::Threads), 1);
        assert!(threads.per_core_per_sec < 0.95 * procs.per_core_per_sec);
    }

    #[test]
    fn figure10_shapes() {
        let threads = figure10(PedsortVariant::Threads);
        let procs = figure10(PedsortVariant::Procs);
        let rr = figure10(PedsortVariant::ProcsRoundRobin);
        let ratio = |s: &[SweepPoint]| s.last().unwrap().per_core_per_sec / s[0].per_core_per_sec;
        assert!(
            ratio(&threads) < 0.4,
            "threads collapse: {}",
            ratio(&threads)
        );
        assert!(
            (0.6..0.9).contains(&ratio(&procs)),
            "procs decline mildly: {}",
            ratio(&procs)
        );
        // Threaded system time explodes (2.3 s → ~41 s in the paper).
        let t48 = threads.last().unwrap().system_usec;
        let t1 = threads[0].system_usec;
        assert!(t48 > 5.0 * t1, "mmap_sem wait grows: {t1} → {t48}");
        // Procs kernel time stays flat — "the kernel is not a limiting
        // factor."
        let p48 = procs.last().unwrap().system_usec;
        let p1 = procs[0].system_usec;
        assert!(p48 < 1.05 * p1);
        // RR beats packed at mid-range core counts (more L3), converges
        // at 48 (all sockets full either way).
        let at =
            |s: &[SweepPoint], n: usize| s.iter().find(|p| p.cores == n).unwrap().per_core_per_sec;
        assert!(at(&rr, 4) > 1.1 * at(&procs, 4), "RR wins at 4 cores");
        let full = (at(&rr, 48) - at(&procs, 48)).abs() / at(&procs, 48);
        assert!(full < 0.01, "lines converge at 48 cores: {full}");
    }

    #[test]
    fn driver_indexes_with_shared_and_private_spaces() {
        for threads in [true, false] {
            let d = PedsortDriver::new(KernelChoice::Stock, 2, 6, threads).unwrap();
            for f in 0..6 {
                d.index_file(f % 2, f).unwrap();
            }
            assert_eq!(d.indexed(), 6);
            // All mappings were torn down.
            for s in &d.spaces {
                assert_eq!(s.region_count(), 0);
            }
            // Threads share one space: all mmap write-locks hit the same
            // region list.
            let writes = d
                .kernel()
                .mm_stats()
                .region_write_locks
                .load(Ordering::Relaxed);
            assert_eq!(writes, 12, "6 mmaps + 6 munmaps");
        }
    }
}
