//! Name-keyed access to the seven MOSBENCH workload models.
//!
//! The figure binaries each hardcode their own model; the diagnostic
//! tools (`contention_report`) instead take a workload name on the
//! command line, so they need one place that maps names to models and
//! kernel choices to the paper's before/after variants.

use crate::common::KernelChoice;
use crate::{apache, exim, gmake, memcached, metis, pedsort, postgres};
use pk_sim::{MachineSpec, WorkloadModel};

/// Every workload name [`model`] accepts.
pub const NAMES: [&str; 7] = [
    "exim",
    "memcached",
    "apache",
    "postgres",
    "gmake",
    "pedsort",
    "metis",
];

/// The serving subset: workloads that are network servers with
/// latency SLOs (the open-loop `pk-serve` roster), as opposed to the
/// batch jobs. Order matches [`NAMES`].
pub const SERVING: [&str; 3] = ["exim", "memcached", "apache"];

/// Builds the model for `name` under `choice`, following the paper's
/// before/after pairings (pedsort's "stock" is the threaded version,
/// Metis's the 4 KB-page version). Names are case-insensitive;
/// returns `None` for unknown workloads.
pub fn model(name: &str, choice: KernelChoice) -> Option<Box<dyn WorkloadModel>> {
    model_on(name, choice, MachineSpec::paper())
}

/// [`model`] on an arbitrary machine topology — the §7 "past 48 cores"
/// axis. Every workload's demands derive from per-socket constants, so
/// the same model sweeps any `sockets × cores_per_socket` shape.
pub fn model_on(
    name: &str,
    choice: KernelChoice,
    machine: MachineSpec,
) -> Option<Box<dyn WorkloadModel>> {
    let m: Box<dyn WorkloadModel> = match name.to_ascii_lowercase().as_str() {
        "exim" => {
            let mut m = exim::EximModel::new(choice);
            m.machine = machine;
            Box::new(m)
        }
        "memcached" => {
            let mut m = memcached::MemcachedModel::new(choice);
            m.machine = machine;
            Box::new(m)
        }
        "apache" => {
            let mut m = apache::ApacheModel::new(choice);
            m.machine = machine;
            Box::new(m)
        }
        "postgres" | "postgresql" => {
            // Coarse is a kernel-side locking regime: the application
            // keeps its stock pairing (unmodified PostgreSQL, threaded
            // pedsort, 4 KB-page Metis).
            let variant = match choice {
                KernelChoice::Stock | KernelChoice::Coarse => postgres::PgVariant::Stock,
                KernelChoice::Pk => postgres::PgVariant::PkModPg,
            };
            let mut m = postgres::PostgresModel::new(variant, true);
            m.machine = machine;
            Box::new(m)
        }
        "gmake" => {
            let mut m = gmake::GmakeModel::new(choice);
            m.machine = machine;
            Box::new(m)
        }
        "pedsort" => {
            let variant = match choice {
                KernelChoice::Stock | KernelChoice::Coarse => pedsort::PedsortVariant::Threads,
                KernelChoice::Pk => pedsort::PedsortVariant::ProcsRoundRobin,
            };
            let mut m = pedsort::PedsortModel::new(variant);
            m.machine = machine;
            Box::new(m)
        }
        "metis" => {
            let variant = match choice {
                KernelChoice::Stock | KernelChoice::Coarse => metis::MetisVariant::StockSmallPages,
                KernelChoice::Pk => metis::MetisVariant::PkSuperPages,
            };
            let mut m = metis::MetisModel::new(variant);
            m.machine = machine;
            Box::new(m)
        }
        _ => return None,
    };
    // The coarse personality keeps stock's demands but clusters the
    // named lock classes into per-subsystem coarse locks.
    if choice == KernelChoice::Coarse {
        return Some(Box::new(pk_sim::Coarsened(m)));
    }
    Some(m)
}

/// [`model_on`] for an arbitrary kernel fix subset — the axis the
/// adaptive personality's controller sweeps. Kernel-side demands derive
/// from `config`; the application side is pinned to the paper's PK
/// pairings (modified PostgreSQL, round-robin pedsort processes, 2 MB
/// Metis pages), because the config axis covers only the 16 kernel
/// fixes — the application modifications are part of the workload
/// definition, not levers the kernel can pull.
pub fn model_with_config(
    name: &str,
    config: &pk_kernel::KernelConfig,
    machine: MachineSpec,
) -> Option<Box<dyn WorkloadModel>> {
    let config = *config;
    let m: Box<dyn WorkloadModel> = match name.to_ascii_lowercase().as_str() {
        "exim" => {
            let mut m = exim::EximModel::with_config(config);
            m.machine = machine;
            Box::new(m)
        }
        "memcached" => {
            let mut m = memcached::MemcachedModel::with_config(config);
            m.machine = machine;
            Box::new(m)
        }
        "apache" => {
            let mut m = apache::ApacheModel::with_config(config);
            m.machine = machine;
            Box::new(m)
        }
        "postgres" | "postgresql" => {
            let mut m = postgres::PostgresModel::with_config(config, true);
            m.machine = machine;
            Box::new(m)
        }
        "gmake" => {
            let mut m = gmake::GmakeModel::with_config(config);
            m.machine = machine;
            Box::new(m)
        }
        "pedsort" => {
            // Purely application-level: no kernel fix moves pedsort.
            let mut m = pedsort::PedsortModel::new(pedsort::PedsortVariant::ProcsRoundRobin);
            m.machine = machine;
            Box::new(m)
        }
        "metis" => {
            let mut m = metis::MetisModel::with_config(config);
            m.machine = machine;
            Box::new(m)
        }
        _ => return None,
    };
    if config.personality() == pk_kernel::Personality::Coarse {
        return Some(Box::new(pk_sim::Coarsened(m)));
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_under_both_choices() {
        for name in NAMES {
            for choice in [KernelChoice::Stock, KernelChoice::Pk] {
                let m = model(name, choice).unwrap_or_else(|| panic!("{name} missing"));
                // The model must actually solve.
                let r = m.network(4).solve(4);
                assert!(r.ops_per_cycle > 0.0, "{name} solves");
            }
        }
    }

    #[test]
    fn every_workload_sweeps_larger_topologies() {
        use pk_sim::CoreSweep;
        let big = MachineSpec::with_topology(16, 12).expect("valid topology");
        for name in NAMES {
            let m = model_on(name, KernelChoice::Pk, big).unwrap();
            assert_eq!(m.machine().cores(), 192, "{name} carries the topology");
            let p = CoreSweep::try_point(m.as_ref(), 192).expect("192 cores fit 16x12");
            assert!(p.per_core_per_sec > 0.0, "{name} solves at 192 cores");
            // Oversubscription is now a typed error at the sweep entry.
            assert!(CoreSweep::try_point(m.as_ref(), 193).is_err());
        }
    }

    #[test]
    fn config_axis_with_all_fixes_matches_the_pk_pairing() {
        use pk_kernel::KernelConfig;
        // The config axis at full fix set must reproduce the PK variant
        // rows exactly — same app pairings, same demands.
        for name in NAMES {
            let pk = model(name, KernelChoice::Pk).unwrap();
            let cfg = model_with_config(name, &KernelConfig::pk(48), MachineSpec::paper()).unwrap();
            let (a, b) = (pk.network(48).solve(48), cfg.network(48).solve(48));
            assert!(
                (a.ops_per_cycle - b.ops_per_cycle).abs() / a.ops_per_cycle < 1e-9,
                "{name}: PK variant {} vs config axis {}",
                a.ops_per_cycle,
                b.ops_per_cycle
            );
        }
    }

    #[test]
    fn adaptive_boot_config_solves_everywhere() {
        use pk_kernel::KernelConfig;
        // Zero fixes promoted: every model must still build and solve
        // (this is the controller's epoch-0 measurement).
        let boot = KernelConfig::adaptive(48);
        for name in NAMES {
            let m = model_with_config(name, &boot, MachineSpec::paper()).unwrap();
            let r = m.network(48).solve(48);
            assert!(r.ops_per_cycle > 0.0, "{name} solves at boot config");
        }
    }

    #[test]
    fn names_are_case_insensitive_and_unknowns_fail() {
        assert!(model("Exim", KernelChoice::Stock).is_some());
        assert!(model("PostgreSQL", KernelChoice::Pk).is_some());
        assert!(model("solitaire", KernelChoice::Stock).is_none());
    }
}
