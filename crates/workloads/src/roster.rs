//! Name-keyed access to the seven MOSBENCH workload models.
//!
//! The figure binaries each hardcode their own model; the diagnostic
//! tools (`contention_report`) instead take a workload name on the
//! command line, so they need one place that maps names to models and
//! kernel choices to the paper's before/after variants.

use crate::common::KernelChoice;
use crate::{apache, exim, gmake, memcached, metis, pedsort, postgres};
use pk_sim::WorkloadModel;

/// Every workload name [`model`] accepts.
pub const NAMES: [&str; 7] = [
    "exim",
    "memcached",
    "apache",
    "postgres",
    "gmake",
    "pedsort",
    "metis",
];

/// Builds the model for `name` under `choice`, following the paper's
/// before/after pairings (pedsort's "stock" is the threaded version,
/// Metis's the 4 KB-page version). Names are case-insensitive;
/// returns `None` for unknown workloads.
pub fn model(name: &str, choice: KernelChoice) -> Option<Box<dyn WorkloadModel>> {
    let m: Box<dyn WorkloadModel> = match name.to_ascii_lowercase().as_str() {
        "exim" => Box::new(exim::EximModel::new(choice)),
        "memcached" => Box::new(memcached::MemcachedModel::new(choice)),
        "apache" => Box::new(apache::ApacheModel::new(choice)),
        "postgres" | "postgresql" => {
            let variant = match choice {
                KernelChoice::Stock => postgres::PgVariant::Stock,
                KernelChoice::Pk => postgres::PgVariant::PkModPg,
            };
            Box::new(postgres::PostgresModel::new(variant, true))
        }
        "gmake" => Box::new(gmake::GmakeModel::new(choice)),
        "pedsort" => {
            let variant = match choice {
                KernelChoice::Stock => pedsort::PedsortVariant::Threads,
                KernelChoice::Pk => pedsort::PedsortVariant::ProcsRoundRobin,
            };
            Box::new(pedsort::PedsortModel::new(variant))
        }
        "metis" => {
            let variant = match choice {
                KernelChoice::Stock => metis::MetisVariant::StockSmallPages,
                KernelChoice::Pk => metis::MetisVariant::PkSuperPages,
            };
            Box::new(metis::MetisModel::new(variant))
        }
        _ => return None,
    };
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_under_both_choices() {
        for name in NAMES {
            for choice in [KernelChoice::Stock, KernelChoice::Pk] {
                let m = model(name, choice).unwrap_or_else(|| panic!("{name} missing"));
                // The model must actually solve.
                let r = m.network(4).solve(4);
                assert!(r.ops_per_cycle > 0.0, "{name} solves");
            }
        }
    }

    #[test]
    fn names_are_case_insensitive_and_unknowns_fail() {
        assert!(model("Exim", KernelChoice::Stock).is_some());
        assert!(model("PostgreSQL", KernelChoice::Pk).is_some());
        assert!(model("solitaire", KernelChoice::Stock).is_none());
    }
}
