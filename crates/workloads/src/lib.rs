//! The seven MOSBENCH applications (§3), each in two forms:
//!
//! 1. a **driver** that issues the application's kernel-operation mix
//!    against the real [`pk_kernel::Kernel`] substrate — the functional
//!    workload used by tests and examples, and the source of truth for
//!    *which* shared objects each app hammers;
//! 2. a **model** implementing [`pk_sim::WorkloadModel`] — the same
//!    operation mix expressed as per-operation cycle demands on the
//!    simulated 48-core machine, which regenerates the paper's figures.
//!
//! Model parameters are documented constants: per-operation cycle totals
//! come from the paper's own single-core throughput and in-kernel time
//! fractions (§3), and shared-resource demands are set so the stock
//! curves reproduce the published bottlenecks (each constant cites its
//! figure). The stock/PK switch works by zeroing the demands of stations
//! whose Figure-1 fix is enabled — exactly how the real fixes work: they
//! do not speed anything up, they stop touching shared lines.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod apache;
mod common;
pub mod exim;
pub mod gmake;
pub mod gmake_exec;
pub mod memcached;
pub mod metis;
pub mod pedsort;
pub mod pedsort_indexer;
pub mod postgres;
pub mod roster;
pub mod summary;

pub use common::{config_label, demand_unless, KernelChoice};
