//! The Exim mail-server workload (§3.1, §5.2, Figure 4).
//!
//! Per SMTP connection, Exim forks a handler process; per message it
//! forks twice, queues the message in one of 62 spool directories,
//! appends to the per-user mail file, deletes the spooled copy, and logs
//! the delivery. It spends 69% of its single-core time in the kernel,
//! "stressing process creation and small file creation and deletion."
//!
//! Stock bottleneck: "contention on a non-scalable kernel spin lock that
//! serializes access to the vfsmount table. Exim causes the kernel to
//! access the vfsmount table dozens of times for each message." PK's
//! residual limit is application-induced contention on the per-directory
//! locks of the spool directories.

use crate::common::{config_label, demand_unless, gen2_demand, KernelChoice};
use pk_fault::{FaultPlane, RetryPolicy};
use pk_kernel::{FixId, Kernel, KernelConfig, KernelError};
use pk_percpu::CoreId;
use pk_proc::Pid;
use pk_sim::{CoreSweep, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of spool directories Exim hashes messages over (§5.2).
pub const SPOOL_DIRS: usize = 62;

/// Messages sent per SMTP connection (§5.2: "sends 10 separate 20-byte
/// messages ... prevents exhaustion of TCP client port numbers").
pub const MSGS_PER_CONNECTION: usize = 10;

/// Message body size in bytes.
pub const MSG_BYTES: usize = 20;

/// Single-core throughput anchor, messages/sec/core (Figure 4's y origin
/// for both kernels).
pub const MSGS_PER_SEC_1CORE: f64 = 630.0;

/// Fraction of single-core time spent in the kernel (§3.1).
pub const KERNEL_FRACTION: f64 = 0.69;

/// Functional driver: delivers mail through the real kernel substrate.
#[derive(Debug)]
pub struct EximDriver {
    kernel: Kernel,
    delivered: AtomicU64,
    /// Messages whose delivery was attempted (delivered + bounced once a
    /// connection completes — the chaos harness checks this invariant).
    attempted: AtomicU64,
    /// Transient delivery failures that were requeued (SMTP 4xx).
    tempfails: AtomicU64,
    /// Messages given up on after the retry budget ran out (SMTP 5xx).
    bounced: AtomicU64,
    /// Total simulated backoff charged by requeues, in cycles.
    retry_backoff_cycles: AtomicU64,
    retry: RetryPolicy,
    /// §5.2's third application fix: "We configured Exim to avoid an
    /// exec() per mail message, using deliver_drop_privilege." `false` =
    /// stock Exim, exec()ing a delivery binary per message.
    avoid_exec: bool,
    /// §5.2's first application fix: "Berkeley DB v4.6 reads /proc/stat
    /// to find the number of cores. This consumed about 20% of the total
    /// runtime, so we modified Berkeley DB to aggressively cache this
    /// information." `true` = the modified (caching) Berkeley DB.
    bdb_caches_cpu_count: bool,
    cached_cpu_count: std::sync::OnceLock<usize>,
}

impl EximDriver {
    /// Boots a kernel and lays out the spool/mail/log directories,
    /// with the modified (caching) Berkeley DB.
    ///
    /// Fails if the spool layout cannot be created — every directory
    /// goes through the kernel's syscall surface, so a boot-time fault
    /// surfaces as an error, not a panic.
    pub fn new(choice: KernelChoice, cores: usize) -> Result<Self, KernelError> {
        Self::with_bdb(choice, cores, true)
    }

    /// As [`EximDriver::new`], selecting stock vs modified Berkeley DB.
    pub fn with_bdb(
        choice: KernelChoice,
        cores: usize,
        bdb_caches_cpu_count: bool,
    ) -> Result<Self, KernelError> {
        Self::with_app_config(choice, cores, bdb_caches_cpu_count, true)
    }

    /// Boots a kernel wired to `faults` (with the modified Berkeley DB
    /// and deliver_drop_privilege). Arm the plane only after
    /// construction: the spool layout must not eat injected faults.
    pub fn with_faults(
        choice: KernelChoice,
        cores: usize,
        faults: Arc<FaultPlane>,
    ) -> Result<Self, KernelError> {
        Self::build(choice, cores, true, true, faults)
    }

    /// Full application-configuration control: Berkeley DB caching and
    /// the deliver_drop_privilege (no-exec) setting.
    pub fn with_app_config(
        choice: KernelChoice,
        cores: usize,
        bdb_caches_cpu_count: bool,
        avoid_exec: bool,
    ) -> Result<Self, KernelError> {
        Self::build(
            choice,
            cores,
            bdb_caches_cpu_count,
            avoid_exec,
            Arc::new(FaultPlane::disabled()),
        )
    }

    fn build(
        choice: KernelChoice,
        cores: usize,
        bdb_caches_cpu_count: bool,
        avoid_exec: bool,
        faults: Arc<FaultPlane>,
    ) -> Result<Self, KernelError> {
        let kernel = Kernel::with_faults(choice.config(cores), faults);
        let core = CoreId(0);
        for d in 0..SPOOL_DIRS {
            kernel
                .vfs()
                .mkdir_p(&format!("/var/spool/input/{d}"), core)?;
        }
        kernel.vfs().mkdir_p("/var/mail", core)?;
        kernel.vfs().mkdir_p("/var/log", core)?;
        kernel.vfs().write_file("/var/log/exim", b"", core)?;
        Ok(Self {
            kernel,
            delivered: AtomicU64::new(0),
            attempted: AtomicU64::new(0),
            tempfails: AtomicU64::new(0),
            bounced: AtomicU64::new(0),
            retry_backoff_cycles: AtomicU64::new(0),
            retry: RetryPolicy::DEFAULT,
            avoid_exec,
            bdb_caches_cpu_count,
            cached_cpu_count: std::sync::OnceLock::new(),
        })
    }

    /// Berkeley DB discovering the core count: stock re-reads
    /// `/proc/stat` every time; the modified version caches it. The
    /// procfs read sits on the per-message delivery path, so its
    /// failure propagates instead of panicking.
    fn bdb_cpu_count(&self) -> Result<usize, KernelError> {
        if let Some(&n) = self.cached_cpu_count.get() {
            return Ok(n);
        }
        let stat = self.kernel.proc_read("/proc/stat")?;
        let n = pk_kernel::procfs::parse_cpu_count(&stat);
        if self.bdb_caches_cpu_count {
            let _ = self.cached_cpu_count.set(n);
        }
        Ok(n)
    }

    /// Returns the kernel (for inspecting stats).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Messages whose delivery was attempted.
    pub fn attempted(&self) -> u64 {
        self.attempted.load(Ordering::Relaxed)
    }

    /// Transient failures that were requeued and retried.
    pub fn tempfails(&self) -> u64 {
        self.tempfails.load(Ordering::Relaxed)
    }

    /// Messages bounced after the retry budget ran out.
    pub fn bounced(&self) -> u64 {
        self.bounced.load(Ordering::Relaxed)
    }

    /// Total simulated requeue backoff, in cycles.
    pub fn retry_backoff_cycles(&self) -> u64 {
        self.retry_backoff_cycles.load(Ordering::Relaxed)
    }

    /// Delivers one message on `core` for `user`, as the per-connection
    /// process `conn`: fork twice, spool, append to the mailbox, unlink
    /// the spool file, log.
    ///
    /// On failure the delivery children are reaped and the spooled copy
    /// is removed, so a requeue retries from a clean slate and nothing
    /// leaks across attempts.
    pub fn deliver_message(
        &self,
        core: CoreId,
        conn: Pid,
        msg_id: u64,
        user: usize,
    ) -> Result<(), KernelError> {
        let k = &self.kernel;
        // One delivery = one request for causal tracing: every lock wait
        // and RCU-walk fallback below lands inside this context, so the
        // tail attribution can name the message that paid for it. The id
        // is a pure function of (connection, user, message) — reruns
        // fold to byte-identical span trees.
        let _req = pk_trace::RequestScope::enter(pk_trace::request_id(conn.0, user as u64, msg_id));
        // Berkeley DB consults the core count while opening its hints
        // database (stock BDB: a fresh /proc/stat read per message).
        let _cores = self.bdb_cpu_count()?;
        // Exim forks twice to deliver each message (§3.1).
        let d1 = k.fork(conn, core)?;
        let d2 = match k.fork(conn, core) {
            Ok(p) => p,
            Err(e) => {
                let _ = k.exit(d1, core);
                return Err(e);
            }
        };
        // Spool the message, hashed by process id over 62 directories.
        let dir = (conn.0 as usize).wrapping_add(msg_id as usize) % SPOOL_DIRS;
        let spool = format!("/var/spool/input/{dir}/msg-{}-{msg_id}", conn.0);
        let body = [b'x'; MSG_BYTES];
        let outcome = (|| -> Result<(), KernelError> {
            if !self.avoid_exec {
                // Stock Exim execs the delivery binary in each child.
                k.procs().exec(d1)?;
                k.procs().exec(d2)?;
            }
            k.vfs().write_file(&spool, &body, core)?;
            // Append to the per-user mail file.
            let mbox = format!("/var/mail/user{user}");
            let f = match k.vfs().open(&mbox, core) {
                Ok(f) => f,
                Err(pk_vfs::VfsError::NotFound) => k.vfs().create(&mbox, core)?,
                Err(e) => return Err(e.into()),
            };
            let append = f.append(&body);
            k.vfs().close(&f, core);
            append?;
            // Delete the spooled copy and record the delivery.
            k.vfs().unlink(&spool, core)?;
            let log = k.vfs().open("/var/log/exim", core)?;
            let logged = log.append(format!("delivered {msg_id}\n").as_bytes());
            k.vfs().close(&log, core);
            logged?;
            Ok(())
        })();
        // The delivery children exit whether or not delivery succeeded.
        let exit1 = k.exit(d1, core);
        let exit2 = k.exit(d2, core);
        match outcome {
            Ok(()) => {
                exit1?;
                exit2?;
                self.delivered.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // Leave no half-delivered spool file behind for the retry.
                let _ = k.vfs().unlink(&spool, core);
                Err(e)
            }
        }
    }

    /// Handles one SMTP connection on `core`: fork the handler, deliver
    /// [`MSGS_PER_CONNECTION`] messages to `user`, tear down.
    ///
    /// Transient failures are requeued with deterministic backoff (the
    /// jitter derives from the kernel's fault seed); a message whose
    /// retry budget runs out is bounced, counted, and the connection
    /// moves on — mirroring SMTP's 4xx tempfail / 5xx bounce split.
    /// Permanent errors abort the connection.
    pub fn run_connection(&self, core: CoreId, user: usize) -> Result<(), KernelError> {
        let seed = self.kernel.faults().seed();
        let conn_token = (user as u64).rotate_left(41) ^ core.0 as u64;
        // A fork failure that survives the retry budget aborts the
        // connection: the handler never existed.
        let conn = self.retry_transient(seed, conn_token, |_| self.kernel.fork(Pid(1), core))?;
        let mut result = Ok(());
        for m in 0..MSGS_PER_CONNECTION {
            self.attempted.fetch_add(1, Ordering::Relaxed);
            let token = conn.0 << 16 | m as u64;
            match self.retry_transient(seed, token, |_| {
                self.deliver_message(core, conn, m as u64, user)
            }) {
                Ok(()) => {}
                Err(e) if e.is_transient() => {
                    // Retry budget exhausted: bounce and move on.
                    self.bounced.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        let _ = self.kernel.exit(conn, core);
        result
    }

    /// Runs `op` under the driver's retry policy, retrying only
    /// transient errors and charging the backoff to the driver's books.
    fn retry_transient<T>(
        &self,
        seed: u64,
        token: u64,
        mut op: impl FnMut(u32) -> Result<T, KernelError>,
    ) -> Result<T, KernelError> {
        let out = self.retry.run(seed, token, |attempt| match op(attempt) {
            Ok(v) => Ok(Ok(v)),
            Err(e) if e.is_transient() => Err(e), // requeue
            Err(e) => Ok(Err(e)),                 // permanent: stop retrying
        });
        if out.attempts > 1 {
            self.tempfails
                .fetch_add(u64::from(out.attempts) - 1, Ordering::Relaxed);
            self.retry_backoff_cycles
                .fetch_add(out.backoff_cycles, Ordering::Relaxed);
        }
        out.result.and_then(|inner| inner)
    }
}

/// Figure-4 performance model.
#[derive(Debug, Clone, Copy)]
pub struct EximModel {
    /// The kernel's fix set (any subset of the 16, for ablations).
    pub config: KernelConfig,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl EximModel {
    /// Creates the model for `choice` on the paper machine.
    pub fn new(choice: KernelChoice) -> Self {
        Self::with_config(choice.config(48))
    }

    /// Creates the model for an arbitrary fix subset.
    pub fn with_config(config: KernelConfig) -> Self {
        Self {
            config,
            machine: MachineSpec::paper(),
        }
    }

    /// Total cycles per message on one core.
    fn total_cycles(&self) -> f64 {
        self.machine.clock_hz / MSGS_PER_SEC_1CORE
    }
}

impl WorkloadModel for EximModel {
    fn name(&self) -> String {
        format!("Exim/{}", config_label(&self.config))
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        let user = t * (1.0 - KERNEL_FRACTION);
        // Stock shared demands (cycles per message). The vfsmount-table
        // spin lock dominates ("dozens of [accesses] for each message");
        // dentry refcounts, per-dentry d_lock acquisitions, and the
        // falsely shared `struct page` line make up the rest. Sized so
        // the stock knee lands near 12 cores as in Figure 4.
        let cfg = &self.config;
        let vfsmount_lock = demand_unless(cfg, FixId::PerCoreMountCache, t * 0.052);
        let dentry_refs = demand_unless(cfg, FixId::SloppyDentryRefs, t * 0.018);
        let dlookup_locks = demand_unless(cfg, FixId::LockFreeDlookup, t * 0.010);
        let page_false_sharing = demand_unless(cfg, FixId::PageFalseSharing, t * 0.003);
        let shared = vfsmount_lock + dentry_refs + dlookup_locks + page_false_sharing;
        // Kernel work that stays core-local (plus, under PK, the now
        //-local sloppy/per-core replacements of the shared demands).
        let kernel_local = t * KERNEL_FRACTION - shared;
        // Cross-core misses on kernel data once more than one core runs
        // (the 1→2 core drop of §5.2), growing slowly as more chips
        // participate.
        let cross_core = if cores > 1 {
            t * 0.30 * (1.0 - 1.0 / (cores as f64).sqrt())
        } else {
            0.0
        };
        // Application-induced spool-directory contention: the probability
        // two concurrent deliveries pick the same of the 62 directories
        // grows with core count (§5.2's residual PK bottleneck).
        let spool = 20_000.0 * cores as f64 / SPOOL_DIRS as f64;
        // Generation-2 growth stations (past 48 cores): the per-component
        // get/put of the reference walk — invisible under the 48-core
        // roster, the top collapse at 1024 — and the saturation point of
        // flat sloppy dentry counters (reconciles scan every core).
        let path_walk = demand_unless(cfg, FixId::RcuPathWalk, gen2_demand(t, 0.000_12, cores));
        let dentry_ref_scale =
            demand_unless(cfg, FixId::SnziVfsRefs, gen2_demand(t, 0.000_06, cores));

        let mut net = Network::new();
        net.push(Station::delay("user", user, false));
        net.push(Station::delay("kernel-local", kernel_local, true));
        net.push(Station::delay("cross-core misses", cross_core, true));
        // The gen-2 stations sit *before* the gen-1 locks in visit
        // order: under-saturated at 48 cores the pile-up passes through
        // to the vfsmount lock, past ~96 they saturate first and own
        // the collapse (first saturated station in order captures the
        // queue under the §4.1 collapse feedback).
        net.push(
            Station::spinlock("per-component path-walk refs", path_walk, 0.3, true)
                .with_class("vfs.path_walk"),
        );
        net.push(
            Station::spinlock("dentry ref saturation", dentry_ref_scale, 0.25, true)
                .with_class("vfs.dentry_ref_scale"),
        );
        net.push(
            Station::spinlock("vfsmount-table lock", vfsmount_lock, 0.35, true)
                .with_class("vfs.mount_table"),
        );
        net.push(
            Station::queue("dentry refcounts", dentry_refs, true).with_class("vfs.dentry_ref"),
        );
        net.push(
            Station::queue("dentry d_lock", dlookup_locks, true).with_class("vfs.dentry_lock"),
        );
        net.push(
            Station::queue("page false sharing", page_false_sharing, true)
                .with_class("mm.page_line"),
        );
        net.push(Station::queue("spool directories", spool, true));
        net
    }
}

/// Runs the Figure-4 sweep for one kernel.
pub fn figure4(choice: KernelChoice) -> Vec<SweepPoint> {
    CoreSweep::run(&EximModel::new(choice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_delivers_mail_on_both_kernels() {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let d = EximDriver::new(choice, 4).unwrap();
            d.run_connection(CoreId(0), 0).unwrap();
            d.run_connection(CoreId(1), 1).unwrap();
            assert_eq!(d.delivered(), 20);
            // Mailboxes accumulated 10 messages each.
            let mb = d.kernel().vfs().stat("/var/mail/user0", CoreId(0)).unwrap();
            assert_eq!(mb.size, (MSGS_PER_CONNECTION * MSG_BYTES) as u64);
            // All spool files were deleted.
            for dir in 0..SPOOL_DIRS {
                let st = d
                    .kernel()
                    .vfs()
                    .stat(&format!("/var/spool/input/{dir}"), CoreId(0))
                    .unwrap();
                assert_eq!(st.kind, pk_vfs::InodeKind::Dir);
            }
            // Processes were all reaped (only init remains).
            assert_eq!(d.kernel().procs().len(), 1);
            assert_eq!(d.kernel().procs().fork_count(), 2 * (1 + 2 * 10));
        }
    }

    #[test]
    fn driver_exercises_the_right_stats() {
        let d = EximDriver::new(KernelChoice::Stock, 4).unwrap();
        d.run_connection(CoreId(0), 0).unwrap();
        let stats = d.kernel().vfs().stats();
        assert!(
            stats.mount_central_lookups.load(Ordering::Relaxed) > 30,
            "dozens of vfsmount accesses per connection"
        );
        let pk = EximDriver::new(KernelChoice::Pk, 4).unwrap();
        pk.run_connection(CoreId(0), 0).unwrap();
        let pk_central = pk
            .kernel()
            .vfs()
            .stats()
            .mount_central_lookups
            .load(Ordering::Relaxed);
        assert!(
            pk_central <= 2,
            "per-core mount caches kill central lookups, got {pk_central}"
        );
    }

    #[test]
    fn deliveries_are_request_scoped_for_causal_tracing() {
        // One delivery = one context: the global tracer sees exactly one
        // CtxBegin/CtxEnd pair carrying request_id(conn, user, msg), and
        // the scope leaves nothing pinned on the thread afterwards.
        let t = pk_trace::install_global(1 << 16);
        let d = EximDriver::new(KernelChoice::Stock, 2).unwrap();
        let conn = d.kernel().fork(Pid(1), CoreId(0)).unwrap();
        let leaks_before = pk_trace::ctx_leaks();
        t.enable();
        d.deliver_message(CoreId(0), conn, 7, 3).unwrap();
        t.disable();
        let id = pk_trace::request_id(conn.0, 3, 7);
        let events = t.drain();
        let count = |kind: pk_trace::EventKind| {
            events
                .iter()
                .filter(|e| e.kind == kind && e.arg == id)
                .count()
        };
        assert_eq!(count(pk_trace::EventKind::CtxBegin), 1);
        assert_eq!(count(pk_trace::EventKind::CtxEnd), 1);
        assert_eq!(pk_trace::ctx_leaks(), leaks_before, "scope closed cleanly");
        assert_eq!(pk_trace::current_request(), 0, "nothing pinned after");
    }

    #[test]
    fn deliver_drop_privilege_avoids_execs() {
        let stock_app = EximDriver::with_app_config(KernelChoice::Pk, 2, true, false).unwrap();
        stock_app.run_connection(CoreId(0), 0).unwrap();
        assert_eq!(
            stock_app.kernel().procs().exec_count(),
            2 * MSGS_PER_CONNECTION as u64
        );
        let mod_app = EximDriver::new(KernelChoice::Pk, 2).unwrap();
        mod_app.run_connection(CoreId(0), 0).unwrap();
        assert_eq!(mod_app.kernel().procs().exec_count(), 0);
    }

    #[test]
    fn bdb_proc_stat_caching() {
        // Stock Berkeley DB reads /proc/stat per message; the modified
        // one reads it once.
        let stock_bdb = EximDriver::with_bdb(KernelChoice::Pk, 2, false).unwrap();
        stock_bdb.run_connection(CoreId(0), 0).unwrap();
        assert_eq!(
            stock_bdb
                .kernel()
                .proc_stats()
                .stat_reads
                .load(Ordering::Relaxed),
            MSGS_PER_CONNECTION as u64
        );
        let mod_bdb = EximDriver::with_bdb(KernelChoice::Pk, 2, true).unwrap();
        mod_bdb.run_connection(CoreId(0), 0).unwrap();
        assert_eq!(
            mod_bdb
                .kernel()
                .proc_stats()
                .stat_reads
                .load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn transient_faults_are_requeued_not_fatal() {
        let faults = Arc::new(FaultPlane::with_seed(0xE215));
        let d = EximDriver::with_faults(KernelChoice::Pk, 4, Arc::clone(&faults)).unwrap();
        // Roughly 5% fork failures and occasional allocator trouble.
        faults.set("proc.fork_fail", pk_fault::FaultSchedule::EveryNth(20));
        faults.set("vfs.dentry_alloc", pk_fault::FaultSchedule::EveryNth(40));
        faults.enable();
        for conn in 0..8 {
            d.run_connection(CoreId(conn % 4), conn).unwrap();
        }
        faults.disable();
        assert_eq!(
            d.delivered() + d.bounced(),
            d.attempted(),
            "every message is either delivered or bounced"
        );
        assert_eq!(d.attempted(), 8 * MSGS_PER_CONNECTION as u64);
        assert!(d.tempfails() > 0, "faults must have forced requeues");
        assert!(d.retry_backoff_cycles() > 0, "requeues charge backoff");
        // No process or spool leaks despite the failures.
        assert_eq!(d.kernel().procs().len(), 1, "all children reaped");
        assert_eq!(
            d.kernel().vfs().superblock().open_files(),
            0,
            "no leaked open files"
        );
    }

    #[test]
    fn fault_free_run_counts_no_retries() {
        let d = EximDriver::new(KernelChoice::Pk, 2).unwrap();
        d.run_connection(CoreId(0), 0).unwrap();
        assert_eq!(d.tempfails(), 0);
        assert_eq!(d.bounced(), 0);
        assert_eq!(d.attempted(), MSGS_PER_CONNECTION as u64);
        assert_eq!(d.delivered(), MSGS_PER_CONNECTION as u64);
    }

    #[test]
    fn one_core_throughputs_match_anchor() {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let p = CoreSweep::point(&EximModel::new(choice), 1);
            let err = (p.per_core_per_sec - MSGS_PER_SEC_1CORE).abs() / MSGS_PER_SEC_1CORE;
            assert!(err < 0.01, "{choice:?}: {}", p.per_core_per_sec);
        }
    }

    #[test]
    fn figure4_shapes() {
        let stock = figure4(KernelChoice::Stock);
        let pk = figure4(KernelChoice::Pk);
        let ratio = |s: &[SweepPoint]| s.last().unwrap().per_core_per_sec / s[0].per_core_per_sec;
        let stock_ratio = ratio(&stock);
        let pk_ratio = ratio(&pk);
        assert!(
            stock_ratio < 0.35,
            "stock collapses (Figure 3 bar ≈ 0.1–0.3): {stock_ratio}"
        );
        assert!(
            (0.6..0.95).contains(&pk_ratio),
            "PK scales to ≈0.77: {pk_ratio}"
        );
        assert!(pk_ratio > 3.0 * stock_ratio, "PK beats stock by a lot");
        // Stock total throughput peaks well before 48 cores.
        let peak = stock
            .iter()
            .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
            .unwrap();
        assert!(peak.cores < 48, "stock peak at {} cores", peak.cores);
        // PK system time per message grows with cores (Figure 4's right
        // axis).
        assert!(pk.last().unwrap().system_usec > pk[0].system_usec);
        // The stock bottleneck is the vfsmount table.
        assert_eq!(stock.last().unwrap().bottleneck, "vfsmount-table lock");
    }
}
