//! Shared workload plumbing.

use pk_kernel::KernelConfig;

/// Which kernel a workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Stock Linux 2.6.35-rc5.
    Stock,
    /// The patched kernel with all 16 fixes.
    Pk,
}

impl KernelChoice {
    /// Lowers to a [`KernelConfig`] for `cores`.
    pub fn config(self, cores: usize) -> KernelConfig {
        match self {
            Self::Stock => KernelConfig::stock(cores),
            Self::Pk => KernelConfig::pk(cores),
        }
    }

    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Stock => "Stock",
            Self::Pk => "PK",
        }
    }

    /// Returns 0.0 when this choice enables the fix (PK), `demand`
    /// otherwise — the "a fix stops touching the shared line" lowering.
    pub fn unless_fixed(self, demand: f64) -> f64 {
        match self {
            Self::Stock => demand,
            Self::Pk => 0.0,
        }
    }
}

/// Zeroes `demand` when `fix` is enabled in `config` — the per-fix
/// generalization of [`KernelChoice::unless_fixed`], used by the
/// ablation harness to model arbitrary fix subsets.
pub fn demand_unless(config: &pk_kernel::KernelConfig, fix: pk_kernel::FixId, demand: f64) -> f64 {
    if config.has(fix) {
        0.0
    } else {
        demand
    }
}

/// A human-readable label for a config: "Stock", "PK", "custom(n)", or
/// — for the adaptive personality — the promoted-fix count.
pub fn config_label(config: &pk_kernel::KernelConfig) -> String {
    if config.personality() == pk_kernel::Personality::Adaptive {
        return format!("Adaptive({} promoted)", config.enabled_count());
    }
    match config.enabled_count() {
        0 => "Stock".to_string(),
        16 => "PK".to_string(),
        n => format!("custom({n} fixes)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_matches_presets() {
        assert_eq!(KernelChoice::Stock.config(8), KernelConfig::stock(8));
        assert_eq!(KernelChoice::Pk.config(8), KernelConfig::pk(8));
        assert_eq!(KernelChoice::Stock.unless_fixed(5.0), 5.0);
        assert_eq!(KernelChoice::Pk.unless_fixed(5.0), 0.0);
    }
}
