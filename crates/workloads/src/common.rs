//! Shared workload plumbing.

use pk_kernel::KernelConfig;

/// Which kernel a workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Stock Linux 2.6.35-rc5.
    Stock,
    /// Stock with the named lock classes clustered into a few coarse
    /// locks (the microkernel coarse-grained-locking point on the
    /// spectrum); no fixes applied.
    Coarse,
    /// The patched kernel with every registered fix.
    Pk,
}

impl KernelChoice {
    /// Lowers to a [`KernelConfig`] for `cores`.
    pub fn config(self, cores: usize) -> KernelConfig {
        match self {
            Self::Stock => KernelConfig::stock(cores),
            Self::Coarse => KernelConfig::coarse(cores),
            Self::Pk => KernelConfig::pk(cores),
        }
    }

    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Stock => "Stock",
            Self::Coarse => "Coarse",
            Self::Pk => "PK",
        }
    }

    /// Returns 0.0 when this choice enables the fix (PK), `demand`
    /// otherwise — the "a fix stops touching the shared line" lowering.
    /// Coarse applies no fixes: per-class demands survive and are then
    /// clustered by [`pk_sim::Network::coarsen`].
    pub fn unless_fixed(self, demand: f64) -> f64 {
        match self {
            Self::Stock | Self::Coarse => demand,
            Self::Pk => 0.0,
        }
    }
}

/// Zeroes `demand` when `fix` is enabled in `config` — the per-fix
/// generalization of [`KernelChoice::unless_fixed`], used by the
/// ablation harness to model arbitrary fix subsets.
pub fn demand_unless(config: &pk_kernel::KernelConfig, fix: pk_kernel::FixId, demand: f64) -> f64 {
    if config.has(fix) {
        0.0
    } else {
        demand
    }
}

/// Demand of a **generation-2 growth station**: contention invisible at
/// the paper's 48 cores but linear in core count, so it owns the curve
/// at several hundred cores. Zero at one core (the single-core anchors
/// stay exact); well under 1% of `total_cycles` at 48; the dominant
/// collapse by 1024. Pair with a gen-2 [`pk_kernel::FixId`] via
/// [`demand_unless`] so the corresponding fix (RCU walk, SNZI trees,
/// per-socket shards) removes it entirely.
pub fn gen2_demand(total_cycles: f64, coef: f64, cores: usize) -> f64 {
    total_cycles * coef * cores.saturating_sub(1) as f64
}

/// A human-readable label for a config: "Stock", "PK", "custom(n)", or
/// — for the adaptive personality — the promoted-fix count.
pub fn config_label(config: &pk_kernel::KernelConfig) -> String {
    if config.personality() == pk_kernel::Personality::Adaptive {
        return format!("Adaptive({} promoted)", config.enabled_count());
    }
    if config.personality() == pk_kernel::Personality::Coarse {
        return "Coarse".to_string();
    }
    match config.enabled_count() {
        0 => "Stock".to_string(),
        n if n == pk_kernel::NUM_FIXES => "PK".to_string(),
        n => format!("custom({n} fixes)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_matches_presets() {
        assert_eq!(KernelChoice::Stock.config(8), KernelConfig::stock(8));
        assert_eq!(KernelChoice::Coarse.config(8), KernelConfig::coarse(8));
        assert_eq!(KernelChoice::Pk.config(8), KernelConfig::pk(8));
        assert_eq!(KernelChoice::Stock.unless_fixed(5.0), 5.0);
        assert_eq!(KernelChoice::Coarse.unless_fixed(5.0), 5.0);
        assert_eq!(KernelChoice::Pk.unless_fixed(5.0), 0.0);
    }

    #[test]
    fn labels_cover_all_personalities() {
        assert_eq!(config_label(&KernelConfig::stock(8)), "Stock");
        assert_eq!(config_label(&KernelConfig::coarse(8)), "Coarse");
        assert_eq!(config_label(&KernelConfig::pk(8)), "PK");
    }
}
