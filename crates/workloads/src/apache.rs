//! The Apache web-server workload (§3.3, §5.4, Figure 6).
//!
//! A single Apache instance, one process per core, serving one 300-byte
//! static file; every request accepts a TCP connection, `stat`s and opens
//! the file, copies it to the socket, and closes both. 60% of single-core
//! time is kernel.
//!
//! On the stock kernel even per-core instances scale poorly (dentry
//! refcounts, per-dentry locks, open-file lists, and the network-side
//! bottlenecks shared with memcached). With PK, each connection is
//! accepted and processed entirely on the core its packets arrive on
//! (§4.2). "Past 36 cores, performance degrades because the network card
//! cannot keep up ... the card's internal receive packet FIFO overflows"
//! — server idle time reaches 18% at 48 cores.

use crate::common::{config_label, demand_unless, gen2_demand, KernelChoice};
use pk_fault::{FaultPlane, RetryPolicy};
use pk_kernel::{FixId, Kernel, KernelConfig, KernelError};
use pk_net::FlowHash;
use pk_percpu::CoreId;
use pk_sim::{CoreSweep, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size of the static file served (§5.4).
pub const FILE_BYTES: usize = 300;
/// The served path.
pub const FILE_PATH: &str = "/htdocs/index.html";

/// Single-core throughput anchor, requests/sec/core (Figure 6).
pub const REQS_PER_SEC_1CORE: f64 = 9_000.0;
/// Kernel fraction of single-core time (§3.3).
pub const KERNEL_FRACTION: f64 = 0.60;
/// Core count past which the card's RX FIFO overflows (§5.4).
pub const NIC_FIFO_KNEE: usize = 36;

/// Functional driver: accept → stat → open → read → close over the real
/// kernel.
#[derive(Debug)]
pub struct ApacheDriver {
    kernel: Kernel,
    served: AtomicU64,
    next_client_port: AtomicU64,
    /// Accept polls that found the backlog empty and charged a backoff
    /// (a live worker would sleep in `accept(2)`; the driver's polling
    /// loop models that wait explicitly instead of spinning).
    accept_backoffs: AtomicU64,
    /// Total simulated accept backoff, in cycles.
    accept_backoff_cycles: AtomicU64,
    /// Consecutive empty polls, the backoff's attempt index (resets on
    /// every accepted connection so recovery is immediate).
    empty_polls: AtomicU64,
    /// Transient filesystem failures absorbed by in-request retries.
    request_tempfails: AtomicU64,
    /// Connections accepted but answered with an error after the retry
    /// budget ran out (a live server's 5xx).
    failed_requests: AtomicU64,
    retry: RetryPolicy,
}

impl ApacheDriver {
    /// Boots a kernel, publishes the document root, and listens on :80.
    pub fn new(choice: KernelChoice, cores: usize) -> Self {
        Self::with_faults(choice, cores, Arc::new(FaultPlane::disabled()))
    }

    /// As [`ApacheDriver::new`], with every substrate wired to `faults`.
    /// Arm the plane only after construction so setup runs clean.
    pub fn with_faults(choice: KernelChoice, cores: usize, faults: Arc<FaultPlane>) -> Self {
        Self::with_config_and_faults(choice.config(cores), faults)
    }

    /// As [`ApacheDriver::with_faults`], on an explicit config — the
    /// entry point for the overload-policy axis: a config built with
    /// `with_overload` lowers its admission cap onto the listener's
    /// backlog, and refused handshakes surface through
    /// [`ApacheDriver::try_client_connect`].
    pub fn with_config_and_faults(config: KernelConfig, faults: Arc<FaultPlane>) -> Self {
        let kernel = Kernel::with_faults(config, faults);
        let core = CoreId(0);
        kernel.vfs().mkdir_p("/htdocs", core).expect("docroot");
        kernel
            .vfs()
            .write_file(FILE_PATH, &vec![b'w'; FILE_BYTES], core)
            .expect("static file");
        kernel.net().listen(80);
        Self {
            kernel,
            served: AtomicU64::new(0),
            next_client_port: AtomicU64::new(1024),
            accept_backoffs: AtomicU64::new(0),
            accept_backoff_cycles: AtomicU64::new(0),
            empty_polls: AtomicU64::new(0),
            request_tempfails: AtomicU64::new(0),
            failed_requests: AtomicU64::new(0),
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// Returns the kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Empty accept polls that charged a backoff.
    pub fn accept_backoffs(&self) -> u64 {
        self.accept_backoffs.load(Ordering::Relaxed)
    }

    /// Total simulated accept backoff, in cycles.
    pub fn accept_backoff_cycles(&self) -> u64 {
        self.accept_backoff_cycles.load(Ordering::Relaxed)
    }

    /// Transient filesystem failures absorbed by in-request retries.
    pub fn request_tempfails(&self) -> u64 {
        self.request_tempfails.load(Ordering::Relaxed)
    }

    /// Accepted connections that exhausted their retry budget (5xx).
    pub fn failed_requests(&self) -> u64 {
        self.failed_requests.load(Ordering::Relaxed)
    }

    /// A client opens a connection; the NIC steers its handshake to a
    /// core's backlog. Returns the flow for diagnostics.
    ///
    /// Panics if the handshake is refused — use
    /// [`ApacheDriver::try_client_connect`] when the kernel carries a
    /// bounded-backlog overload policy.
    pub fn client_connect(&self, client_ip: u32) -> FlowHash {
        self.try_client_connect(client_ip)
            .expect("handshake refused; use try_client_connect under a bounded backlog")
    }

    /// Admission-checked connect. The driver owns the only listener
    /// (:80), so a refused handshake can mean exactly one thing: the
    /// bounded accept backlog from the kernel's [`pk_kernel::OverloadPolicy`]
    /// is full. That surfaces as [`KernelError::Overloaded`] — the
    /// typed, transient signal clients back off on — instead of a
    /// panic.
    pub fn try_client_connect(&self, client_ip: u32) -> Result<FlowHash, KernelError> {
        let port = self.next_client_port.fetch_add(1, Ordering::Relaxed);
        let flow = FlowHash {
            src_ip: client_ip,
            src_port: (1024 + (port % 60_000)) as u16,
            dst_ip: 0x0a00_0001,
            dst_port: 80,
        };
        if self.kernel.net().incoming_connection(80, flow) {
            Ok(flow)
        } else {
            Err(KernelError::Overloaded)
        }
    }

    /// The worker on `core` accepts one connection (stealing if its own
    /// backlog is empty) and serves the file: stat, open, read, close.
    ///
    /// Returns whether a connection was available, and whether it was
    /// processed entirely on its arrival core.
    pub fn serve_one(&self, core: usize) -> Option<bool> {
        let core_id = CoreId(core);
        let conn = match self.kernel.net().accept(80, core_id) {
            Some(c) => {
                self.empty_polls.store(0, Ordering::Relaxed);
                c
            }
            None => {
                // Empty backlog: back off exponentially (with jitter from
                // the fault seed) instead of hammering the accept queue.
                let attempt = self.empty_polls.fetch_add(1, Ordering::Relaxed).min(12) as u32;
                let delay =
                    self.retry
                        .delay_cycles(self.kernel.faults().seed(), core as u64, attempt);
                self.accept_backoffs.fetch_add(1, Ordering::Relaxed);
                self.accept_backoff_cycles
                    .fetch_add(delay, Ordering::Relaxed);
                return None;
            }
        };
        // Serve the file with bounded retry: injected dcache pressure or
        // allocation failure tempfails the request instead of killing
        // the worker; an exhausted budget is the live server's 5xx.
        let seed = self.kernel.faults().seed();
        let token = (u64::from(conn.flow.src_ip) << 16) ^ u64::from(conn.flow.src_port);
        let out = self
            .retry
            .run(seed, token, |_| match self.serve_file(core_id) {
                Ok(()) => Ok(Ok(())),
                Err(e) if e.is_transient() => Err(e),
                Err(e) => Ok(Err(e)),
            });
        if out.attempts > 1 {
            self.request_tempfails
                .fetch_add(u64::from(out.attempts) - 1, Ordering::Relaxed);
        }
        match out.result.and_then(|inner| inner) {
            Ok(()) => {
                // Transmit the response on this core's TX queue.
                self.kernel.net().nic().tx(core_id, conn.flow);
                self.served.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.failed_requests.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(conn.local)
    }

    /// One request body: stat, open, read from the buffer cache (§5.4),
    /// close. The open file is closed on the error path too, so the
    /// open-file accounting stays balanced under injected faults.
    fn serve_file(&self, core_id: CoreId) -> Result<(), KernelError> {
        let vfs = self.kernel.vfs();
        let st = vfs.stat(FILE_PATH, core_id)?;
        debug_assert_eq!(st.size as usize, FILE_BYTES);
        let f = vfs.open(FILE_PATH, core_id)?;
        let body = vfs.read_cached(FILE_PATH, core_id);
        vfs.close(&f, core_id);
        let body = body?;
        debug_assert_eq!(body.len(), FILE_BYTES);
        Ok(())
    }
}

/// Which Figure-6 line.
#[derive(Debug, Clone, Copy)]
pub struct ApacheModel {
    /// The kernel's fix set (any subset of the 16, for ablations).
    pub config: KernelConfig,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl ApacheModel {
    /// Creates the model for `choice`.
    pub fn new(choice: KernelChoice) -> Self {
        Self::with_config(choice.config(48))
    }

    /// Creates the model for an arbitrary fix subset.
    pub fn with_config(config: KernelConfig) -> Self {
        Self {
            config,
            machine: MachineSpec::paper(),
        }
    }

    fn total_cycles(&self) -> f64 {
        self.machine.clock_hz / REQS_PER_SEC_1CORE
    }

    /// Total request rate the card sustains with `q` queues: flat until
    /// the RX FIFO knee, then declining as overflow drops grow (§5.4).
    /// The decline is measured out to the paper's 48 queues; past that
    /// the card has no more queues to fragment its FIFO over (extra
    /// cores share queues), so the delivered rate holds at the
    /// 48-queue level instead of extrapolating below zero.
    pub fn nic_request_cap(q: usize) -> f64 {
        let q = q.min(48);
        let flat = NIC_FIFO_KNEE as f64 * REQS_PER_SEC_1CORE;
        if q <= NIC_FIFO_KNEE {
            flat
        } else {
            flat - (q - NIC_FIFO_KNEE) as f64 * 5_500.0
        }
    }
}

impl WorkloadModel for ApacheModel {
    fn name(&self) -> String {
        format!("Apache/{}", config_label(&self.config))
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        let user = t * (1.0 - KERNEL_FRACTION);
        // Stock shared demands per request (stock runs per-core
        // instances, so the accept mutex is absent; the VFS and network
        // shared lines remain). Knee ≈ 5 cores.
        let cfg = &self.config;
        let dentry_refs = demand_unless(cfg, FixId::SloppyDentryRefs, t * 0.075);
        let dcache_locks = demand_unless(cfg, FixId::LockFreeDlookup, t * 0.075);
        let open_list = demand_unless(cfg, FixId::PerCoreOpenLists, t * 0.030);
        let dst_refcount = demand_unless(cfg, FixId::SloppyDstRefs, t * 0.012);
        let proto_counters = demand_unless(cfg, FixId::SloppyProtoAccounting, t * 0.008);
        let shared = dentry_refs + dcache_locks + open_list + dst_refcount + proto_counters;
        let kernel_local = t * KERNEL_FRACTION - shared;
        // Cross-core kernel data misses. Figure 6 shows PK's per-core
        // throughput staying near the anchor through 36 cores, so the
        // CPU-side decline is kept small; the post-36 droop is the card.
        let cross_core = if cores > 1 { t * 0.06 } else { 0.0 };
        // Generation-2 growth stations: flat sloppy dentry counters
        // saturate first (every request opens the same few files), with
        // the reference walk's per-component get/put close behind.
        let dentry_ref_scale =
            demand_unless(cfg, FixId::SnziVfsRefs, gen2_demand(t, 0.000_12, cores));
        let path_walk = demand_unless(cfg, FixId::RcuPathWalk, gen2_demand(t, 0.000_06, cores));

        let mut net = Network::new();
        net.push(Station::delay("user", user, false));
        net.push(Station::delay("kernel-local", kernel_local, true));
        net.push(Station::delay("cross-core misses", cross_core, true));
        // Gen-2 stations precede the gen-1 locks in visit order so the
        // first station to saturate past ~96 cores — and therefore the
        // one that captures the collapse queue — is the gen-2 one.
        net.push(
            Station::spinlock("dentry ref saturation", dentry_ref_scale, 0.3, true)
                .with_class("vfs.dentry_ref_scale"),
        );
        net.push(
            Station::spinlock("per-component path-walk refs", path_walk, 0.25, true)
                .with_class("vfs.path_walk"),
        );
        net.push(
            Station::queue("dentry refcounts", dentry_refs, true).with_class("vfs.dentry_ref"),
        );
        net.push(
            Station::spinlock("dentry d_lock", dcache_locks, 0.4, true)
                .with_class("vfs.dentry_lock"),
        );
        net.push(Station::queue("open-file list", open_list, true).with_class("vfs.open_list"));
        net.push(
            Station::queue("dst_entry refcount", dst_refcount, true).with_class("net.dst_ref"),
        );
        net.push(
            Station::queue("proto memory counters", proto_counters, true)
                .with_class("net.proto_accounting"),
        );
        net
    }

    fn throughput_cap(&self, cores: usize) -> Option<f64> {
        Some(Self::nic_request_cap(cores))
    }
}

/// Runs the Figure-6 sweep for one kernel.
pub fn figure6(choice: KernelChoice) -> Vec<SweepPoint> {
    CoreSweep::run(&ApacheModel::new(choice))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_anchor() {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let p = CoreSweep::point(&ApacheModel::new(choice), 1);
            let err = (p.per_core_per_sec - REQS_PER_SEC_1CORE).abs() / REQS_PER_SEC_1CORE;
            assert!(err < 0.01, "{choice:?}: {}", p.per_core_per_sec);
        }
    }

    #[test]
    fn figure6_shapes() {
        let stock = figure6(KernelChoice::Stock);
        let pk = figure6(KernelChoice::Pk);
        let ratio = |s: &[SweepPoint]| s.last().unwrap().per_core_per_sec / s[0].per_core_per_sec;
        assert!(ratio(&stock) < 0.2, "stock collapses: {}", ratio(&stock));
        let pk_ratio = ratio(&pk);
        assert!(
            (0.4..0.75).contains(&pk_ratio),
            "PK ratio ≈0.5–0.6 (NIC-bound): {pk_ratio}"
        );
        // PK total throughput peaks at the FIFO knee and then declines.
        let peak = pk
            .iter()
            .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
            .unwrap();
        assert!(
            (32..=40).contains(&peak.cores),
            "PK total peaks near 36: {}",
            peak.cores
        );
        assert!(pk.last().unwrap().hw_capped);
        // "Lack of work causes the server idle time to reach 18% at 48
        // cores." Our counterfactual uncapped throughput is optimistic
        // (the model's CPU side barely declines), so the band is wide.
        let idle = pk.last().unwrap().idle_fraction;
        assert!(
            (0.10..0.45).contains(&idle),
            "significant idle at 48: {idle}"
        );
        let total_at =
            |s: &[SweepPoint], n: usize| s.iter().find(|p| p.cores == n).unwrap().total_per_sec;
        assert!(
            total_at(&pk, 48) < total_at(&pk, 36),
            "past 36 the card drops requests"
        );
    }

    #[test]
    fn driver_serves_connections_locally_on_pk() {
        let d = ApacheDriver::new(KernelChoice::Pk, 4);
        let mut flows = Vec::new();
        for i in 0..40 {
            flows.push(d.client_connect(0x0b00_0000 + i));
        }
        let mut local = 0;
        let mut total = 0;
        // Workers serve round-robin, as live Apache processes would —
        // each core drains its own backlog before stealing kicks in.
        loop {
            let mut progress = false;
            for core in 0..4 {
                if let Some(was_local) = d.serve_one(core) {
                    progress = true;
                    total += 1;
                    if was_local {
                        local += 1;
                    }
                }
            }
            if !progress {
                break;
            }
        }
        assert_eq!(total, 40);
        assert_eq!(d.served(), 40);
        assert!(
            local >= 30,
            "most connections served on their arrival core: {local}/40"
        );
    }

    #[test]
    fn empty_accept_polls_back_off_deterministically() {
        let d = ApacheDriver::new(KernelChoice::Pk, 2);
        // No connections queued: every poll backs off, exponentially.
        for _ in 0..4 {
            assert!(d.serve_one(0).is_none());
        }
        assert_eq!(d.accept_backoffs(), 4);
        let first = d.accept_backoff_cycles();
        assert!(first > 0);
        // Work resets the backoff ladder.
        d.client_connect(0x0d00_0001);
        assert!(d.serve_one(0).is_some());
        assert!(d.serve_one(0).is_none());
        assert_eq!(d.accept_backoffs(), 5);
        // A fresh driver replays the identical backoff schedule (jitter
        // derives from the fault seed, not wall-clock state).
        let d2 = ApacheDriver::new(KernelChoice::Pk, 2);
        for _ in 0..4 {
            assert!(d2.serve_one(0).is_none());
        }
        assert_eq!(d2.accept_backoff_cycles(), first);
    }

    #[test]
    fn bounded_backlog_surfaces_typed_overload() {
        use pk_kernel::{OverloadPolicy, ShedPolicy};
        let config = KernelChoice::Pk
            .config(2)
            .with_overload(OverloadPolicy::shedding(3, ShedPolicy::DropNewest, 0));
        let d = ApacheDriver::with_config_and_faults(config, Arc::new(FaultPlane::disabled()));
        // The cap admits exactly three handshakes, then refuses with a
        // typed, transient error rather than an assert.
        for i in 0..3 {
            d.try_client_connect(0x0e00_0000 + i).unwrap();
        }
        let refused = d.try_client_connect(0x0e00_0003).unwrap_err();
        assert_eq!(refused, KernelError::Overloaded);
        assert!(refused.is_transient(), "clients back off and retry");
        // Serving one request drains a slot; admission reopens.
        assert!(d.serve_one(0).is_some() || d.serve_one(1).is_some());
        d.try_client_connect(0x0e00_0004).unwrap();
    }

    #[test]
    fn driver_stock_serializes_on_shared_backlog() {
        let d = ApacheDriver::new(KernelChoice::Stock, 4);
        for i in 0..8 {
            d.client_connect(0x0c00_0000 + i);
        }
        for core in 0..4 {
            while d.serve_one(core).is_some() {}
        }
        let stats = d.kernel().net().stats();
        assert_eq!(stats.accept_shared_queue.load(Ordering::Relaxed), 8);
        assert_eq!(stats.accept_local_queue.load(Ordering::Relaxed), 0);
    }
}
