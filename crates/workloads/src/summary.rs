//! Cross-application summaries: Figure 3 and Figure 12.

use crate::common::KernelChoice;
use crate::{apache, exim, gmake, memcached, metis, pedsort, postgres, roster};
use pk_sim::{CoreSweep, MachineSpec, WorkloadModel};

/// One Figure-3 bar pair: per-core throughput at 48 cores relative to
/// one core, before and after the modifications.
#[derive(Debug, Clone)]
pub struct Figure3Bar {
    /// Application name.
    pub app: &'static str,
    /// Stock ratio (the "before" bar).
    pub stock: f64,
    /// PK ratio (the "after" bar).
    pub pk: f64,
}

/// Computes every Figure-3 bar.
///
/// "Before" and "after" follow the paper's pairings: pedsort's before is
/// the threaded version and its after the round-robin process version
/// (both on stock — the fix was in the application); Metis pairs 4 KB
/// stock against 2 MB PK.
pub fn figure3(max_cores: usize) -> Vec<Figure3Bar> {
    let ratio = |m: &dyn WorkloadModel| CoreSweep::figure3_ratio(m, max_cores);
    vec![
        Figure3Bar {
            app: "Exim",
            stock: ratio(&exim::EximModel::new(KernelChoice::Stock)),
            pk: ratio(&exim::EximModel::new(KernelChoice::Pk)),
        },
        Figure3Bar {
            app: "memcached",
            stock: ratio(&memcached::MemcachedModel::new(KernelChoice::Stock)),
            pk: ratio(&memcached::MemcachedModel::new(KernelChoice::Pk)),
        },
        Figure3Bar {
            app: "Apache",
            stock: ratio(&apache::ApacheModel::new(KernelChoice::Stock)),
            pk: ratio(&apache::ApacheModel::new(KernelChoice::Pk)),
        },
        Figure3Bar {
            app: "PostgreSQL",
            stock: ratio(&postgres::PostgresModel::new(
                postgres::PgVariant::Stock,
                true,
            )),
            pk: ratio(&postgres::PostgresModel::new(
                postgres::PgVariant::PkModPg,
                true,
            )),
        },
        Figure3Bar {
            app: "gmake",
            stock: ratio(&gmake::GmakeModel::new(KernelChoice::Stock)),
            pk: ratio(&gmake::GmakeModel::new(KernelChoice::Pk)),
        },
        Figure3Bar {
            app: "pedsort",
            stock: ratio(&pedsort::PedsortModel::new(
                pedsort::PedsortVariant::Threads,
            )),
            pk: ratio(&pedsort::PedsortModel::new(
                pedsort::PedsortVariant::ProcsRoundRobin,
            )),
        },
        Figure3Bar {
            app: "Metis",
            stock: ratio(&metis::MetisModel::new(
                metis::MetisVariant::StockSmallPages,
            )),
            pk: ratio(&metis::MetisModel::new(metis::MetisVariant::PkSuperPages)),
        },
    ]
}

/// [`figure3`] on an arbitrary machine topology — the §7 "past 48
/// cores" axis. The before/after pairings come from the roster's
/// `KernelChoice` mapping, which encodes exactly the Figure-3 pairs
/// (threaded vs. round-robin pedsort, 4 KB vs. 2 MB Metis, stock vs.
/// modified PostgreSQL), so at the paper machine this agrees with
/// [`figure3`] bar for bar.
pub fn figure3_on(max_cores: usize, machine: MachineSpec) -> Vec<Figure3Bar> {
    const PRETTY: [&str; 7] = [
        "Exim",
        "memcached",
        "Apache",
        "PostgreSQL",
        "gmake",
        "pedsort",
        "Metis",
    ];
    roster::NAMES
        .iter()
        .zip(PRETTY)
        .map(|(name, app)| {
            let ratio = |choice| {
                let m = roster::model_on(name, choice, machine).expect("roster name resolves");
                CoreSweep::figure3_ratio(m.as_ref(), max_cores)
            };
            Figure3Bar {
                app,
                stock: ratio(KernelChoice::Stock),
                pk: ratio(KernelChoice::Pk),
            }
        })
        .collect()
}

/// Whether a residual bottleneck is hardware or application structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottleneckKind {
    /// Shared hardware (NIC, DRAM, caches).
    Hardware,
    /// Application-internal structure.
    Application,
}

/// One Figure-12 row: the bottleneck that remains at 48 cores on the
/// best configuration.
#[derive(Debug, Clone)]
pub struct Figure12Row {
    /// Application name.
    pub app: &'static str,
    /// HW or App.
    pub kind: BottleneckKind,
    /// Description (the Figure-12 wording).
    pub description: &'static str,
    /// What the model reports as the 48-core limiter (diagnostic).
    pub observed: String,
}

/// Derives Figure 12 from the models' own 48-core diagnostics.
pub fn figure12() -> Vec<Figure12Row> {
    let at48 = |m: &dyn WorkloadModel| CoreSweep::point(m, 48);

    let exim = at48(&exim::EximModel::new(KernelChoice::Pk));
    let memcached = at48(&memcached::MemcachedModel::new(KernelChoice::Pk));
    let apache = at48(&apache::ApacheModel::new(KernelChoice::Pk));
    let postgres = at48(&postgres::PostgresModel::new(
        postgres::PgVariant::PkModPg,
        true,
    ));
    let gmake = at48(&gmake::GmakeModel::new(KernelChoice::Pk));
    let pedsort = at48(&pedsort::PedsortModel::new(
        pedsort::PedsortVariant::ProcsRoundRobin,
    ));
    let metis = at48(&metis::MetisModel::new(metis::MetisVariant::PkSuperPages));

    let describe = |p: &pk_sim::SweepPoint| {
        if p.hw_capped {
            format!("hardware cap binds ({} uncapped)", p.bottleneck)
        } else {
            p.bottleneck.to_string()
        }
    };

    vec![
        Figure12Row {
            app: "Exim",
            kind: BottleneckKind::Application,
            description: "App: Contention on spool directories",
            observed: describe(&exim),
        },
        Figure12Row {
            app: "memcached",
            kind: BottleneckKind::Hardware,
            description: "HW: Transmit queues on NIC",
            observed: describe(&memcached),
        },
        Figure12Row {
            app: "Apache",
            kind: BottleneckKind::Hardware,
            description: "HW: Receive queues on NIC",
            observed: describe(&apache),
        },
        Figure12Row {
            app: "PostgreSQL",
            kind: BottleneckKind::Application,
            description: "App: Application-level spin lock",
            observed: describe(&postgres),
        },
        Figure12Row {
            app: "gmake",
            kind: BottleneckKind::Application,
            description: "App: Serial stages and stragglers",
            observed: describe(&gmake),
        },
        Figure12Row {
            app: "pedsort",
            kind: BottleneckKind::Hardware,
            description: "HW: Cache capacity",
            observed: describe(&pedsort),
        },
        Figure12Row {
            app: "Metis",
            kind: BottleneckKind::Hardware,
            description: "HW: DRAM throughput",
            observed: describe(&metis),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_pk_beats_stock_everywhere_but_gmake() {
        let bars = figure3(48);
        assert_eq!(bars.len(), 7);
        for b in &bars {
            assert!(b.pk > 0.0 && b.stock > 0.0);
            assert!(b.pk <= 1.05, "{}: nothing scales past perfect", b.app);
            if b.app == "gmake" {
                // gmake already scaled well; stock ≈ PK.
                assert!((b.pk - b.stock).abs() / b.stock < 0.02, "{b:?}");
            } else {
                assert!(b.pk > b.stock, "{}: PK must improve", b.app);
            }
        }
        // Exim, gmake, and pedsort are the strong scalers (bars ≈0.73–0.8
        // in Figure 3); the network- and memory-bound apps trail.
        let pk_of = |app: &str| bars.iter().find(|b| b.app == app).unwrap().pk;
        for app in ["Exim", "gmake", "pedsort"] {
            assert!(pk_of(app) > 0.65, "{app}: {}", pk_of(app));
        }
        for app in ["memcached", "Apache", "PostgreSQL", "Metis"] {
            assert!(pk_of(app) < pk_of("gmake"), "{app} should trail gmake");
        }
    }

    #[test]
    fn figure12_matches_paper_attribution() {
        let rows = figure12();
        assert_eq!(rows.len(), 7);
        let hw = rows
            .iter()
            .filter(|r| r.kind == BottleneckKind::Hardware)
            .count();
        assert_eq!(hw, 4, "memcached, Apache, pedsort, Metis are HW-bound");
        // The NIC-bound apps are actually capped in the model.
        for app in ["memcached", "Apache", "Metis"] {
            let row = rows.iter().find(|r| r.app == app).unwrap();
            assert!(
                row.observed.contains("hardware cap"),
                "{app}: {}",
                row.observed
            );
        }
        // None of the PK rows blames a kernel lock.
        for r in &rows {
            assert!(
                !r.observed.contains("vfsmount") && !r.observed.contains("lseek"),
                "{}: kernel bottleneck survived PK: {}",
                r.app,
                r.observed
            );
        }
    }
}
