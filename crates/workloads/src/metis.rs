//! The Metis MapReduce workload (§3.7, §5.8, Figure 11).
//!
//! Metis builds an inverted index from a 2 GB in-memory file, allocating
//! large intermediate tables with mmap and faulting them in on first
//! touch. Two configurations, as in Figure 11:
//!
//! * **Stock + 4 KB pages** — every soft fault read-locks the region
//!   list, and "acquiring it even in read mode involves modifying shared
//!   lock state," so the lock word itself bottlenecks the map phase.
//! * **PK + 2 MB pages** — super-pages cut the fault count 512×, each
//!   super-page mapping gets its own mutex, and zeroing uses non-caching
//!   stores. "The time spent in the kernel becomes negligible and Metis'
//!   scalability is limited primarily by the DRAM bandwidth required by
//!   the reduce phase" (50.0 of 51.5 GB/s at 48 cores).

use crate::common::{demand_unless, gen2_demand, KernelChoice};
use pk_fault::FaultPlane;
use pk_kernel::{FixId, Kernel, KernelConfig, KernelError};
use pk_mapreduce::{InvertedIndex, MapReduce, MapReduceConfig, MemoryHook};
use pk_mm::PageSize;
use pk_sim::{CoreSweep, DramModel, MachineSpec, Network, Station, SweepPoint, WorkloadModel};
use std::sync::Arc;

/// Input size (§5.8).
pub const INPUT_BYTES: u64 = 2 << 30;

/// Single-core throughput anchor with 4 KB pages, jobs/hour (Figure 11).
pub const JOBS_PER_HOUR_1CORE_4K: f64 = 30.0;
/// Single-core anchor with 2 MB pages (super-pages win even at 1 core).
pub const JOBS_PER_HOUR_1CORE_2M: f64 = 33.0;
/// Effective DRAM traffic per job, calibrated so the reduce phase hits
/// the 51.5 GB/s ceiling at 48 cores exactly where Figure 11 flattens.
pub const DRAM_BYTES_PER_JOB: f64 = 172e9;

/// The two Figure-11 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetisVariant {
    /// Stock kernel, 4 KB pages.
    StockSmallPages,
    /// PK kernel, 2 MB super-pages via hugetlbfs.
    PkSuperPages,
}

impl MetisVariant {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::StockSmallPages => "Stock + 4KB pages",
            Self::PkSuperPages => "PK + 2MB pages",
        }
    }

    /// The kernel this variant runs on.
    pub fn kernel(self) -> KernelChoice {
        match self {
            Self::StockSmallPages => KernelChoice::Stock,
            Self::PkSuperPages => KernelChoice::Pk,
        }
    }

    /// The page size used for table memory.
    pub fn page_size(self) -> PageSize {
        match self {
            Self::StockSmallPages => PageSize::Base4K,
            Self::PkSuperPages => PageSize::Super2M,
        }
    }
}

/// Functional driver: a real inverted-index MapReduce run whose table
/// memory faults through the kernel's mm substrate.
#[derive(Debug)]
pub struct MetisDriver {
    kernel: Kernel,
    variant: MetisVariant,
}

impl MetisDriver {
    /// Boots the variant's kernel.
    pub fn new(variant: MetisVariant, cores: usize) -> Self {
        Self::with_faults(variant, cores, Arc::new(FaultPlane::disabled()))
    }

    /// Like [`MetisDriver::new`], with every substrate wired to `faults`.
    pub fn with_faults(variant: MetisVariant, cores: usize, faults: Arc<FaultPlane>) -> Self {
        Self {
            kernel: Kernel::with_faults(variant.kernel().config(cores), faults),
            variant,
        }
    }

    /// Returns the kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Builds an inverted index over `docs` with `workers` workers,
    /// charging table memory through the mm substrate. Returns the
    /// number of distinct terms, or a typed (transient) error when the
    /// table memory's page faults hit allocation failure.
    pub fn run_job(&self, docs: &[String], workers: usize) -> Result<usize, KernelError> {
        let mr = MapReduce::new(MapReduceConfig {
            workers,
            memory: Some(MemoryHook {
                space: self.kernel.new_address_space(),
                page_size: self.variant.page_size(),
                bytes_per_pair: 64,
            }),
        });
        Ok(mr.run(&InvertedIndex, docs)?.len())
    }
}

/// Figure-11 performance model.
#[derive(Debug, Clone, Copy)]
pub struct MetisModel {
    /// Which line.
    pub variant: MetisVariant,
    /// When set, kernel demands derive from this fix subset instead of
    /// the variant pairing (the adaptive axis). The application side is
    /// always the 2 MB-page Metis — with the super-page kernel fixes
    /// *off*, its faults contend on the single super-page allocation
    /// mutex and cache-polluting zeroing until the fixes are promoted.
    pub config: Option<KernelConfig>,
    /// The modelled machine.
    pub machine: MachineSpec,
}

impl MetisModel {
    /// Creates the model.
    pub fn new(variant: MetisVariant) -> Self {
        Self {
            variant,
            config: None,
            machine: MachineSpec::paper(),
        }
    }

    /// Creates the model for an arbitrary kernel fix subset, paired with
    /// the 2 MB-page Metis (the paper's PK application pairing).
    pub fn with_config(config: KernelConfig) -> Self {
        Self {
            variant: MetisVariant::PkSuperPages,
            config: Some(config),
            machine: MachineSpec::paper(),
        }
    }

    fn total_cycles(&self) -> f64 {
        let anchor = match self.variant {
            MetisVariant::StockSmallPages => JOBS_PER_HOUR_1CORE_4K,
            MetisVariant::PkSuperPages => JOBS_PER_HOUR_1CORE_2M,
        };
        self.machine.clock_hz * 3600.0 / anchor
    }
}

impl WorkloadModel for MetisModel {
    fn name(&self) -> String {
        match &self.config {
            Some(cfg) => format!("Metis/2MB pages + {}", crate::common::config_label(cfg)),
            None => format!("Metis/{}", self.variant.label()),
        }
    }

    fn machine(&self) -> MachineSpec {
        self.machine
    }

    fn network(&self, cores: usize) -> Network {
        let t = self.total_cycles();
        // Generation-2 growth station: table allocation frees and
        // refills through the global page freelist; even with super-page
        // faults fixed, the freelist lock is the collapse at 1024.
        let g = gen2_demand(t, 0.000_08, cores);
        let mut net = Network::new();
        if let Some(cfg) = &self.config {
            // 2 MB pages on an arbitrary kernel: until the super-page
            // fixes land, every super-page fault funnels through one
            // allocation mutex and zeroes 2 MB through the cache,
            // evicting every core's working set (§4.5). Promoting
            // SuperPageFineLocking gives each mapping its own mutex;
            // NoCacheSuperPageZeroing moves the zeroing off the caches.
            let super_mutex = demand_unless(cfg, FixId::SuperPageFineLocking, t * 0.040);
            let zeroing = demand_unless(cfg, FixId::NoCacheSuperPageZeroing, t * 0.012);
            let fault_local = t * 0.0015;
            let user = t - super_mutex - zeroing - fault_local;
            net.push(Station::delay("map/reduce (user)", user, false));
            net.push(Station::delay("fault handling", fault_local, true));
            // Gen-2 station first in visit order: past ~96 cores it is
            // the first to saturate and captures the collapse queue.
            net.push(
                Station::spinlock(
                    "global page freelist",
                    demand_unless(cfg, FixId::PerSocketPageFreelists, g),
                    0.25,
                    true,
                )
                .with_class("mm.page_freelist"),
            );
            net.push(
                Station::queue("super-page alloc mutex", super_mutex, true)
                    .with_class("mm.super_page_mutex"),
            );
            net.push(
                Station::queue("super-page zeroing", zeroing, true)
                    .with_class("mm.super_page_zeroing"),
            );
            return net;
        }
        match self.variant {
            MetisVariant::StockSmallPages => {
                // ~524k soft faults per job; the shared region-list lock
                // word costs a coherence transaction per fault even in
                // read mode. Sized so the per-core decline matches the
                // figure (knee ≈ 17 cores, ratio ≈ 0.35 at 48).
                let region_lock = t * 0.0595;
                let fault_local = t * 0.006; // local fault handling
                let user = t - region_lock - fault_local;
                net.push(Station::delay("map/reduce (user)", user, false));
                net.push(Station::delay("fault handling", fault_local, true));
                // Gen-2 station first in visit order (see above).
                net.push(
                    Station::spinlock("global page freelist", g, 0.25, true)
                        .with_class("mm.page_freelist"),
                );
                // The rw-semaphore's shared lock word serializes (reader
                // counter updates are fair handoffs, so the station
                // saturates without collapsing).
                net.push(Station::queue("region-list lock word", region_lock, true));
            }
            MetisVariant::PkSuperPages => {
                // 512× fewer faults behind per-mapping mutexes: kernel
                // time "becomes negligible."
                let fault_local = t * 0.0015;
                let user = t - fault_local;
                net.push(Station::delay("map/reduce (user)", user, false));
                net.push(Station::delay("fault handling", fault_local, true));
            }
        }
        net
    }

    fn throughput_cap(&self, _cores: usize) -> Option<f64> {
        match self.variant {
            // The stock configuration never gets near DRAM bandwidth.
            MetisVariant::StockSmallPages => None,
            // The 2 MB-page application (variant pairing or config axis)
            // is DRAM-bound once kernel time is out of the way.
            MetisVariant::PkSuperPages => {
                Some(DramModel::new(self.machine).max_ops_per_sec(DRAM_BYTES_PER_JOB))
            }
        }
    }
}

/// Runs the Figure-11 sweep for one variant.
pub fn figure11(variant: MetisVariant) -> Vec<SweepPoint> {
    CoreSweep::run(&MetisModel::new(variant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn one_core_anchors() {
        let small = CoreSweep::point(&MetisModel::new(MetisVariant::StockSmallPages), 1);
        let big = CoreSweep::point(&MetisModel::new(MetisVariant::PkSuperPages), 1);
        assert!((small.per_core_per_sec * 3600.0 - 30.0).abs() < 0.3);
        assert!((big.per_core_per_sec * 3600.0 - 33.0).abs() < 0.4);
        assert!(big.per_core_per_sec > small.per_core_per_sec);
    }

    #[test]
    fn figure11_shapes() {
        let small = figure11(MetisVariant::StockSmallPages);
        let big = figure11(MetisVariant::PkSuperPages);
        let ratio = |s: &[SweepPoint]| s.last().unwrap().per_core_per_sec / s[0].per_core_per_sec;
        assert!(
            (0.2..0.5).contains(&ratio(&small)),
            "4 KB declines to ≈0.35: {}",
            ratio(&small)
        );
        assert!(
            (0.55..0.85).contains(&ratio(&big)),
            "2 MB holds ≈0.66: {}",
            ratio(&big)
        );
        // Super-pages make kernel time negligible.
        assert!(big.last().unwrap().system_usec < 0.01 * big.last().unwrap().user_usec);
        // 4 KB kernel time grows with cores.
        assert!(small.last().unwrap().system_usec > 3.0 * small[0].system_usec);
        // The 2 MB line is DRAM-capped at 48 cores.
        assert!(big.last().unwrap().hw_capped);
        assert!(!big[0].hw_capped, "not capped at 1 core");
    }

    #[test]
    fn driver_fault_counts_differ_by_512x_per_byte() {
        let docs: Vec<String> = (0..8)
            .map(|i| format!("{i}\tthe quick brown fox {i} jumps over lazy dogs"))
            .collect();
        let small = MetisDriver::new(MetisVariant::StockSmallPages, 2);
        let terms = small.run_job(&docs, 2).unwrap();
        assert!(terms >= 8);
        let faults_4k = small.kernel().mm_stats().faults_4k.load(Ordering::Relaxed);
        assert!(faults_4k > 0);

        let big = MetisDriver::new(MetisVariant::PkSuperPages, 2);
        let terms2 = big.run_job(&docs, 2).unwrap();
        assert_eq!(terms, terms2, "page size never changes results");
        let faults_2m = big.kernel().mm_stats().faults_2m.load(Ordering::Relaxed);
        assert!(faults_2m <= faults_4k);
        // PK zeroes super-pages with non-caching stores.
        assert!(
            big.kernel()
                .mm_stats()
                .nocache_zero_bytes
                .load(Ordering::Relaxed)
                > 0
        );
    }
}
