//! Bounded admission with typed rejection and deadline-aware serving.
//!
//! [`AdmissionQueue`] is the functional-path twin of the DES engine's
//! admission bound: a counting semaphore whose slots are RAII guards,
//! so a request can never leak its slot — not on success, not on
//! error, and (the case the `exhausted-deadline` chaos row pins) not
//! when it times out mid-retry.
//!
//! [`serve_with_deadline`] composes the queue with `pk-fault`'s
//! deadline-aware retry: transient errors are retried under the
//! request's remaining SLO budget, and a request that runs out of
//! budget surfaces [`KernelError::Timeout`] — *not* the last transient
//! error, because "EAGAIN" tells the caller to retry and retrying a
//! dead request is exactly the retry amplification overload control
//! exists to stop.

use pk_fault::RetryPolicy;
use pk_kernel::KernelError;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A bounded admission queue: at most `cap` requests hold slots at
/// once; the rest are refused with [`KernelError::Overloaded`].
#[derive(Debug)]
pub struct AdmissionQueue {
    cap: u32,
    depth: AtomicU32,
    rejected: AtomicU64,
    admitted: AtomicU64,
}

impl AdmissionQueue {
    /// A queue admitting at most `cap` concurrent requests (`cap` of 0
    /// admits nothing — a drain/maintenance mode).
    pub fn new(cap: u32) -> Self {
        Self {
            cap,
            depth: AtomicU32::new(0),
            rejected: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Tries to take a slot. The returned guard releases it on drop —
    /// every exit path (success, error, timeout, panic-unwind)
    /// uncharges exactly once.
    pub fn admit(&self) -> Result<SlotGuard<'_>, KernelError> {
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(KernelError::Overloaded);
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(SlotGuard { queue: self });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Requests currently holding slots.
    pub fn depth(&self) -> u32 {
        self.depth.load(Ordering::Acquire)
    }

    /// Requests refused at admission.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests admitted since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }
}

/// An admission slot, held for the lifetime of one request.
#[derive(Debug)]
pub struct SlotGuard<'a> {
    queue: &'a AdmissionQueue,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.queue.depth.fetch_sub(1, Ordering::Release);
    }
}

/// Serves one request through `queue` under a deadline: admit (or
/// refuse with [`KernelError::Overloaded`]), then run `op` with
/// transient-error retries whose accumulated backoff may not exceed
/// `budget_cycles`.
///
/// Between admission and return the thread carries the request's
/// causal context ([`pk_trace::RequestScope`], id
/// `request_id(seed, token, 0)`): kernel hooks under `op` can
/// attribute to it via `pk_trace::current_request()`, and a worker
/// that reuses its slot without closing the previous request trips the
/// ctx-leak detector (DESIGN.md §15 — the propagation rule is one
/// active context per thread, never leaked across requests).
///
/// Error contract, in priority order:
/// * queue full → `Err(Overloaded)`, nothing charged;
/// * budget exhausted mid-retry → `Err(Timeout)` (the last transient
///   error is deliberately *not* surfaced — it would invite a retry
///   the deadline already disallowed);
/// * attempts exhausted inside budget → the last error, verbatim;
/// * permanent error → surfaced immediately, no retry.
///
/// The admission slot is released on every path.
pub fn serve_with_deadline<T>(
    queue: &AdmissionQueue,
    retry: RetryPolicy,
    seed: u64,
    token: u64,
    budget_cycles: u64,
    mut op: impl FnMut(u32) -> Result<T, KernelError>,
) -> Result<T, KernelError> {
    let _slot = queue.admit()?;
    // Declared after the slot: the context closes before the slot
    // frees, so no event can land outside the request's admission.
    let _scope = pk_trace::RequestScope::enter(pk_trace::request_id(seed, token, 0));
    let d = retry.run_within(seed, token, budget_cycles, |attempt| match op(attempt) {
        Ok(v) => Ok(Ok(v)),
        Err(e) if e.is_transient() => Err(e),
        // Permanent errors stop the retry loop via the Ok channel.
        Err(e) => Ok(Err(e)),
    });
    if d.deadline_exhausted {
        return Err(KernelError::Timeout);
    }
    match d.outcome.result {
        Ok(inner) => inner,
        Err(e) => Err(e),
    }
    // `_slot` drops here: the slot is uncharged whether the request
    // succeeded, errored, or timed out.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_net::NetError;

    #[test]
    fn admission_is_bounded_and_raii_released() {
        let q = AdmissionQueue::new(2);
        let a = q.admit().unwrap();
        let b = q.admit().unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.admit().unwrap_err(), KernelError::Overloaded);
        assert_eq!(q.rejected(), 1);
        drop(a);
        let c = q.admit().unwrap();
        drop(b);
        drop(c);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.admitted(), 3);
    }

    #[test]
    fn deadline_exhaustion_surfaces_timeout_and_uncharges() {
        let q = AdmissionQueue::new(4);
        // Every attempt fails transiently; the budget is smaller than
        // the first backoff, so the deadline fires with attempts left.
        let out = serve_with_deadline(&q, RetryPolicy::DEFAULT, 42, 7, 10, |_| {
            Err::<(), _>(KernelError::Net(NetError::Backpressure))
        });
        assert_eq!(
            out.unwrap_err(),
            KernelError::Timeout,
            "a dead request must not surface its last transient error"
        );
        assert_eq!(q.depth(), 0, "the slot must be uncharged");
    }

    #[test]
    fn attempts_exhausted_inside_budget_keep_the_last_error() {
        let q = AdmissionQueue::new(4);
        let out = serve_with_deadline(&q, RetryPolicy::DEFAULT, 42, 7, u64::MAX, |_| {
            Err::<(), _>(KernelError::Net(NetError::Backpressure))
        });
        assert_eq!(out.unwrap_err(), KernelError::Net(NetError::Backpressure));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn permanent_errors_bypass_retry() {
        let q = AdmissionQueue::new(4);
        let mut calls = 0;
        let out = serve_with_deadline(&q, RetryPolicy::DEFAULT, 42, 7, u64::MAX, |_| {
            calls += 1;
            Err::<(), _>(KernelError::NoSuchProcFile)
        });
        assert_eq!(out.unwrap_err(), KernelError::NoSuchProcFile);
        assert_eq!(calls, 1, "permanent errors must not be retried");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn transient_recovery_succeeds_within_budget() {
        let q = AdmissionQueue::new(4);
        let out = serve_with_deadline(&q, RetryPolicy::DEFAULT, 42, 7, u64::MAX, |a| {
            if a < 2 {
                Err(KernelError::Net(NetError::Backpressure))
            } else {
                Ok(a)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn request_context_is_pinned_during_service_and_cleared_after() {
        let q = AdmissionQueue::new(1);
        let seed = 42;
        let token = 11;
        let expect = pk_trace::request_id(seed, token, 0);
        let out = serve_with_deadline(&q, RetryPolicy::DEFAULT, seed, token, u64::MAX, |_| {
            Ok(pk_trace::current_request())
        });
        assert_eq!(out.unwrap(), expect, "op must see its request context");
        assert_eq!(
            pk_trace::current_request(),
            0,
            "context must not outlive the request"
        );
    }

    #[test]
    // Under trace-off RequestScope is a ZST and forget is a no-op drop;
    // the test only asserts anything with tracing compiled in.
    #[allow(clippy::forget_non_drop)]
    fn leaked_context_across_slot_reuse_is_caught() {
        // A buggy worker admits a request, then loses track of its
        // scope (here: forgets it) and reuses the slot for the next
        // request. The next serve must catch the stale context — count
        // the leak, supersede the id — rather than silently
        // misattributing the new request's events to the old one.
        let q = AdmissionQueue::new(1);
        let before = pk_trace::ctx_leaks();
        let stale = pk_trace::RequestScope::enter(pk_trace::request_id(42, 1, 0));
        std::mem::forget(stale);
        let seen = serve_with_deadline(&q, RetryPolicy::DEFAULT, 42, 2, u64::MAX, |_| {
            Ok(pk_trace::current_request())
        })
        .unwrap();
        assert_eq!(
            pk_trace::ctx_leaks(),
            before + 1,
            "the leak must be counted"
        );
        assert_eq!(
            seen,
            pk_trace::request_id(42, 2, 0),
            "the new request must win the thread-local"
        );
        assert_eq!(pk_trace::current_request(), 0);
    }

    #[test]
    fn full_queue_rejects_without_charging() {
        let q = AdmissionQueue::new(0);
        let out = serve_with_deadline(&q, RetryPolicy::DEFAULT, 42, 7, 0, |_| Ok(1));
        assert_eq!(out.unwrap_err(), KernelError::Overloaded);
        assert_eq!(q.depth(), 0);
    }
}
