//! The open-loop serving layer: live traffic for the roster's three
//! server workloads.
//!
//! Everything below `pk-serve` measures *throughput*: closed loops
//! where every core always has its next operation ready. This crate
//! turns the serving workloads — Exim, memcached, Apache (§5 of the
//! paper) — into *servers*: a seeded arrival process
//! ([`pk_sim::ArrivalPattern`]) offers requests from a population of
//! millions of distinct simulated users ([`pk_sim::ClientMix`]), the
//! kernel's [`pk_kernel::OverloadPolicy`] decides what to admit, shed,
//! cancel, or degrade, and every completion lands in a `pk-obs` latency
//! histogram with p50/p99/p999 and SLO-violation accounting.
//!
//! Each workload's serving personality lives in [`ServingSpec`]:
//! arrival shape, client mix (churn, slow clients), the graceful
//! degradation hook the real server would reach for (memcached
//! stale-ok reads, Apache shrinking keepalive, Exim deferring
//! non-essential work), and its SLO budget as a multiple of the PK
//! kernel's healthy request time. [`run_serving`] assembles the run;
//! `pk-bench --bin latency_report` sweeps the
//! {stock, PK} × {no-shed, shed} × {normal, 2× overload} grid and
//! asserts the stock-vs-PK tail inversion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;

pub use admission::{serve_with_deadline, AdmissionQueue, SlotGuard};

use pk_fault::FaultPlane;
use pk_kernel::{OverloadPolicy, ShedPolicy};
use pk_sim::{
    simulate_flow, simulate_open_with_faults, ArrivalPattern, ClientMix, Network, OpenLoopResult,
};
use pk_trace::Tracer;
use pk_workloads::{roster, KernelChoice};

/// The serving subset of the roster: workloads whose real-world shape
/// is a network server with latency SLOs, not a batch job.
pub use pk_workloads::roster::SERVING;

/// How one workload behaves as a live server.
#[derive(Debug, Clone, Copy)]
pub struct ServingSpec {
    /// Roster name (`exim`, `memcached`, `apache`).
    pub workload: &'static str,
    /// Arrival shape at 1.0× load; scaled by the run's load factor.
    /// The mean interarrival here is a placeholder of 1.0 — it is
    /// re-anchored to the machine's capacity by [`run_serving`].
    pub pattern_kind: PatternKind,
    /// The client population behind the traffic.
    pub clients: ClientMix,
    /// What the server gives up under pressure (report label).
    pub degrade_label: &'static str,
    /// Service demand charged while degraded, percent.
    pub degrade_demand_pct: u8,
    /// Slow-client stall charged while degraded, percent.
    pub degrade_stall_pct: u8,
    /// SLO budget as a multiple of the PK kernel's mean closed-loop
    /// request time at the target core count.
    pub slo_multiple: u32,
}

/// Which arrival process a serving spec uses (rates are anchored to
/// measured capacity at run time, so the spec only picks the shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Memoryless arrivals.
    Poisson,
    /// Bursty on/off traffic (duty cycle 1/4, bursts of ~1/8 of the
    /// run horizon).
    OnOff,
    /// Day/night alternation: peak phases at 1.5× the anchor rate,
    /// troughs at 0.5×.
    Diurnal,
}

impl ServingSpec {
    /// The serving personality for `workload`; `None` for batch
    /// workloads that have no serving shape.
    pub fn for_workload(workload: &str) -> Option<Self> {
        match workload.to_ascii_lowercase().as_str() {
            // One message per SMTP connection: churn on every request.
            // Under pressure Exim defers non-essential per-message work
            // (verbose logging, immediate fsync) — a demand cut.
            "exim" => Some(Self {
                workload: "exim",
                pattern_kind: PatternKind::Diurnal,
                clients: ClientMix {
                    population: 1_000_000,
                    mean_session_requests: 1,
                    connect_cycles: 3_000,
                    slow_per_mille: 10,
                    stall_cycles: 20_000,
                },
                degrade_label: "defer-fsync",
                degrade_demand_pct: 80,
                degrade_stall_pct: 100,
                slo_multiple: 8,
            }),
            // Long-lived connections, tiny requests. Degradation is
            // the classic stale-ok read: skip lease revalidation and
            // serve possibly-stale values at a fraction of the demand.
            "memcached" => Some(Self {
                workload: "memcached",
                pattern_kind: PatternKind::Poisson,
                clients: ClientMix {
                    population: 4_000_000,
                    mean_session_requests: 64,
                    connect_cycles: 2_000,
                    slow_per_mille: 20,
                    stall_cycles: 10_000,
                },
                degrade_label: "stale-ok",
                degrade_demand_pct: 60,
                degrade_stall_pct: 100,
                slo_multiple: 8,
            }),
            // Keepalive sessions with a real slow-client problem
            // (trickled requests hold a worker). Under pressure Apache
            // shrinks keepalive and hangs up on slow clients: the
            // stall cost collapses.
            "apache" => Some(Self {
                workload: "apache",
                pattern_kind: PatternKind::OnOff,
                clients: ClientMix {
                    population: 2_000_000,
                    mean_session_requests: 8,
                    connect_cycles: 4_000,
                    slow_per_mille: 50,
                    stall_cycles: 50_000,
                },
                degrade_label: "shrink-keepalive",
                degrade_demand_pct: 100,
                degrade_stall_pct: 10,
                slo_multiple: 8,
            }),
            _ => None,
        }
    }

    /// Builds the arrival pattern for this spec at the given mean
    /// interarrival gap (cycles).
    pub fn pattern(&self, mean_interarrival_cycles: f64) -> ArrivalPattern {
        match self.pattern_kind {
            PatternKind::Poisson => ArrivalPattern::Poisson {
                mean_interarrival_cycles,
            },
            PatternKind::OnOff => {
                // Duty cycle 3/4: bursts at 4/3 the anchor rate keep
                // the long-run mean at the anchor. An on window of 600
                // anchor gaps (period 800) fits several full on/off
                // periods into a few-thousand-request horizon, so the
                // silent windows actually materialize — and the burst
                // rate stays low enough that a within-SLO bounded
                // queue can still serve most of the capacity.
                let on = (mean_interarrival_cycles * 600.0) as u64;
                ArrivalPattern::OnOff {
                    mean_interarrival_cycles: mean_interarrival_cycles * 0.75,
                    on_cycles: on.max(1),
                    off_cycles: (on / 3).max(1),
                }
            }
            PatternKind::Diurnal => {
                // Peak 1.5×, trough 0.75× the anchor rate — a long-run
                // mean of 1.125×, close enough to the anchor that load
                // factors stay meaningful. A 500-gap phase gives a
                // few-thousand-request horizon several day/night flips.
                let phase = (mean_interarrival_cycles * 500.0) as u64;
                ArrivalPattern::Diurnal {
                    peak_interarrival_cycles: mean_interarrival_cycles / 1.5,
                    trough_interarrival_cycles: mean_interarrival_cycles / 0.75,
                    phase_cycles: phase.max(1),
                }
            }
        }
    }
}

/// Latency quantiles pulled from a `pk-obs` histogram snapshot — the
/// three the SLO dashboards care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency, cycles (log2-bucket upper edge).
    pub p50: u64,
    /// 99th percentile, cycles.
    pub p99: u64,
    /// 99.9th percentile, cycles.
    pub p999: u64,
}

impl LatencySummary {
    /// Extracts p50/p99/p999 from a histogram snapshot.
    pub fn of(h: &pk_obs::HistogramSnapshot) -> Self {
        Self {
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// One serving run: the open-loop result plus everything the latency
/// tables print.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Roster workload name.
    pub workload: &'static str,
    /// Kernel the run served on.
    pub choice: KernelChoice,
    /// The overload policy in force.
    pub policy: OverloadPolicy,
    /// Offered load as a fraction of PK saturation capacity, percent.
    pub load_pct: u32,
    /// The engine's counters and latency histogram.
    pub result: OpenLoopResult,
    /// p50/p99/p999 of completed requests.
    pub latency: LatencySummary,
    /// The SLO budget applied, cycles.
    pub slo_budget_cycles: u64,
    /// PK saturation capacity, ops/cycle — the goodput denominator.
    pub capacity_ops_per_cycle: f64,
}

impl ServeRun {
    /// Goodput as a fraction of saturation capacity.
    pub fn goodput_fraction(&self) -> f64 {
        self.result.goodput_ops_per_cycle() / self.capacity_ops_per_cycle
    }
}

/// The machine's serving capacity for `workload`: the PK kernel's
/// closed-loop saturation throughput at `cores`, in ops/cycle. Both
/// kernels are measured against it — "how much of the hardware's
/// capacity does this kernel serve within SLO" is the question the
/// paper's throughput figures ask, transposed to latency.
pub fn capacity_ops_per_cycle(workload: &str, cores: usize) -> Option<f64> {
    let model = roster::model(workload, KernelChoice::Pk)?;
    Some(model.network(cores).solve(cores).ops_per_cycle)
}

/// The SLO budget for `workload` at `cores`: `slo_multiple` × the PK
/// kernel's mean closed-loop request time. One budget per workload,
/// shared by every kernel/policy variant — the SLO belongs to the
/// product, not the kernel.
pub fn slo_budget_cycles(workload: &str, cores: usize) -> Option<u64> {
    let spec = ServingSpec::for_workload(workload)?;
    let model = roster::model(workload, KernelChoice::Pk)?;
    let mean = model.network(cores).solve(cores).cycles_per_op;
    Some((mean * spec.slo_multiple as f64) as u64)
}

/// The overload policy a run uses: `shed = false` observes the SLO
/// over an unbounded queue (the historical posture); `shed = true`
/// bounds admission, drops newest, propagates deadlines, and arms the
/// workload's degradation hook at half the cap.
///
/// The cap is sized to the SLO, not to a constant: a request admitted
/// to a full queue waits roughly `cap / cores` mean service times, so
/// `cap = cores × slo_multiple / 2` pins the worst admission wait at
/// half the SLO budget. A deeper queue would admit work that deadline
/// propagation is doomed to cancel; a shallower one idles servers
/// between bursts.
pub fn policy_for(spec: &ServingSpec, cores: usize, shed: bool, slo: u64) -> OverloadPolicy {
    if shed {
        let cap = (cores as u32) * spec.slo_multiple / 2;
        OverloadPolicy::shedding(cap, ShedPolicy::DropNewest, slo).with_degradation(
            cap / 2,
            spec.degrade_demand_pct,
            spec.degrade_stall_pct,
        )
    } else {
        OverloadPolicy::observe(slo)
    }
}

/// Runs `workload` as an open-loop server.
///
/// * `load_pct` — offered load as a percentage of the PK saturation
///   capacity (100 = arrivals exactly at capacity, 200 = 2× overload).
/// * `requests` — target arrival count; sets the horizon.
/// * `shed` — whether the kernel's overload policy bounds and sheds.
///
/// Returns `None` for non-serving workloads. Deterministic: a pure
/// function of its arguments (the plane's seed included).
#[allow(clippy::too_many_arguments)]
pub fn run_serving(
    workload: &str,
    choice: KernelChoice,
    cores: usize,
    shed: bool,
    load_pct: u32,
    requests: u64,
    seed: u64,
    faults: &FaultPlane,
) -> Option<ServeRun> {
    let spec = ServingSpec::for_workload(workload)?;
    let capacity = capacity_ops_per_cycle(spec.workload, cores)?;
    let slo = slo_budget_cycles(spec.workload, cores)?;
    let policy = policy_for(&spec, cores, shed, slo);

    let mean_gap = 1.0 / (capacity * load_pct as f64 / 100.0);
    let pattern = spec.pattern(mean_gap);
    let horizon = (requests as f64 * pattern.mean_interarrival_cycles()) as u64;

    // The serving network: the same roster model the closed figures
    // use, under the kernel actually being measured.
    let net = roster::model(spec.workload, choice)?.network(cores);
    let result = simulate_open_with_faults(
        &net,
        cores,
        pattern,
        spec.clients,
        policy,
        horizon.max(1),
        seed,
        faults,
    );
    let latency = LatencySummary::of(&result.latency);
    Some(ServeRun {
        workload: spec.workload,
        choice,
        policy,
        load_pct,
        result,
        latency,
        slo_budget_cycles: slo,
        capacity_ops_per_cycle: capacity,
    })
}

/// One request-flow serving run: [`run_serving`]'s counters, produced
/// by the traced per-station engine instead of the lumped one.
///
/// There is no `choice` field: the flow entry takes a *prebuilt*
/// network so callers can serve on any personality — stock, coarse,
/// PK, or an adaptive controller's converged config — while the SLO
/// budget and capacity denominator stay anchored to the PK kernel,
/// exactly as in [`run_serving`].
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// Roster workload name.
    pub workload: &'static str,
    /// The overload policy in force.
    pub policy: OverloadPolicy,
    /// Offered load as a fraction of PK saturation capacity, percent.
    pub load_pct: u32,
    /// The engine's counters and latency histogram.
    pub result: OpenLoopResult,
    /// p50/p99/p999 of completed requests.
    pub latency: LatencySummary,
    /// The SLO budget applied, cycles.
    pub slo_budget_cycles: u64,
    /// PK saturation capacity, ops/cycle — the goodput denominator.
    pub capacity_ops_per_cycle: f64,
}

impl FlowRun {
    /// Goodput as a fraction of saturation capacity.
    pub fn goodput_fraction(&self) -> f64 {
        self.result.goodput_ops_per_cycle() / self.capacity_ops_per_cycle
    }
}

/// Runs `workload` as an open-loop server through the request-flow
/// engine ([`pk_sim::simulate_flow`]): same arrival process, client
/// mix, policy, and load anchoring as [`run_serving`], but admitted
/// requests traverse `network`'s stations through real FIFOs, and —
/// when `tracer` is `Some` — every request's causal path is recorded
/// for `pk-why` to fold (DESIGN.md §15).
///
/// `network` is the serving network of whichever kernel personality is
/// being measured (`roster::model(w, choice).network(cores)`, or a
/// `model_with_config` network for the adaptive personality). The
/// tracer, if any, needs `cores + 1` tracks sized by
/// [`pk_sim::flow_ring_capacity`].
///
/// Returns `None` for non-serving workloads. Deterministic: a pure
/// function of its arguments, trace stream included.
#[allow(clippy::too_many_arguments)]
pub fn run_serving_flow(
    workload: &str,
    network: &Network,
    cores: usize,
    shed: bool,
    load_pct: u32,
    requests: u64,
    seed: u64,
    tracer: Option<&Tracer>,
) -> Option<FlowRun> {
    let spec = ServingSpec::for_workload(workload)?;
    let capacity = capacity_ops_per_cycle(spec.workload, cores)?;
    let slo = slo_budget_cycles(spec.workload, cores)?;
    let policy = policy_for(&spec, cores, shed, slo);

    let mean_gap = 1.0 / (capacity * load_pct as f64 / 100.0);
    let pattern = spec.pattern(mean_gap);
    let horizon = (requests as f64 * pattern.mean_interarrival_cycles()) as u64;

    let result = simulate_flow(
        network,
        cores,
        pattern,
        spec.clients,
        policy,
        horizon.max(1),
        seed,
        tracer,
    );
    let latency = LatencySummary::of(&result.latency);
    Some(FlowRun {
        workload: spec.workload,
        policy,
        load_pct,
        result,
        latency,
        slo_budget_cycles: slo,
        capacity_ops_per_cycle: capacity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_exactly_the_serving_roster() {
        for w in SERVING {
            assert!(ServingSpec::for_workload(w).is_some(), "{w} missing");
        }
        for w in ["gmake", "pedsort", "metis", "postgres", "nonsense"] {
            assert!(ServingSpec::for_workload(w).is_none(), "{w} is not serving");
        }
    }

    #[test]
    fn run_is_deterministic() {
        let plane = FaultPlane::disabled();
        let run = || {
            run_serving(
                "memcached",
                KernelChoice::Pk,
                8,
                true,
                150,
                2_000,
                42,
                &plane,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result.latency.buckets, b.result.latency.buckets);
        assert_eq!(a.result.arrivals, b.result.arrivals);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn overload_sheds_and_normal_load_mostly_meets_slo() {
        let plane = FaultPlane::disabled();
        let normal = run_serving(
            "memcached",
            KernelChoice::Pk,
            8,
            true,
            60,
            3_000,
            42,
            &plane,
        )
        .unwrap();
        assert_eq!(normal.result.accounted(), normal.result.arrivals);
        assert!(
            normal.result.slo_violations * 10 < normal.result.completed,
            "PK at 60% load should mostly meet SLO: {} violations / {}",
            normal.result.slo_violations,
            normal.result.completed
        );

        let over = run_serving(
            "memcached",
            KernelChoice::Pk,
            8,
            true,
            200,
            3_000,
            42,
            &plane,
        )
        .unwrap();
        assert!(
            over.result.rejected + over.result.shed_probabilistic + over.result.shed_oldest > 0,
            "2x overload must shed: {:?}",
            over.result
        );
        assert!(
            over.result.queue_depth_peak <= 32,
            "cap cores x slo_multiple / 2 must bound the queue"
        );
    }

    #[test]
    fn all_serving_specs_run_on_both_kernels() {
        let plane = FaultPlane::disabled();
        for w in SERVING {
            for choice in [KernelChoice::Stock, KernelChoice::Pk] {
                let r = run_serving(w, choice, 4, false, 80, 1_000, 42, &plane)
                    .unwrap_or_else(|| panic!("{w} under {choice:?} must run"));
                assert!(r.result.completed > 0, "{w}/{choice:?} completed nothing");
                assert_eq!(r.result.accounted(), r.result.arrivals);
            }
        }
    }

    #[test]
    fn flow_engine_sees_the_same_offered_stream_as_the_lumped_one() {
        // Same anchoring, same seed: the two engines must agree on
        // everything on the arrival side of the admission decision.
        let plane = FaultPlane::disabled();
        let net = roster::model("exim", KernelChoice::Stock)
            .unwrap()
            .network(8);
        let f = run_serving_flow("exim", &net, 8, true, 120, 2_000, 42, None).unwrap();
        let o = run_serving("exim", KernelChoice::Stock, 8, true, 120, 2_000, 42, &plane).unwrap();
        assert_eq!(f.result.arrivals, o.result.arrivals);
        assert_eq!(f.result.distinct_users, o.result.distinct_users);
        assert_eq!(f.result.new_connections, o.result.new_connections);
        assert_eq!(f.result.slow_requests, o.result.slow_requests);
        assert_eq!(f.slo_budget_cycles, o.slo_budget_cycles);
        assert_eq!(f.result.accounted(), f.result.arrivals);
    }

    #[test]
    fn flow_run_traces_every_personality_without_ring_overflow() {
        use pk_sim::flow_ring_capacity;
        use pk_trace::EventKind;
        let cores = 8;
        for choice in [KernelChoice::Stock, KernelChoice::Coarse, KernelChoice::Pk] {
            let net = roster::model("memcached", choice).unwrap().network(cores);
            let tracer = Tracer::new(
                cores + 1,
                flow_ring_capacity(1_500, cores, net.stations().len()),
            );
            let r = run_serving_flow("memcached", &net, cores, true, 80, 1_000, 42, Some(&tracer))
                .unwrap();
            assert!(r.result.completed > 0, "{choice:?} completed nothing");
            assert_eq!(tracer.dropped(), 0, "{choice:?} overflowed its rings");
            let events = tracer.drain();
            let ends = events
                .iter()
                .filter(|e| e.kind == EventKind::CtxEnd)
                .count() as u64;
            assert_eq!(ends, r.result.completed, "{choice:?} ctx envelope");
        }
    }

    #[test]
    fn slo_budget_scales_with_the_pk_request_time() {
        let slo8 = slo_budget_cycles("memcached", 8).unwrap();
        assert!(slo8 > 0);
        // The budget is a multiple of the mean request time, so it is
        // far above the p50 of a healthy run.
        let plane = FaultPlane::disabled();
        let r = run_serving(
            "memcached",
            KernelChoice::Pk,
            8,
            false,
            50,
            2_000,
            42,
            &plane,
        )
        .unwrap();
        assert!(r.latency.p50 < slo8, "p50 {} vs slo {slo8}", r.latency.p50);
    }
}
