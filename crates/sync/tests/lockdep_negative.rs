//! Negative tests: each constructs a deliberate concurrency-discipline
//! violation and asserts pk-lockdep catches it with the right
//! diagnostic — the classes involved, the acquisition sites, and the
//! violation kind.
//!
//! The violation store is process-global and shared by every test in
//! this binary, so each test matches on its own class names and sites
//! instead of asserting counts.

#![cfg(feature = "lockdep")]

use pk_lockdep::{LockKind, Violation, ViolationKind};
use pk_sync::{rcu, AdaptiveMutex, SpinLock};

/// Finds the violation of `kind` whose message contains every needle,
/// or panics with the full store for debugging.
fn find_violation(kind: ViolationKind, needles: &[&str]) -> Violation {
    pk_lockdep::violations()
        .into_iter()
        .find(|v| v.kind == kind && needles.iter().all(|n| v.message.contains(n)))
        .unwrap_or_else(|| {
            panic!(
                "no {kind:?} violation mentioning {needles:?}; store: {:#?}",
                pk_lockdep::violations()
            )
        })
}

#[test]
fn abba_reports_both_classes_and_acquisition_sites() {
    let a = SpinLock::new(0u32);
    let b = SpinLock::new(0u32);
    a.set_class(pk_lockdep::register_class(
        "negtest.abba.a",
        "pk-sync",
        LockKind::Spin,
    ));
    b.set_class(pk_lockdep::register_class(
        "negtest.abba.b",
        "pk-sync",
        LockKind::Spin,
    ));
    {
        // Establish the order a -> b.
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        // Acquire in the opposite order: a classic ABBA. Single-thread
        // observation is enough — no actual deadlock has to occur.
        let _gb = b.lock();
        let _ga = a.lock();
    }
    let v = find_violation(
        ViolationKind::LockOrder,
        &["negtest.abba.a", "negtest.abba.b"],
    );
    assert!(
        v.message.contains("would-deadlock"),
        "missing would-deadlock diagnosis: {}",
        v.message
    );
    // Both acquisition stacks must name their source sites (this file).
    assert!(
        v.message.matches("lockdep_negative.rs").count() >= 2,
        "message must name both acquisition sites: {}",
        v.message
    );
}

#[test]
fn blocking_lock_inside_epoch_section_is_reported() {
    let m = AdaptiveMutex::new(());
    m.set_class(pk_lockdep::register_class(
        "negtest.epoch.mutex",
        "pk-sync",
        LockKind::Blocking,
    ));
    {
        let _g = rcu::read_lock();
        // A blocking acquisition inside a read-side section: a
        // preempted holder would stall every writer's grace period.
        let _mg = m.lock();
    }
    let v = find_violation(ViolationKind::BlockingInEpoch, &["negtest.epoch.mutex"]);
    assert!(
        v.message.contains("epoch read-side"),
        "missing epoch diagnosis: {}",
        v.message
    );
    assert!(
        v.message.contains("lockdep_negative.rs"),
        "message must name the acquisition site: {}",
        v.message
    );
}

#[test]
fn spin_lock_inside_epoch_section_is_allowed() {
    let l = SpinLock::new(0u32);
    l.set_class(pk_lockdep::register_class(
        "negtest.epoch.spin",
        "pk-sync",
        LockKind::Spin,
    ));
    {
        let _g = rcu::read_lock();
        let _lg = l.lock();
    }
    assert!(
        !pk_lockdep::violations()
            .iter()
            .any(|v| v.message.contains("negtest.epoch.spin")),
        "non-blocking lock inside an epoch must not be flagged"
    );
}

#[test]
fn synchronize_inside_epoch_section_is_reported() {
    // The real rcu::synchronize() would spin forever here — the grace
    // period waits for this very reader — which is exactly the
    // self-deadlock the validator diagnoses *before* the wait begins.
    // Exercise the same hook synchronize() calls first, under a live
    // read guard, so the test terminates.
    let _g = rcu::read_lock();
    pk_lockdep::check_synchronize();
    let v = find_violation(ViolationKind::SynchronizeInEpoch, &["never quiesces"]);
    assert!(
        v.message.contains("lockdep_negative.rs"),
        "message must name the call site: {}",
        v.message
    );
}
