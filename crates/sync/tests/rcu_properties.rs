//! Property tests for deferred RCU reclamation (`call_rcu`) safety.
//!
//! The property under test: **no deferred drop runs while any reader
//! that could have observed the old pointer is inside a read-side
//! critical section** — including nested sections and logical readers
//! that migrate between cores across sections.
//!
//! Each generated script drives three dedicated reader threads (three
//! distinct cores in the registry) through enter/exit commands over a
//! channel, one command at a time, while the main thread plays the
//! writer: publishing replacement objects and retiring the old ones
//! through `defer_drop`. Every retired object carries a drop flag; the
//! interpreter's model tracks which readers were in-section at
//! retirement time and asserts, after every step, that none of their
//! protected objects has been freed. After the script, an
//! `rcu_barrier` must free everything — no leaks either.
//!
//! Tests prefixed `miri_smoke_` form the Miri subset CI runs under
//! `cargo miri test -- miri_smoke_` (kept single-threaded so the
//! interpreter stays fast under the interpreter-of-interpreters).

use pk_sync::rcu;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

/// A retired object that records when its deferred drop ran.
struct Tracked(Arc<AtomicBool>);

impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

fn freed(flag: &Arc<AtomicBool>) -> bool {
    flag.load(Ordering::SeqCst)
}

/// Retires a fresh tracked object, returning its drop flag.
fn retire() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    rcu::defer_drop(Box::new(Tracked(Arc::clone(&flag))));
    flag
}

/// Commands a reader thread executes; each is acknowledged before the
/// interpreter issues the next, so scripts interleave deterministically.
enum Cmd {
    /// Push one read guard (the outermost publishes the core's epoch).
    Enter,
    /// Pop one read guard.
    Exit,
    /// Drop all guards and exit the thread.
    Quit,
}

struct Reader {
    tx: Sender<Cmd>,
    ack: std::sync::mpsc::Receiver<()>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Current nesting depth, mirrored by the interpreter's model.
    depth: usize,
}

impl Reader {
    fn spawn() -> Self {
        let (tx, rx) = channel::<Cmd>();
        let (ack_tx, ack) = channel::<()>();
        let handle = std::thread::spawn(move || {
            let mut guards = Vec::new();
            for cmd in rx {
                match cmd {
                    Cmd::Enter => guards.push(rcu::read_lock()),
                    Cmd::Exit => {
                        guards.pop();
                    }
                    Cmd::Quit => break,
                }
                if ack_tx.send(()).is_err() {
                    break;
                }
            }
        });
        Self {
            tx,
            ack,
            handle: Some(handle),
            depth: 0,
        }
    }

    fn run(&mut self, cmd: Cmd) {
        self.tx.send(cmd).expect("reader thread alive");
        self.ack.recv().expect("reader thread acked");
    }
}

impl Drop for Reader {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Quit);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One step of a generated script. Reader indices simulate migration:
/// the same logical actor re-entering via a different index runs its
/// next section on a different core.
#[derive(Debug, Clone, Copy)]
enum Step {
    Enter(usize),
    Exit(usize),
    /// Publish a replacement and retire the old object via `defer_drop`
    /// (also drives the writer core's reclamation attempt).
    Update,
}

fn step_strategy(readers: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..readers).prop_map(Step::Enter),
        (0..readers).prop_map(Step::Exit),
        Just(Step::Update),
    ]
}

/// A retired object plus the readers whose sections could have
/// observed it (in-section at retirement time, so the old pointer was
/// still reachable when their outermost section began).
struct RetiredEntry {
    flag: Arc<AtomicBool>,
    held_by: Vec<usize>,
}

/// Runs one script and checks the safety property after every step.
fn run_script(steps: &[Step], reader_count: usize) {
    let mut readers: Vec<Reader> = (0..reader_count).map(|_| Reader::spawn()).collect();
    let mut retired: Vec<RetiredEntry> = Vec::new();
    let mut all_flags: Vec<Arc<AtomicBool>> = Vec::new();

    for &step in steps {
        match step {
            Step::Enter(r) => {
                readers[r].run(Cmd::Enter);
                readers[r].depth += 1;
            }
            Step::Exit(r) => {
                if readers[r].depth > 0 {
                    readers[r].run(Cmd::Exit);
                    readers[r].depth -= 1;
                    if readers[r].depth == 0 {
                        // Outermost exit: r no longer protects anything.
                        for e in &mut retired {
                            e.held_by.retain(|&h| h != r);
                        }
                    }
                }
            }
            Step::Update => {
                let held_by: Vec<usize> = readers
                    .iter()
                    .enumerate()
                    .filter(|(_, rd)| rd.depth > 0)
                    .map(|(i, _)| i)
                    .collect();
                let flag = retire();
                all_flags.push(Arc::clone(&flag));
                retired.push(RetiredEntry { flag, held_by });
            }
        }
        // The property: an object is never freed while a reader that
        // could have observed it is still inside its section. Nested
        // exits above must NOT have released protection (depth > 0
        // keeps the reader in every hold set).
        for e in &retired {
            if !e.held_by.is_empty() {
                assert!(
                    !freed(&e.flag),
                    "deferred drop ran while readers {:?} were still \
                     in read-side sections (step {step:?})",
                    e.held_by
                );
            }
        }
    }

    // Wind down: close every section, then a barrier must free
    // everything retired — no leaks.
    for r in &mut readers {
        while r.depth > 0 {
            r.run(Cmd::Exit);
            r.depth -= 1;
        }
    }
    rcu::rcu_barrier();
    for (i, flag) in all_flags.iter().enumerate() {
        assert!(freed(flag), "retired object {i} leaked past rcu_barrier");
    }
}

proptest! {
    /// The headline property over arbitrary scripts: three reader
    /// cores, nested sections, interleaved updates.
    #[test]
    fn no_deferred_drop_inside_observing_section(
        steps in proptest::collection::vec(step_strategy(3), 1..60),
    ) {
        run_script(&steps, 3);
    }
}

/// A logical reader that migrates: each of its sections runs on a
/// different core, with updates retiring objects between and during
/// the sections. Protection must follow the section, not the core.
#[test]
fn migrating_reader_is_protected_on_every_core() {
    let script = [
        Step::Enter(0),
        Step::Update, // held by core-0 section
        Step::Exit(0),
        Step::Enter(1), // "migrated" to core 1
        Step::Update,   // held by core-1 section
        Step::Enter(1), // nested on the new core
        Step::Update,
        Step::Exit(1), // nested exit: still protected
        Step::Update,
        Step::Exit(1),
        Step::Enter(2),
        Step::Update,
        Step::Exit(2),
    ];
    run_script(&script, 3);
}

/// Deep nesting on one core: only the outermost exit releases.
#[test]
fn nested_sections_release_only_at_outermost_exit() {
    let mut script = vec![Step::Enter(0); 8];
    script.push(Step::Update);
    script.extend([Step::Exit(0); 7]);
    script.push(Step::Update); // still nested once: must stay protected
    script.push(Step::Exit(0));
    run_script(&script, 1);
}

// ---------------------------------------------------------------------
// Miri smoke subset: single-threaded, no channels, fast under Miri.
// ---------------------------------------------------------------------

#[test]
fn miri_smoke_defer_drop_frees_after_barrier() {
    let flag = retire();
    rcu::rcu_barrier();
    assert!(freed(&flag));
}

#[test]
fn miri_smoke_own_section_defers_reclamation() {
    let guard = rcu::read_lock();
    let flag = retire(); // call_rcu inside a section: legal, deferred
    assert!(!freed(&flag), "freed inside the retiring reader's section");
    drop(guard);
    rcu::rcu_barrier();
    assert!(freed(&flag));
}

#[test]
fn miri_smoke_nested_sections_defer_until_outermost() {
    let outer = rcu::read_lock();
    let inner = rcu::read_lock();
    let flag = retire();
    drop(inner);
    assert!(!freed(&flag), "nested exit must not trigger reclamation");
    drop(outer);
    rcu::rcu_barrier();
    assert!(freed(&flag));
}

#[test]
fn miri_smoke_rcu_cell_deferred_update() {
    let cell = rcu::RcuCell::new(7u64);
    cell.update_deferred(8);
    let g = rcu::read_lock();
    assert_eq!(*cell.read(&g), 8);
    drop(g);
    rcu::rcu_barrier();
}
