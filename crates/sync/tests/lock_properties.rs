//! Property and stress tests for the synchronization primitives.

use pk_sync::{AdaptiveMutex, GenCounter, McsLock, SeqLock, SpinLock, TicketLock};
use proptest::prelude::*;
use std::sync::Arc;

/// Mutual-exclusion checker: 4 threads each apply 2,500 increments
/// through the lock; the result must be exact.
macro_rules! check_lock {
    ($lock:expr) => {{
        let lock = Arc::new($lock);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..2_500 {
                        *lock.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.lock(), 10_000u64);
    }};
}

#[test]
fn all_locks_provide_mutual_exclusion() {
    check_lock!(SpinLock::new(0u64));
    check_lock!(TicketLock::new(0u64));
    check_lock!(McsLock::new(0u64));
    check_lock!(AdaptiveMutex::new(0u64));
}

proptest! {
    /// SeqLock: any interleaved sequence of writes is observed
    /// atomically; the final read equals the last write.
    #[test]
    fn seqlock_reads_match_last_write(values in proptest::collection::vec(any::<u64>(), 1..50)) {
        let sl = SeqLock::new((0u64, 0u64));
        for &v in &values {
            *sl.write() = (v, v.wrapping_mul(31));
            let (a, b) = sl.read();
            prop_assert_eq!(a, v);
            prop_assert_eq!(b, v.wrapping_mul(31));
        }
        prop_assert_eq!(sl.sequence(), 2 * values.len() as u64);
    }

    /// GenCounter: any series of write sessions leaves the counter
    /// readable, with every snapshot from before a write invalidated.
    #[test]
    fn gen_counter_invalidates_old_snapshots(writes in 1..20usize) {
        let g = GenCounter::new();
        let mut old_snapshots = Vec::new();
        for _ in 0..writes {
            old_snapshots.push(g.begin_read().unwrap());
            g.begin_write();
            prop_assert!(g.begin_read().is_none());
            g.end_write();
        }
        let current = g.begin_read().unwrap();
        prop_assert!(g.validate(current));
        for snap in old_snapshots {
            prop_assert!(!g.validate(snap), "stale snapshot accepted");
        }
    }

    /// Lock statistics: acquisitions count exactly, contended ≤ total.
    #[test]
    fn lock_stats_are_consistent(acquires in 1..200usize) {
        let lock = SpinLock::new(());
        for _ in 0..acquires {
            drop(lock.lock());
        }
        prop_assert_eq!(lock.stats().acquisitions(), acquires as u64);
        prop_assert!(lock.stats().contended() <= lock.stats().acquisitions());
        prop_assert_eq!(lock.stats().contention_ratio(), 0.0);
    }
}

/// RCU: a chain of updates with concurrent readers never shows a torn or
/// reclaimed value.
#[test]
fn rcu_chain_of_updates_is_safe() {
    use pk_sync::rcu::{self, RcuCell};
    let cell = Arc::new(RcuCell::new(vec![0u8; 64]));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for _ in 0..2_000 {
                    let g = rcu::read_lock();
                    let v = cell.read(&g);
                    let first = v[0];
                    assert!(v.iter().all(|&b| b == first), "torn snapshot");
                }
            });
        }
        let cell = Arc::clone(&cell);
        s.spawn(move || {
            for i in 1..=50u8 {
                cell.update(vec![i; 64]);
            }
        });
    });
    let g = pk_sync::rcu::read_lock();
    assert_eq!(cell.read(&g)[0], 50);
}

/// Seqlock under a live writer thread: readers never observe a torn
/// write (the two halves always satisfy the invariant), and every read
/// succeeds within a bounded number of retries — the writer's critical
/// section is short, so a reader cannot be starved indefinitely.
#[test]
fn seqlock_readers_never_torn_and_retries_bounded() {
    use std::sync::atomic::{AtomicBool, Ordering};
    const READS_PER_READER: usize = 20_000;
    const RETRY_BOUND: usize = 100_000;
    // Pure spins below this many retries; yields above it. On a
    // single-CPU host the writer can be preempted *inside* its
    // two-store critical section for a whole scheduler quantum — a
    // reader must hand the CPU back so the writer can finish, or the
    // retry bound measures the host's timeslice instead of the lock.
    const SPIN_BEFORE_YIELD: usize = 64;
    let sl = Arc::new(SeqLock::new((0u64, 0u64)));
    let stop = Arc::new(AtomicBool::new(false));
    // Raises `stop` even if an assertion unwinds the scope closure:
    // otherwise `thread::scope`'s implicit join waits forever on the
    // writer's `while !stop` loop and a failure turns into a hang.
    struct StopOnDrop(Arc<AtomicBool>);
    impl Drop for StopOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }
    std::thread::scope(|s| {
        let _stop_guard = StopOnDrop(Arc::clone(&stop));
        {
            let sl = Arc::clone(&sl);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v = v.wrapping_add(1);
                    *sl.write() = (v, v.wrapping_mul(31));
                    // Let readers through between writes; a writer that
                    // never leaves the CPU starves them by scheduling,
                    // which is not the property under test.
                    std::thread::yield_now();
                }
            });
        }
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let sl = Arc::clone(&sl);
                s.spawn(move || {
                    let mut max_attempts = 0usize;
                    for _ in 0..READS_PER_READER {
                        let mut attempts = 0usize;
                        let (a, b) = loop {
                            match sl.try_read() {
                                Ok(snap) => break snap,
                                Err(_) => {
                                    attempts += 1;
                                    assert!(
                                        attempts < RETRY_BOUND,
                                        "reader starved: {attempts} retries on one read"
                                    );
                                    if attempts < SPIN_BEFORE_YIELD {
                                        std::hint::spin_loop();
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        };
                        assert_eq!(b, a.wrapping_mul(31), "torn read: ({a}, {b})");
                        max_attempts = max_attempts.max(attempts);
                    }
                    max_attempts
                })
            })
            .collect();
        for r in readers {
            let max_attempts = r.join().unwrap();
            assert!(max_attempts < RETRY_BOUND);
        }
    });
}

/// The MCS lock frees all queue nodes (no leak panic under Miri-less
/// sanity: handoff chains of varying length complete).
#[test]
fn mcs_handoff_chains_complete() {
    for waiters in [1, 2, 5, 9] {
        let lock = Arc::new(McsLock::new(0usize));
        let held = lock.lock();
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    *lock.lock() += 1;
                })
            })
            .collect();
        std::thread::yield_now();
        drop(held);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), waiters);
    }
}

/// Ticket locks remain fair under churn: a queued waiter is served
/// before a later arrival (probabilistic check via strict FIFO count).
#[test]
fn ticket_lock_progress_under_churn() {
    let lock = Arc::new(TicketLock::new(Vec::<usize>::new()));
    std::thread::scope(|s| {
        for t in 0..4 {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                for _ in 0..500 {
                    lock.lock().push(t);
                }
            });
        }
    });
    assert_eq!(lock.lock().len(), 2_000);
}
