//! Epoch-based read-copy-update.
//!
//! The directory-entry cache the paper studies is "optimized using RCU for
//! scalability" (\[39\], \[40\]): readers traverse shared structures without
//! writing any shared memory, while writers publish new versions and defer
//! reclamation until every reader that might hold a reference has passed a
//! quiescent point. This module implements a small userspace RCU with the
//! same shape: pointer publication via [`RcuCell`] and grace periods via
//! epoch tracking per logical core.

use pk_percpu::{registry, CacheAligned, MAX_CORES};
use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// Global epoch; bumped by `synchronize()`.
static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Per-core reader state: 0 = quiescent, otherwise the epoch at which the
/// outermost read-side critical section began.
static READER_EPOCHS: [CacheAligned<AtomicU64>; MAX_CORES] = {
    // The const is only an array-initialization helper; each array slot
    // is its own atomic.
    #[allow(clippy::declare_interior_mutable_const)]
    const Q: CacheAligned<AtomicU64> = CacheAligned::new(AtomicU64::new(0));
    [Q; MAX_CORES]
};

thread_local! {
    static NESTING: Cell<u32> = const { Cell::new(0) };
}

/// A read-side critical section; ends when dropped.
///
/// Equivalent to the span between `rcu_read_lock()` and
/// `rcu_read_unlock()`. While any guard from an epoch earlier than a
/// writer's `synchronize()` call is live, that writer waits.
#[derive(Debug)]
#[must_use = "dropping the guard immediately ends the read-side section"]
pub struct RcuReadGuard {
    core: usize,
    // Read-side sections are per-thread; the guard must drop on the thread
    // that created it.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Enters a read-side critical section.
///
/// Sections nest; only the outermost one publishes the reader epoch.
pub fn read_lock() -> RcuReadGuard {
    let core = registry::current_or_register().index();
    let nesting = NESTING.with(|n| {
        let v = n.get();
        n.set(v + 1);
        v
    });
    if nesting == 0 {
        let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
        READER_EPOCHS[core].store(epoch, Ordering::SeqCst);
    }
    pk_lockdep::epoch_enter();
    RcuReadGuard {
        core,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for RcuReadGuard {
    fn drop(&mut self) {
        pk_lockdep::epoch_exit();
        let nesting = NESTING.with(|n| {
            let v = n.get() - 1;
            n.set(v);
            v
        });
        if nesting == 0 {
            READER_EPOCHS[self.core].store(0, Ordering::SeqCst);
        }
    }
}

/// Waits until every read-side critical section that began before this
/// call has ended (a *grace period*).
///
/// Equivalent to `synchronize_rcu()`.
#[track_caller]
pub fn synchronize() {
    pk_lockdep::check_synchronize();
    let target = GLOBAL_EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
    for slot in READER_EPOCHS.iter() {
        let mut spins = 0u64;
        loop {
            let e = slot.load(Ordering::SeqCst);
            if e == 0 || e >= target {
                break;
            }
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }
}

/// An RCU-protected pointer to an immutable `T` snapshot.
///
/// Readers obtain a cheap, wait-free reference under a [`RcuReadGuard`];
/// writers replace the snapshot wholesale and block for a grace period
/// before freeing the previous one.
///
/// # Examples
///
/// ```
/// use pk_sync::rcu::{self, RcuCell};
///
/// let cell = RcuCell::new(vec![1, 2, 3]);
/// {
///     let guard = rcu::read_lock();
///     assert_eq!(cell.read(&guard).len(), 3);
/// }
/// cell.update(vec![4]);
/// let guard = rcu::read_lock();
/// assert_eq!(cell.read(&guard), &[4]);
/// ```
#[derive(Debug)]
pub struct RcuCell<T> {
    ptr: AtomicPtr<T>,
    writer: Mutex<()>,
}

// SAFETY: The published pointer is only mutated under the writer mutex and
// only freed after a grace period, so shared access is sound for Send+Sync
// payloads.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: See above.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Creates a cell publishing `value`.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            writer: Mutex::new(()),
        }
    }

    /// Dereferences the current snapshot.
    ///
    /// The returned reference is valid for the lifetime of the guard: the
    /// writer cannot free the snapshot until the guard drops.
    pub fn read<'g>(&self, _guard: &'g RcuReadGuard) -> &'g T {
        let p = self.ptr.load(Ordering::Acquire);
        // SAFETY: `p` was published by `new`/`update` and cannot be freed
        // before the guard's read-side section ends (update waits for a
        // grace period covering it).
        unsafe { &*p }
    }

    /// Publishes a new snapshot and frees the old one after a grace
    /// period. Blocks until the grace period elapses.
    pub fn update(&self, value: T) {
        let new = Box::into_raw(Box::new(value));
        let old = {
            // Lock poisoning only means a previous writer panicked; the
            // cell itself is always in a published, consistent state.
            let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            self.ptr.swap(new, Ordering::AcqRel)
        };
        synchronize();
        // SAFETY: `old` was the published pointer; after `synchronize` no
        // reader that could have loaded it is still in a read section, and
        // the swap removed it from the cell, so we hold the only copy.
        drop(unsafe { Box::from_raw(old) });
    }

    /// Applies `f` to the current snapshot to compute a replacement, then
    /// publishes it (read-copy-update). Writers are serialized.
    pub fn update_with(&self, f: impl FnOnce(&T) -> T) {
        let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.ptr.load(Ordering::Acquire);
        // SAFETY: We hold the writer lock, so `cur` cannot be swapped out
        // or freed concurrently.
        let new = Box::into_raw(Box::new(f(unsafe { &*cur })));
        let old = self.ptr.swap(new, Ordering::AcqRel);
        synchronize();
        // SAFETY: As in `update`.
        drop(unsafe { Box::from_raw(old) });
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // SAFETY: Exclusive ownership at drop; no readers can exist
            // because they would borrow the cell.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn read_sees_published_value() {
        let cell = RcuCell::new(5u32);
        let g = read_lock();
        assert_eq!(*cell.read(&g), 5);
    }

    #[test]
    fn update_replaces_snapshot() {
        let cell = RcuCell::new(String::from("old"));
        cell.update(String::from("new"));
        let g = read_lock();
        assert_eq!(cell.read(&g), "new");
    }

    #[test]
    fn update_with_reads_current() {
        let cell = RcuCell::new(10u64);
        cell.update_with(|v| v + 1);
        cell.update_with(|v| v * 2);
        let g = read_lock();
        assert_eq!(*cell.read(&g), 22);
    }

    #[test]
    fn nested_read_sections() {
        let outer = read_lock();
        let inner = read_lock();
        drop(inner);
        // Outer section still pins the epoch.
        let core = outer.core;
        assert_ne!(READER_EPOCHS[core].load(Ordering::SeqCst), 0);
        drop(outer);
        assert_eq!(READER_EPOCHS[core].load(Ordering::SeqCst), 0);
    }

    #[test]
    fn synchronize_waits_for_reader() {
        let cell = Arc::new(RcuCell::new(1u32));
        let reader_in = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let updated = Arc::new(AtomicBool::new(false));

        let r = {
            let reader_in = Arc::clone(&reader_in);
            let release = Arc::clone(&release);
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let g = read_lock();
                let v = *cell.read(&g);
                reader_in.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                drop(g);
                v
            })
        };
        while !reader_in.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let w = {
            let cell = Arc::clone(&cell);
            let updated = Arc::clone(&updated);
            std::thread::spawn(move || {
                cell.update(2);
                updated.store(true, Ordering::SeqCst);
            })
        };
        // The writer must not finish while the reader is inside.
        for _ in 0..100 {
            std::thread::yield_now();
        }
        assert!(!updated.load(Ordering::SeqCst), "grace period ended early");
        release.store(true, Ordering::SeqCst);
        assert_eq!(r.join().unwrap(), 1);
        w.join().unwrap();
        assert!(updated.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let cell = Arc::new(RcuCell::new(vec![0u64; 8]));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = read_lock();
                        let v = cell.read(&g);
                        // Every snapshot is internally consistent: all
                        // elements equal.
                        assert!(v.windows(2).all(|w| w[0] == w[1]));
                    }
                })
            })
            .collect();
        for i in 1..20 {
            cell.update(vec![i; 8]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
