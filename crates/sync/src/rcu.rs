//! Epoch-based read-copy-update.
//!
//! The directory-entry cache the paper studies is "optimized using RCU for
//! scalability" (\[39\], \[40\]): readers traverse shared structures without
//! writing any shared memory, while writers publish new versions and defer
//! reclamation until every reader that might hold a reference has passed a
//! quiescent point. This module implements a small userspace RCU with the
//! same shape: pointer publication via [`RcuCell`] and grace periods via
//! epoch tracking per logical core.
//!
//! Two reclamation disciplines are offered:
//!
//! * **blocking** — [`synchronize`] spins until every reader that predates
//!   the call has quiesced, then the caller frees the retired object. Every
//!   writer pays a full grace period.
//! * **deferred** — [`call_rcu`] (or the safe [`defer_drop`]) hands the
//!   retired object to a per-core cache-aligned deferred-free queue tagged
//!   with a *target epoch*; a grace-period state machine retires queued
//!   batches once every core has passed a quiescent point at or beyond the
//!   target. Writers never stall. [`rcu_barrier`] waits out one grace
//!   period and drains everything previously deferred — the shutdown and
//!   test hook.
//!
//! ## Grace-period state machine
//!
//! The global epoch `G` only grows. A reader's outermost `read_lock`
//! publishes the current `G` into its core's slot (0 = quiescent). An
//! object retired at epoch `G` gets target `t = G + 1`, and `G` is
//! advanced to at least `t` (without waiting). The entry is reclaimable
//! exactly when every core slot is 0 or ≥ `t`: any reader that could have
//! observed the old pointer published an epoch < `t` before the swap, so
//! this condition proves all such readers have exited. Per-core queues are
//! in non-decreasing target order (the epoch is monotonic), so reclaim
//! pops from the front until the first entry whose grace period has not
//! elapsed.

use pk_percpu::{registry, CacheAligned, MAX_CORES};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Global epoch; advanced by `synchronize()` and `call_rcu()`.
static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Per-core reader state: 0 = quiescent, otherwise the epoch at which the
/// outermost read-side critical section began.
static READER_EPOCHS: [CacheAligned<AtomicU64>; MAX_CORES] = {
    // The const is only an array-initialization helper; each array slot
    // is its own atomic.
    #[allow(clippy::declare_interior_mutable_const)]
    const Q: CacheAligned<AtomicU64> = CacheAligned::new(AtomicU64::new(0));
    [Q; MAX_CORES]
};

/// One retired object awaiting its grace period.
struct Deferred {
    /// Reclaimable once every core is quiescent or at/past this epoch.
    target: u64,
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: The pointer is owned (unpublished) by the queue entry; the drop
// function is the only remaining access path, and `call_rcu`'s contract
// requires the payload to be `Send`.
unsafe impl Send for Deferred {}

/// Per-core cache-aligned deferred-free queues.
static DEFER_QUEUES: [CacheAligned<Mutex<VecDeque<Deferred>>>; MAX_CORES] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const Q: CacheAligned<Mutex<VecDeque<Deferred>>> =
        CacheAligned::new(Mutex::new(VecDeque::new()));
    [Q; MAX_CORES]
};

/// Entries a core may queue before `call_rcu` falls back to a blocking
/// spill (grace wait + drain) to bound memory.
pub const DEFER_QUEUE_CAP: usize = 4096;

/// Grace-period and deferral counters (process-wide, monotonic).
static SYNCHRONIZE_CALLS: AtomicU64 = AtomicU64::new(0);
static SYNC_SPIN_ITERS: AtomicU64 = AtomicU64::new(0);
static CALL_RCU_CALLS: AtomicU64 = AtomicU64::new(0);
static DEFERRED_FREED: AtomicU64 = AtomicU64::new(0);
static DEFER_SPILLS: AtomicU64 = AtomicU64::new(0);
static BARRIER_CALLS: AtomicU64 = AtomicU64::new(0);

/// Test hook: when installed and returning `true`, the next `call_rcu`
/// treats its queue as over capacity and spills (the `rcu.defer_overflow`
/// fault point is wired through this).
#[allow(clippy::type_complexity)]
static SPILL_PROBE: RwLock<Option<Arc<dyn Fn() -> bool + Send + Sync>>> = RwLock::new(None);

thread_local! {
    static NESTING: Cell<u32> = const { Cell::new(0) };
}

/// A read-side critical section; ends when dropped.
///
/// Equivalent to the span between `rcu_read_lock()` and
/// `rcu_read_unlock()`. While any guard from an epoch earlier than a
/// writer's `synchronize()` call is live, that writer waits.
#[derive(Debug)]
#[must_use = "dropping the guard immediately ends the read-side section"]
pub struct RcuReadGuard {
    core: usize,
    // Read-side sections are per-thread; the guard must drop on the thread
    // that created it.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Enters a read-side critical section.
///
/// Sections nest; only the outermost one publishes the reader epoch.
pub fn read_lock() -> RcuReadGuard {
    let core = registry::current_or_register().index();
    let nesting = NESTING.with(|n| {
        let v = n.get();
        n.set(v + 1);
        v
    });
    if nesting == 0 {
        let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
        READER_EPOCHS[core].store(epoch, Ordering::SeqCst);
    }
    pk_lockdep::epoch_enter();
    pk_trace::span_begin(&RCU_READ_SPAN);
    RcuReadGuard {
        core,
        _not_send: std::marker::PhantomData,
    }
}

/// Trace class for read-side sections (begin/end ride on the guard, so
/// the span cannot use the RAII macro).
static RCU_READ_SPAN: pk_trace::LazySpanClass = pk_trace::LazySpanClass::new("rcu.read");

impl Drop for RcuReadGuard {
    fn drop(&mut self) {
        pk_trace::span_end(&RCU_READ_SPAN);
        pk_lockdep::epoch_exit();
        let nesting = NESTING.with(|n| {
            let v = n.get() - 1;
            n.set(v);
            v
        });
        if nesting == 0 {
            READER_EPOCHS[self.core].store(0, Ordering::SeqCst);
        }
    }
}

/// Waits until every read-side critical section that began before this
/// call has ended (a *grace period*).
///
/// Equivalent to `synchronize_rcu()`. This is the blocking discipline:
/// the caller stalls for the whole grace period. Prefer [`call_rcu`] /
/// [`defer_drop`] on hot write paths.
#[track_caller]
pub fn synchronize() {
    pk_lockdep::check_synchronize();
    let _span = pk_trace::trace_span!("rcu.synchronize");
    SYNCHRONIZE_CALLS.fetch_add(1, Ordering::Relaxed);
    let target = GLOBAL_EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
    for slot in READER_EPOCHS.iter() {
        let mut spins = 0u64;
        loop {
            let e = slot.load(Ordering::SeqCst);
            if e == 0 || e >= target {
                break;
            }
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
        if spins > 0 {
            SYNC_SPIN_ITERS.fetch_add(spins, Ordering::Relaxed);
        }
    }
}

/// Retires `ptr` through the deferred-free queues: `drop_fn(ptr)` runs
/// once every core has passed a quiescent point after this call. Never
/// blocks for a grace period (except on queue overflow, see
/// [`DEFER_QUEUE_CAP`]).
///
/// Unlike [`synchronize`], calling this *inside* a read-side section is
/// legal: reclamation is simply deferred past the caller's own section.
///
/// # Safety
///
/// * `ptr` must be exclusively owned by the caller (already unpublished:
///   no new reader can reach it) and valid to pass to `drop_fn`.
/// * `drop_fn(ptr)` may run on any thread, so the pointee must be `Send`.
/// * `drop_fn` must free `ptr` exactly once.
pub unsafe fn call_rcu(ptr: *mut (), drop_fn: unsafe fn(*mut ())) {
    pk_trace::trace_instant!("rcu.call_rcu");
    CALL_RCU_CALLS.fetch_add(1, Ordering::Relaxed);
    let target = GLOBAL_EPOCH.load(Ordering::SeqCst) + 1;
    // Advance the epoch so future readers start at or beyond the target;
    // concurrent retirers in the same epoch share one advance.
    GLOBAL_EPOCH.fetch_max(target, Ordering::SeqCst);
    let core = registry::current_or_register().index();
    let len = {
        let mut q = DEFER_QUEUES[core].lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(Deferred {
            target,
            ptr,
            drop_fn,
        });
        q.len()
    };
    // Reclamation (and especially a blocking spill) must not run inside a
    // read-side section: the spill's grace wait would wait on the caller.
    if NESTING.with(Cell::get) > 0 {
        return;
    }
    let forced = SPILL_PROBE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .is_some_and(|p| p());
    if len > DEFER_QUEUE_CAP || forced {
        spill(core);
    } else {
        reap_core(core);
    }
}

/// Retires a boxed value through [`call_rcu`]: dropped after a grace
/// period, without blocking the caller.
pub fn defer_drop<T: Send + 'static>(value: Box<T>) {
    // SAFETY: The box is owned and unreachable to readers; `drop_box::<T>`
    // frees it exactly once; `T: Send + 'static` lets the drop run later
    // on any thread.
    unsafe { call_rcu(Box::into_raw(value).cast(), drop_box::<T>) }
}

/// Type-erased box destructor used by `defer_drop` and the deferred
/// `RcuCell` updates.
unsafe fn drop_box<T>(ptr: *mut ()) {
    // SAFETY: `ptr` came from `Box::into_raw` of a `Box<T>` and this is
    // its unique owner (the queue entry).
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

/// The lowest epoch any active reader is in, or `u64::MAX` when all cores
/// are quiescent. An entry with `target <= min_active_reader_epoch()` has
/// had its grace period elapse.
fn min_active_reader_epoch() -> u64 {
    // Pair with the SeqCst publication in `read_lock`: a reader that
    // loaded the retired pointer published its epoch before the retirer
    // unpublished it, so this scan cannot miss it.
    fence(Ordering::SeqCst);
    let mut min = u64::MAX;
    for slot in READER_EPOCHS.iter() {
        let e = slot.load(Ordering::SeqCst);
        if e != 0 && e < min {
            min = e;
        }
    }
    min
}

/// Frees every entry at the front of `core`'s queue whose grace period
/// has elapsed. Returns the number reclaimed.
fn reap_core(core: usize) -> usize {
    let mut batch = Vec::new();
    {
        let mut q = DEFER_QUEUES[core].lock().unwrap_or_else(|e| e.into_inner());
        if q.is_empty() {
            return 0;
        }
        let elapsed = min_active_reader_epoch();
        while let Some(front) = q.front() {
            if front.target <= elapsed {
                batch.push(q.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
    }
    free_batch(batch)
}

/// Blocking overflow path: wait one grace period (which covers every
/// queued target, the epoch being monotonic), then drain `core`'s queue.
fn spill(core: usize) {
    DEFER_SPILLS.fetch_add(1, Ordering::Relaxed);
    synchronize();
    let batch: Vec<Deferred> = {
        let mut q = DEFER_QUEUES[core].lock().unwrap_or_else(|e| e.into_inner());
        q.drain(..).collect()
    };
    free_batch(batch);
}

/// Runs the deferred drops outside any queue lock (a drop may itself
/// retire more objects).
fn free_batch(batch: Vec<Deferred>) -> usize {
    let n = batch.len();
    for d in batch {
        // SAFETY: The entry was popped under the queue lock, so this is
        // its unique owner, and its grace period has elapsed (reap) or a
        // full grace period was waited out (spill/barrier).
        unsafe { (d.drop_fn)(d.ptr) };
    }
    if n > 0 {
        DEFERRED_FREED.fetch_add(n as u64, Ordering::Relaxed);
    }
    n
}

/// Waits for the grace periods of everything deferred so far and runs
/// those drops (the shutdown/test flush; equivalent to `rcu_barrier()`).
///
/// Objects retired by other threads *during* the call are not covered.
/// Like [`synchronize`], this must not be called from inside a read-side
/// section (it would wait on the caller's own epoch).
#[track_caller]
pub fn rcu_barrier() {
    pk_lockdep::check_rcu_barrier();
    let _span = pk_trace::trace_span!("rcu.barrier");
    BARRIER_CALLS.fetch_add(1, Ordering::Relaxed);
    // Steal every queue's current contents first, then wait one grace
    // period: the epoch is monotonic, so that single wait covers every
    // stolen target.
    let mut stolen = Vec::new();
    for q in DEFER_QUEUES.iter() {
        let mut q = q.lock().unwrap_or_else(|e| e.into_inner());
        stolen.extend(q.drain(..));
    }
    if stolen.is_empty() {
        return;
    }
    synchronize();
    free_batch(stolen);
}

/// Installs (or clears, with `None`) the spill probe consulted by every
/// `call_rcu`: when the probe returns `true` the queue is treated as
/// over capacity and spilled. The `rcu.defer_overflow` fault point is
/// connected through this hook.
#[allow(clippy::type_complexity)]
pub fn set_spill_probe(probe: Option<Arc<dyn Fn() -> bool + Send + Sync>>) {
    *SPILL_PROBE.write().unwrap_or_else(|e| e.into_inner()) = probe;
}

/// A snapshot of the grace-period machinery's counters.
///
/// All values are process-wide and monotonic except `deferred_pending`;
/// take deltas around a phase to attribute costs to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcuStats {
    /// Blocking grace-period waits (includes spills and barriers).
    pub synchronize_calls: u64,
    /// Spin-loop iterations spent waiting inside `synchronize`.
    pub sync_spin_iters: u64,
    /// Objects retired through `call_rcu`/`defer_drop`.
    pub call_rcu_calls: u64,
    /// Deferred objects whose drop has run.
    pub deferred_freed: u64,
    /// Deferred objects still awaiting their grace period.
    pub deferred_pending: u64,
    /// Overflow/fault-forced blocking spills.
    pub spills: u64,
    /// `rcu_barrier` invocations.
    pub barriers: u64,
}

/// Reads the current counter values.
pub fn stats_snapshot() -> RcuStats {
    let call_rcu_calls = CALL_RCU_CALLS.load(Ordering::Relaxed);
    let deferred_freed = DEFERRED_FREED.load(Ordering::Relaxed);
    RcuStats {
        synchronize_calls: SYNCHRONIZE_CALLS.load(Ordering::Relaxed),
        sync_spin_iters: SYNC_SPIN_ITERS.load(Ordering::Relaxed),
        call_rcu_calls,
        deferred_freed,
        deferred_pending: call_rcu_calls.saturating_sub(deferred_freed),
        spills: DEFER_SPILLS.load(Ordering::Relaxed),
        barriers: BARRIER_CALLS.load(Ordering::Relaxed),
    }
}

/// Pull-model observability source exporting the `rcu.*` samples.
#[derive(Debug, Default, Clone, Copy)]
pub struct RcuObs;

impl pk_obs::Collect for RcuObs {
    fn collect(&self, out: &mut pk_obs::Snapshot) {
        let s = stats_snapshot();
        out.push(pk_obs::Sample::counter(
            "rcu.synchronize_calls",
            s.synchronize_calls,
        ));
        out.push(pk_obs::Sample::counter(
            "rcu.sync_spin_iters",
            s.sync_spin_iters,
        ));
        out.push(pk_obs::Sample::counter("rcu.call_rcu", s.call_rcu_calls));
        out.push(pk_obs::Sample::counter(
            "rcu.deferred_freed",
            s.deferred_freed,
        ));
        out.push(pk_obs::Sample::gauge(
            "rcu.deferred_pending",
            s.deferred_pending as i64,
        ));
        out.push(pk_obs::Sample::counter("rcu.spills", s.spills));
        out.push(pk_obs::Sample::counter("rcu.barriers", s.barriers));
    }
}

/// An RCU-protected pointer to an immutable `T` snapshot.
///
/// Readers obtain a cheap, wait-free reference under a [`RcuReadGuard`];
/// writers replace the snapshot wholesale and either block for a grace
/// period before freeing the previous one ([`RcuCell::update`],
/// [`RcuCell::update_with`]) or retire it through the deferred-free
/// queues without stalling ([`RcuCell::update_deferred`],
/// [`RcuCell::update_with_deferred`]).
///
/// # Examples
///
/// ```
/// use pk_sync::rcu::{self, RcuCell};
///
/// let cell = RcuCell::new(vec![1, 2, 3]);
/// {
///     let guard = rcu::read_lock();
///     assert_eq!(cell.read(&guard).len(), 3);
/// }
/// cell.update(vec![4]);
/// cell.update_with_deferred(|v| v.iter().map(|x| x * 10).collect());
/// let guard = rcu::read_lock();
/// assert_eq!(cell.read(&guard), &[40]);
/// ```
#[derive(Debug)]
pub struct RcuCell<T> {
    ptr: AtomicPtr<T>,
    writer: Mutex<()>,
}

// SAFETY: The published pointer is only mutated under the writer mutex and
// only freed after a grace period, so shared access is sound for Send+Sync
// payloads.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: See above.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Creates a cell publishing `value`.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            writer: Mutex::new(()),
        }
    }

    /// Dereferences the current snapshot.
    ///
    /// The returned reference is valid for the lifetime of the guard: the
    /// writer cannot free the snapshot until the guard drops.
    pub fn read<'g>(&self, _guard: &'g RcuReadGuard) -> &'g T {
        let p = self.ptr.load(Ordering::Acquire);
        // SAFETY: `p` was published by `new`/`update` and cannot be freed
        // before the guard's read-side section ends: blocking updates wait
        // for a grace period covering it, deferred updates queue the old
        // snapshot with a target epoch past this reader.
        unsafe { &*p }
    }

    /// Publishes a new snapshot and frees the old one after a grace
    /// period. Blocks until the grace period elapses.
    pub fn update(&self, value: T) {
        let new = Box::into_raw(Box::new(value));
        let old = {
            // Lock poisoning only means a previous writer panicked; the
            // cell itself is always in a published, consistent state.
            let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            self.ptr.swap(new, Ordering::SeqCst)
        };
        synchronize();
        // SAFETY: `old` was the published pointer; after `synchronize` no
        // reader that could have loaded it is still in a read section, and
        // the swap removed it from the cell, so we hold the only copy.
        drop(unsafe { Box::from_raw(old) });
    }

    /// Applies `f` to the current snapshot to compute a replacement, then
    /// publishes it (read-copy-update). Writers are serialized.
    pub fn update_with(&self, f: impl FnOnce(&T) -> T) {
        let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.ptr.load(Ordering::Acquire);
        // SAFETY: We hold the writer lock, so `cur` cannot be swapped out
        // or freed concurrently.
        let new = Box::into_raw(Box::new(f(unsafe { &*cur })));
        let old = self.ptr.swap(new, Ordering::SeqCst);
        synchronize();
        // SAFETY: As in `update`.
        drop(unsafe { Box::from_raw(old) });
    }
}

impl<T: Send + 'static> RcuCell<T> {
    /// Publishes a new snapshot and retires the old one through the
    /// deferred-free queues. Never blocks for a grace period.
    pub fn update_deferred(&self, value: T) {
        let new = Box::into_raw(Box::new(value));
        let old = {
            let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            self.ptr.swap(new, Ordering::SeqCst)
        };
        // SAFETY: `old` is unpublished (the swap removed the last shared
        // path to it) and `T: Send + 'static`, so its drop may run later
        // on any thread; `drop_box::<T>` frees it exactly once.
        unsafe { call_rcu(old.cast(), drop_box::<T>) };
    }

    /// Like [`RcuCell::update_with`], but retires the replaced snapshot
    /// through the deferred-free queues instead of blocking.
    pub fn update_with_deferred(&self, f: impl FnOnce(&T) -> T) {
        let _w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.ptr.load(Ordering::Acquire);
        // SAFETY: We hold the writer lock, so `cur` cannot be swapped out
        // or freed concurrently.
        let new = Box::into_raw(Box::new(f(unsafe { &*cur })));
        let old = self.ptr.swap(new, Ordering::SeqCst);
        // SAFETY: As in `update_deferred`.
        unsafe { call_rcu(old.cast(), drop_box::<T>) };
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // SAFETY: Exclusive ownership at drop; no readers can exist
            // because they would borrow the cell.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn read_sees_published_value() {
        let cell = RcuCell::new(5u32);
        let g = read_lock();
        assert_eq!(*cell.read(&g), 5);
    }

    #[test]
    fn update_replaces_snapshot() {
        let cell = RcuCell::new(String::from("old"));
        cell.update(String::from("new"));
        let g = read_lock();
        assert_eq!(cell.read(&g), "new");
    }

    #[test]
    fn update_with_reads_current() {
        let cell = RcuCell::new(10u64);
        cell.update_with(|v| v + 1);
        cell.update_with(|v| v * 2);
        let g = read_lock();
        assert_eq!(*cell.read(&g), 22);
    }

    #[test]
    fn deferred_update_publishes_immediately() {
        let cell = RcuCell::new(10u64);
        cell.update_deferred(11);
        cell.update_with_deferred(|v| v * 2);
        let g = read_lock();
        assert_eq!(*cell.read(&g), 22);
        drop(g);
        rcu_barrier();
    }

    /// Sets a flag when dropped — the probe for "has reclamation run".
    struct Tracked(Arc<AtomicBool>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn defer_drop_runs_after_barrier() {
        let dropped = Arc::new(AtomicBool::new(false));
        defer_drop(Box::new(Tracked(Arc::clone(&dropped))));
        rcu_barrier();
        assert!(dropped.load(Ordering::SeqCst), "barrier flushes the queue");
    }

    #[test]
    fn deferred_drop_waits_for_reader_that_saw_old_pointer() {
        let cell = Arc::new(RcuCell::new(Tracked(Arc::new(AtomicBool::new(false)))));
        let reader_in = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));

        let r = {
            let cell = Arc::clone(&cell);
            let reader_in = Arc::clone(&reader_in);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let g = read_lock();
                let old_flag = Arc::clone(&cell.read(&g).0);
                reader_in.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    assert!(
                        !old_flag.load(Ordering::SeqCst),
                        "old snapshot dropped while a reader that observed it is in-section"
                    );
                    std::thread::yield_now();
                }
                drop(g);
                old_flag
            })
        };
        while !reader_in.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Writer does not block...
        cell.update_deferred(Tracked(Arc::new(AtomicBool::new(false))));
        // ...and churning more deferred work must still not free the old
        // snapshot while the reader is inside.
        for _ in 0..64 {
            defer_drop(Box::new(0u8));
            std::thread::yield_now();
        }
        release.store(true, Ordering::SeqCst);
        let old_flag = r.join().unwrap();
        rcu_barrier();
        assert!(
            old_flag.load(Ordering::SeqCst),
            "reclaimed after quiescence"
        );
    }

    #[test]
    fn call_rcu_is_legal_inside_read_section() {
        let g = read_lock();
        let dropped = Arc::new(AtomicBool::new(false));
        defer_drop(Box::new(Tracked(Arc::clone(&dropped))));
        // Our own section pins the epoch: nothing may be reclaimed yet
        // on this core's queue from inside the section.
        drop(g);
        rcu_barrier();
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn spill_probe_forces_blocking_drain() {
        let before = stats_snapshot();
        set_spill_probe(Some(Arc::new(|| true)));
        let dropped = Arc::new(AtomicBool::new(false));
        defer_drop(Box::new(Tracked(Arc::clone(&dropped))));
        set_spill_probe(None);
        assert!(dropped.load(Ordering::SeqCst), "spill drains synchronously");
        let after = stats_snapshot();
        assert!(after.spills > before.spills);
    }

    #[test]
    fn stats_balance_after_barrier() {
        for _ in 0..10 {
            defer_drop(Box::new([0u64; 4]));
        }
        rcu_barrier();
        let s = stats_snapshot();
        assert!(s.call_rcu_calls >= 10);
        // Other tests may be mid-enqueue concurrently, so pending is not
        // asserted to be exactly zero — only that the books balance.
        assert_eq!(
            s.call_rcu_calls,
            s.deferred_freed + s.deferred_pending,
            "every retirement is either freed or still queued"
        );
    }

    #[test]
    fn nested_read_sections() {
        let outer = read_lock();
        let inner = read_lock();
        drop(inner);
        // Outer section still pins the epoch.
        let core = outer.core;
        assert_ne!(READER_EPOCHS[core].load(Ordering::SeqCst), 0);
        drop(outer);
        assert_eq!(READER_EPOCHS[core].load(Ordering::SeqCst), 0);
    }

    #[test]
    fn synchronize_waits_for_reader() {
        let cell = Arc::new(RcuCell::new(1u32));
        let reader_in = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let updated = Arc::new(AtomicBool::new(false));

        let r = {
            let reader_in = Arc::clone(&reader_in);
            let release = Arc::clone(&release);
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let g = read_lock();
                let v = *cell.read(&g);
                reader_in.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                drop(g);
                v
            })
        };
        while !reader_in.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let w = {
            let cell = Arc::clone(&cell);
            let updated = Arc::clone(&updated);
            std::thread::spawn(move || {
                cell.update(2);
                updated.store(true, Ordering::SeqCst);
            })
        };
        // The writer must not finish while the reader is inside.
        for _ in 0..100 {
            std::thread::yield_now();
        }
        assert!(!updated.load(Ordering::SeqCst), "grace period ended early");
        release.store(true, Ordering::SeqCst);
        assert_eq!(r.join().unwrap(), 1);
        w.join().unwrap();
        assert!(updated.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let cell = Arc::new(RcuCell::new(vec![0u64; 8]));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = read_lock();
                        let v = cell.read(&g);
                        // Every snapshot is internally consistent: all
                        // elements equal.
                        assert!(v.windows(2).all(|w| w[0] == w[1]));
                    }
                })
            })
            .collect();
        for i in 1..20 {
            if i % 2 == 0 {
                cell.update(vec![i; 8]);
            } else {
                cell.update_deferred(vec![i; 8]);
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        rcu_barrier();
    }
}
