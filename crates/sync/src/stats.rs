//! Lock contention statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Nominal cost of one failed spin iteration, in cycles: a read of a
/// remote modified cache line on the paper's 48-core machine costs
/// 100–380 cycles depending on distance (§2); each spin retry is one
/// such coherence round-trip, so we charge the on-chip cost.
pub const CYCLES_PER_SPIN_ITERATION: u64 = 100;

/// Counters describing how contended a lock has been.
///
/// The paper attributes scalability collapse to time spent "waiting for
/// and acquiring spin locks and mutexes" (§4.7); these counters let the
/// workloads and the simulator make the same attribution. Updates use
/// relaxed atomics: the counts are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    spin_iterations: AtomicU64,
}

impl LockStats {
    /// Creates zeroed statistics.
    pub const fn new() -> Self {
        Self {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            spin_iterations: AtomicU64::new(0),
        }
    }

    /// Records one acquisition; `spins` is the number of failed attempts
    /// before the lock was obtained (0 means uncontended).
    pub fn record_acquisition(&self, spins: u64) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if spins > 0 {
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.spin_iterations.fetch_add(spins, Ordering::Relaxed);
        }
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to wait at least one spin iteration.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Total spin iterations across all contended acquisitions.
    pub fn spin_iterations(&self) -> u64 {
        self.spin_iterations.load(Ordering::Relaxed)
    }

    /// Estimated cycles burned spinning, charging
    /// [`CYCLES_PER_SPIN_ITERATION`] per failed attempt.
    pub fn spin_cycles(&self) -> u64 {
        self.spin_iterations()
            .saturating_mul(CYCLES_PER_SPIN_ITERATION)
    }

    /// Packages the counters as a named [`pk_obs::Sample`] for the
    /// metrics registry and the contention report.
    pub fn sample(&self, name: impl Into<String>) -> pk_obs::Sample {
        pk_obs::Sample::lock(
            name,
            pk_obs::LockSample {
                acquisitions: self.acquisitions(),
                contended: self.contended(),
                spin_cycles: self.spin_cycles(),
            },
        )
    }

    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        let total = self.acquisitions();
        if total == 0 {
            0.0
        } else {
            self.contended() as f64 / total as f64
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.spin_iterations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_uncontended_and_contended() {
        let s = LockStats::new();
        s.record_acquisition(0);
        s.record_acquisition(5);
        s.record_acquisition(3);
        assert_eq!(s.acquisitions(), 3);
        assert_eq!(s.contended(), 2);
        assert_eq!(s.spin_iterations(), 8);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(LockStats::new().contention_ratio(), 0.0);
    }

    #[test]
    fn sample_carries_the_counters() {
        let s = LockStats::new();
        s.record_acquisition(0);
        s.record_acquisition(4);
        let sample = s.sample("d_lock");
        assert_eq!(sample.name, "d_lock");
        match sample.value {
            pk_obs::MetricValue::Lock(l) => {
                assert_eq!(l.acquisitions, 2);
                assert_eq!(l.contended, 1);
                assert_eq!(l.spin_cycles, 4 * CYCLES_PER_SPIN_ITERATION);
            }
            v => panic!("wrong value kind: {v:?}"),
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = LockStats::new();
        s.record_acquisition(9);
        s.reset();
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.contended(), 0);
        assert_eq!(s.spin_iterations(), 0);
    }
}
