//! MCS queue lock — the scalable spin lock.

use crate::stats::LockStats;
use pk_lockdep::{ClassCell, ClassId, LockKind};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// Per-acquirer queue node. Each waiter spins on the `locked` flag of its
/// *own* node, which is the property that makes MCS scalable: a release
/// touches exactly one waiter's cache line instead of invalidating all of
/// them.
struct Node {
    locked: AtomicBool,
    next: AtomicPtr<Node>,
}

/// An MCS queue lock protecting a `T`.
///
/// Mellor-Crummey & Scott's list-based queue lock, cited by the paper
/// (\[41\]) as the classic fix for non-scalable spin locks: per-acquire
/// interconnect traffic is constant rather than proportional to the number
/// of waiting cores. The workspace uses it as the "scalable lock" arm in
/// lock ablations.
///
/// # Examples
///
/// ```
/// let lock = pk_sync::McsLock::new(0);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct McsLock<T: ?Sized> {
    stats: LockStats,
    class: ClassCell,
    tail: AtomicPtr<Node>,
    value: UnsafeCell<T>,
}

// SAFETY: The queue protocol grants exclusive access to `value`.
unsafe impl<T: ?Sized + Send> Send for McsLock<T> {}
// SAFETY: Mutation only happens through the exclusive guard.
unsafe impl<T: ?Sized + Send> Sync for McsLock<T> {}

impl<T> McsLock<T> {
    /// Creates an unlocked MCS lock containing `value`.
    pub fn new(value: T) -> Self {
        Self {
            stats: LockStats::new(),
            class: ClassCell::new(),
            tail: AtomicPtr::new(ptr::null_mut()),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> McsLock<T> {
    /// Assigns this lock to a `pk-lockdep` class (no-op unless the
    /// `lockdep` feature is enabled).
    pub fn set_class(&self, class: ClassId) {
        self.class.set_class(class);
    }

    /// Acquires the lock, enqueueing behind any existing waiters.
    #[track_caller]
    pub fn lock(&self) -> McsGuard<'_, T> {
        pk_lockdep::acquire(&self.class, LockKind::Mcs, false);
        let node = Box::into_raw(Box::new(Node {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let prev = self.tail.swap(node, Ordering::AcqRel);
        let mut spins = 0u64;
        if !prev.is_null() {
            // SAFETY: `prev` was the queue tail; its owner cannot free it
            // until it has observed and woken its successor, which requires
            // the `next` pointer we are about to publish.
            unsafe { (*prev).next.store(node, Ordering::Release) };
            // SAFETY: `node` is owned by this call until the guard drops.
            while unsafe { (*node).locked.load(Ordering::Acquire) } {
                spins += 1;
                std::hint::spin_loop();
                if spins.is_multiple_of(1024) {
                    std::thread::yield_now();
                }
            }
        }
        self.stats.record_acquisition(spins);
        pk_trace::lock_acquired(&self.class, LockKind::Mcs, spins);
        McsGuard { lock: self, node }
    }

    /// Attempts to acquire the lock only if the queue is empty.
    #[track_caller]
    pub fn try_lock(&self) -> Option<McsGuard<'_, T>> {
        let node = Box::into_raw(Box::new(Node {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.stats.record_acquisition(0);
            pk_lockdep::acquire(&self.class, LockKind::Mcs, true);
            pk_trace::lock_acquired(&self.class, LockKind::Mcs, 0);
            Some(McsGuard { lock: self, node })
        } else {
            // SAFETY: The node was never published; we still own it.
            drop(unsafe { Box::from_raw(node) });
            None
        }
    }

    /// Returns the lock's contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for McsLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("McsLock").field("value", &&*g).finish(),
            None => f.write_str("McsLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for McsLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`McsLock`]; hands the lock to the next waiter on drop.
#[must_use = "dropping the guard immediately releases the lock"]
pub struct McsGuard<'a, T: ?Sized> {
    lock: &'a McsLock<T>,
    node: *mut Node,
}

// SAFETY: The guard represents exclusive ownership of the lock; the raw
// node pointer is only dereferenced by the owning guard.
unsafe impl<T: ?Sized + Send> Send for McsGuard<'_, T> {}

impl<T: ?Sized> Deref for McsGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard holds the lock, so no other reference exists.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for McsGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: The guard holds the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for McsGuard<'_, T> {
    fn drop(&mut self) {
        pk_trace::lock_released(&self.lock.class, LockKind::Mcs);
        pk_lockdep::release(&self.lock.class);
        let node = self.node;
        // SAFETY: `node` is owned by this guard until handoff completes.
        let mut next = unsafe { (*node).next.load(Ordering::Acquire) };
        if next.is_null() {
            // No visible successor: try to swing the tail back to empty.
            if self
                .lock
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: The queue no longer references the node.
                drop(unsafe { Box::from_raw(node) });
                return;
            }
            // A successor is mid-enqueue; wait for it to publish itself.
            loop {
                // SAFETY: As above — the node stays valid until we free it.
                next = unsafe { (*node).next.load(Ordering::Acquire) };
                if !next.is_null() {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        // SAFETY: `next` points to the successor's live node; it cannot be
        // freed while its `locked` flag is still true.
        unsafe { (*next).locked.store(false, Ordering::Release) };
        // SAFETY: After handoff nothing references our node.
        drop(unsafe { Box::from_raw(node) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_increment() {
        let lock = Arc::new(McsLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn try_lock_behaviour() {
        let lock = McsLock::new(7);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert_eq!(*lock.try_lock().unwrap(), 7);
    }

    #[test]
    fn handoff_chain_of_waiters() {
        let lock = Arc::new(McsLock::new(Vec::<usize>::new()));
        let holder = lock.lock();
        let mut handles = Vec::new();
        for id in 0..8 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                lock.lock().push(id);
            }));
        }
        // Give waiters a moment to enqueue, then release.
        std::thread::yield_now();
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        let v = lock.lock();
        assert_eq!(v.len(), 8);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = McsLock::new(String::from("x"));
        assert_eq!(lock.into_inner(), "x");
    }
}
