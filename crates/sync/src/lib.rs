//! Synchronization primitives for the MOSBENCH userspace kernel.
//!
//! The paper's scalability tutorial (§4.1) distinguishes locks by how they
//! behave *under contention*: a Linux spin lock costs "a few cycles if the
//! acquiring core was the previous lock holder, a few hundred cycles if
//! another core last held the lock," and non-scalable spin locks "produce
//! per-acquire interconnect traffic that is proportional to the number of
//! waiting cores" (Mellor-Crummey & Scott). This crate implements the full
//! zoo so the kernel subsystems and simulator can compare them:
//!
//! * [`SpinLock`] — test-and-test-and-set spin lock, the non-scalable
//!   baseline that serializes Exim on the vfsmount table (§5.2).
//! * [`TicketLock`] — FIFO-fair, like Linux's spinlocks of the era, but
//!   still a single contended cache line.
//! * [`McsLock`] — queue lock; waiters spin on local memory, the scalable
//!   alternative the paper cites (\[41\]).
//! * [`SeqLock`] — sequence/generation lock; the lock-free dentry
//!   comparison protocol of §4.4 is built on the same idea.
//! * [`AdaptiveMutex`] — spin-then-yield mutex modelling Linux's adaptive
//!   mutexes, whose starvation under intense contention ruins
//!   PostgreSQL's `lseek` (§5.5).
//! * [`rcu`] — epoch-based read-copy-update, the mechanism behind the
//!   RCU-optimized directory cache (§4.4, \[39\]).
//!
//! Every lock records [`LockStats`] (total vs contended acquisitions) so
//! workloads can attribute time to lock waiting the way the paper does.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod adaptive;
mod mcs;
pub mod rcu;
mod seqlock;
mod spinlock;
mod stats;
mod ticket;

pub use adaptive::{AdaptiveMutex, AdaptiveMutexGuard};
pub use mcs::{McsGuard, McsLock};
pub use seqlock::{GenCounter, SeqLock, SeqLockWriteGuard, SeqReadError};
pub use spinlock::{SpinGuard, SpinLock};
pub use stats::{LockStats, CYCLES_PER_SPIN_ITERATION};
pub use ticket::{TicketGuard, TicketLock};
