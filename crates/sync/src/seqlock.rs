//! Sequence locks and generation counters.
//!
//! The paper's lock-free dentry comparison (§4.4) is an instance of the
//! sequence-lock pattern: writers bump a generation counter around
//! modifications (parking it at a sentinel while the write is in flight),
//! and readers copy fields optimistically, re-checking the generation
//! afterwards. This module provides both the general [`SeqLock`] and the
//! paper's exact zero-sentinel [`GenCounter`] protocol.

use pk_lockdep::{ClassCell, ClassId, LockKind};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when an optimistic read observed a concurrent write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqReadError;

impl fmt::Display for SeqReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("optimistic read raced with a writer")
    }
}

impl std::error::Error for SeqReadError {}

/// A sequence lock over a `Copy` value.
///
/// Readers never block writers and never write shared memory — exactly the
/// property that lets many cores perform lookups "for the same directory
/// entries without serializing" (§4.4). Writers must be externally
/// serialized (in the kernel, by the per-object spin lock).
///
/// # Examples
///
/// ```
/// let sl = pk_sync::SeqLock::new((1u32, 2u32));
/// assert_eq!(sl.read(), (1, 2));
/// *sl.write() = (3, 4);
/// assert_eq!(sl.read(), (3, 4));
/// ```
pub struct SeqLock<T> {
    seq: AtomicU64,
    class: ClassCell,
    value: UnsafeCell<T>,
}

// SAFETY: Readers copy the value only after validating no writer was
// active; writers require `&mut`-like external serialization via the write
// guard which spins out concurrent writers.
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}
// SAFETY: See above — torn reads are detected and retried, never returned.
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Creates a sequence lock containing `value`.
    pub const fn new(value: T) -> Self {
        Self {
            seq: AtomicU64::new(0),
            class: ClassCell::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// Attempts one optimistic read.
    pub fn try_read(&self) -> Result<T, SeqReadError> {
        let start = self.seq.load(Ordering::Acquire);
        if !start.is_multiple_of(2) {
            return Err(SeqReadError);
        }
        // SAFETY: A torn read is possible here but the copy is of plain
        // bytes of a `Copy` type and is discarded unless the sequence
        // check below proves no writer was active during the copy.
        let value = unsafe { std::ptr::read_volatile(self.value.get()) };
        std::sync::atomic::fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) == start {
            Ok(value)
        } else {
            Err(SeqReadError)
        }
    }

    /// Reads the value, retrying until a consistent snapshot is obtained.
    pub fn read(&self) -> T {
        loop {
            if let Ok(v) = self.try_read() {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Assigns this lock's write side to a `pk-lockdep` class (no-op
    /// unless the `lockdep` feature is enabled). Optimistic reads are
    /// not tracked: they take no lock and cannot deadlock.
    pub fn set_class(&self, class: ClassId) {
        self.class.set_class(class);
    }

    /// Begins a write, spinning out any concurrent writer.
    #[track_caller]
    pub fn write(&self) -> SeqLockWriteGuard<'_, T> {
        pk_lockdep::acquire(&self.class, LockKind::SeqWrite, false);
        loop {
            let cur = self.seq.load(Ordering::Relaxed);
            if cur.is_multiple_of(2)
                && self
                    .seq
                    .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                pk_trace::lock_acquired(&self.class, LockKind::SeqWrite, 0);
                return SeqLockWriteGuard { lock: self };
            }
            std::hint::spin_loop();
        }
    }

    /// Returns the current sequence number (even when no write is active).
    pub fn sequence(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for SeqLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqLock")
            .field("value", &self.read())
            .finish()
    }
}

/// Write guard for [`SeqLock`]; publishes the new value on drop.
#[must_use = "dropping the guard immediately ends the write"]
pub struct SeqLockWriteGuard<'a, T: Copy> {
    lock: &'a SeqLock<T>,
}

impl<T: Copy> std::ops::Deref for SeqLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The odd sequence number excludes other writers, and
        // readers validate against it.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: Copy> std::ops::DerefMut for SeqLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As above; the guard is the unique writer.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: Copy> Drop for SeqLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        pk_trace::lock_released(&self.lock.class, LockKind::SeqWrite);
        pk_lockdep::release(&self.lock.class);
        self.lock.seq.fetch_add(1, Ordering::Release);
    }
}

/// The paper's generation-counter protocol (§4.4), with 0 as the
/// "modification in progress" sentinel.
///
/// The PK kernel "increments [the generation counter] after every
/// modification to a directory entry" and "temporarily sets the generation
/// counter to 0" while the dentry spin lock is held. Readers:
///
/// 1. If the generation is 0, fall back to locking; otherwise remember it.
/// 2. Copy the protected fields.
/// 3. Re-check the generation; on mismatch, fall back to locking.
///
/// # Examples
///
/// ```
/// use pk_sync::GenCounter;
/// let gen = GenCounter::new();
/// let snap = gen.begin_read().unwrap();
/// assert!(gen.validate(snap));
/// gen.begin_write();
/// assert!(gen.begin_read().is_none()); // writer active → fall back
/// gen.end_write();
/// assert!(!gen.validate(snap)); // stale snapshot is rejected
/// ```
#[derive(Debug)]
pub struct GenCounter {
    generation: AtomicU64,
}

impl Default for GenCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl GenCounter {
    /// Creates a counter at generation 1 (0 is reserved for "writing").
    pub const fn new() -> Self {
        Self {
            generation: AtomicU64::new(1),
        }
    }

    /// Step 1 of the read protocol: returns the current generation, or
    /// `None` if a modification is in progress (caller must fall back to
    /// the locking protocol).
    pub fn begin_read(&self) -> Option<u64> {
        match self.generation.load(Ordering::Acquire) {
            0 => None,
            g => Some(g),
        }
    }

    /// Step 3 of the read protocol: returns whether the generation still
    /// matches the remembered snapshot (i.e. no writer intervened).
    pub fn validate(&self, snapshot: u64) -> bool {
        std::sync::atomic::fence(Ordering::Acquire);
        self.generation.load(Ordering::Acquire) == snapshot
    }

    /// Marks a modification as in progress (caller holds the object lock).
    ///
    /// Returns the generation that was current, for use by [`end_write`].
    ///
    /// [`end_write`]: GenCounter::end_write
    pub fn begin_write(&self) -> u64 {
        self.generation.swap(0, Ordering::AcqRel)
    }

    /// Completes a modification, advancing to a fresh non-zero generation.
    pub fn end_write(&self) {
        // Generation numbers only need to be distinct from all snapshots
        // still in flight; a global monotonic source provides that.
        static NEXT: AtomicU64 = AtomicU64::new(2);
        let g = NEXT.fetch_add(1, Ordering::Relaxed);
        self.generation.store(g.max(1), Ordering::Release);
    }

    /// Returns whether a write is currently in progress.
    pub fn write_in_progress(&self) -> bool {
        self.generation.load(Ordering::Acquire) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_returns_initial_value() {
        let sl = SeqLock::new(42u64);
        assert_eq!(sl.read(), 42);
        assert_eq!(sl.try_read(), Ok(42));
    }

    #[test]
    fn write_bumps_sequence_twice() {
        let sl = SeqLock::new(0u32);
        let s0 = sl.sequence();
        *sl.write() = 9;
        assert_eq!(sl.sequence(), s0 + 2);
        assert_eq!(sl.read(), 9);
    }

    #[test]
    fn readers_never_observe_torn_pairs() {
        // Writer keeps the two halves equal; readers must never see them
        // differ.
        let sl = Arc::new(SeqLock::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let sl = Arc::clone(&sl);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    *sl.write() = (i, i);
                }
            })
        };
        for _ in 0..100_000 {
            let (a, b) = sl.read();
            assert_eq!(a, b);
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn gen_counter_protocol() {
        let g = GenCounter::new();
        let snap = g.begin_read().expect("no writer yet");
        assert!(g.validate(snap));
        let saved = g.begin_write();
        assert_eq!(saved, snap);
        assert!(g.write_in_progress());
        assert!(g.begin_read().is_none());
        assert!(!g.validate(snap));
        g.end_write();
        assert!(!g.write_in_progress());
        let snap2 = g.begin_read().unwrap();
        assert_ne!(snap2, 0);
        assert_ne!(snap2, snap);
    }
}
