//! Adaptive mutex: spin briefly, then yield the CPU.

use crate::stats::LockStats;
use pk_lockdep::{ClassCell, ClassId, LockKind};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A spin-then-yield mutex modelling Linux's adaptive mutexes.
///
/// Per the paper's footnote: "a thread initially busy waits to acquire a
/// mutex, but if the wait time is long the thread yields the CPU." The
/// acquisition order is *not* fair — a thread that just released (or just
/// arrived, cache-hot) can reacquire immediately while older waiters are
/// still parked. Under intense contention this causes the starvation the
/// paper measures in PostgreSQL's `lseek` path, where system time explodes
/// from 1.7 µs/query at 32 cores to 322 µs/query at 48 (§5.5).
///
/// The mutex tracks [`LockStats`] plus a starvation diagnostic: the
/// maximum number of failed wake-ups any single acquisition endured.
///
/// # Examples
///
/// ```
/// let m = pk_sync::AdaptiveMutex::new(10);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 11);
/// ```
pub struct AdaptiveMutex<T: ?Sized> {
    stats: LockStats,
    class: ClassCell,
    max_wait_rounds: AtomicU64,
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: Exclusive access is mediated by `locked`.
unsafe impl<T: ?Sized + Send> Send for AdaptiveMutex<T> {}
// SAFETY: Mutation only occurs through the exclusive guard.
unsafe impl<T: ?Sized + Send> Sync for AdaptiveMutex<T> {}

/// How many busy-wait iterations before yielding (the "adaptive" part).
const SPIN_BUDGET: u64 = 128;

impl<T> AdaptiveMutex<T> {
    /// Creates an unlocked mutex containing `value`.
    pub const fn new(value: T) -> Self {
        Self {
            stats: LockStats::new(),
            class: ClassCell::new(),
            max_wait_rounds: AtomicU64::new(0),
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> AdaptiveMutex<T> {
    /// Assigns this mutex to a `pk-lockdep` class (no-op unless the
    /// `lockdep` feature is enabled).
    pub fn set_class(&self, class: ClassId) {
        self.class.set_class(class);
    }

    /// Acquires the mutex: spins up to a budget, then yields in a loop.
    #[track_caller]
    pub fn lock(&self) -> AdaptiveMutexGuard<'_, T> {
        pk_lockdep::acquire(&self.class, LockKind::Blocking, false);
        let mut spins = 0u64;
        let mut yield_rounds = 0u64;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.stats.record_acquisition(spins + yield_rounds);
                self.max_wait_rounds
                    .fetch_max(yield_rounds, Ordering::Relaxed);
                pk_trace::lock_acquired(&self.class, LockKind::Blocking, spins + yield_rounds);
                return AdaptiveMutexGuard { lock: self };
            }
            if spins < SPIN_BUDGET {
                spins += 1;
                std::hint::spin_loop();
            } else {
                yield_rounds += 1;
                std::thread::yield_now();
            }
        }
    }

    /// Attempts to acquire the mutex without waiting.
    #[track_caller]
    pub fn try_lock(&self) -> Option<AdaptiveMutexGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.stats.record_acquisition(0);
            pk_lockdep::acquire(&self.class, LockKind::Blocking, true);
            pk_trace::lock_acquired(&self.class, LockKind::Blocking, 0);
            Some(AdaptiveMutexGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns the mutex's contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Returns the worst yield-round count any acquisition suffered — the
    /// starvation diagnostic.
    pub fn max_wait_rounds(&self) -> u64 {
        self.max_wait_rounds.load(Ordering::Relaxed)
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for AdaptiveMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f
                .debug_struct("AdaptiveMutex")
                .field("value", &&*g)
                .finish(),
            None => f.write_str("AdaptiveMutex(<locked>)"),
        }
    }
}

impl<T: Default> Default for AdaptiveMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`AdaptiveMutex`].
#[must_use = "dropping the guard immediately releases the mutex"]
pub struct AdaptiveMutexGuard<'a, T: ?Sized> {
    lock: &'a AdaptiveMutex<T>,
}

impl<T: ?Sized> Deref for AdaptiveMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard holds the mutex.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for AdaptiveMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: The guard holds the mutex exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for AdaptiveMutexGuard<'_, T> {
    fn drop(&mut self) {
        pk_trace::lock_released(&self.lock.class, LockKind::Blocking);
        pk_lockdep::release(&self.lock.class);
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_holds() {
        let m = Arc::new(AdaptiveMutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn try_lock_respects_holder() {
        let m = AdaptiveMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn stats_track_contention() {
        let m = AdaptiveMutex::new(());
        drop(m.lock());
        drop(m.lock());
        assert_eq!(m.stats().acquisitions(), 2);
        assert_eq!(m.stats().contended(), 0);
        assert_eq!(m.max_wait_rounds(), 0);
    }
}
