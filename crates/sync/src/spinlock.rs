//! Test-and-test-and-set spin lock — the non-scalable baseline.

use crate::stats::LockStats;
use pk_lockdep::{ClassCell, ClassId, LockKind};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spin lock protecting a `T`.
///
/// This is the paper's model of a *non-scalable* lock: every waiter spins
/// on the same cache line, so each release triggers interconnect traffic
/// proportional to the number of waiters (§4.1). The stock kernel's
/// vfsmount-table lock that collapses Exim (§5.2) behaves like this.
///
/// Waiters first spin on a plain load (local cache) and only attempt the
/// atomic swap when the lock looks free — the classic TTAS refinement.
/// That keeps the userspace implementation honest without changing the
/// fundamental all-waiters-on-one-line behaviour.
///
/// # Examples
///
/// ```
/// let lock = pk_sync::SpinLock::new(vec![1, 2]);
/// lock.lock().push(3);
/// assert_eq!(lock.lock().len(), 3);
/// ```
pub struct SpinLock<T: ?Sized> {
    stats: LockStats,
    class: ClassCell,
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: The lock provides exclusive access to `value`; sharing the lock
// across threads is sound whenever sending the protected value is.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
// SAFETY: Only one thread can observe `&mut T` at a time (guard holds the
// lock), so `&SpinLock<T>` is shareable whenever `T: Send`.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked spin lock containing `value`.
    pub const fn new(value: T) -> Self {
        Self {
            stats: LockStats::new(),
            class: ClassCell::new(),
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Assigns this lock to a `pk-lockdep` class (no-op unless the
    /// `lockdep` feature is enabled).
    pub fn set_class(&self, class: ClassId) {
        self.class.set_class(class);
    }

    /// Acquires the lock, spinning until it is available.
    #[track_caller]
    pub fn lock(&self) -> SpinGuard<'_, T> {
        pk_lockdep::acquire(&self.class, LockKind::Spin, false);
        let mut spins = 0u64;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.stats.record_acquisition(spins);
                pk_trace::lock_acquired(&self.class, LockKind::Spin, spins);
                return SpinGuard { lock: self };
            }
            // Spin on a plain load until the line looks free (TTAS).
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                std::hint::spin_loop();
                if spins.is_multiple_of(1024) {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Attempts to acquire the lock without spinning.
    #[track_caller]
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.stats.record_acquisition(0);
            pk_lockdep::acquire(&self.class, LockKind::Spin, true);
            pk_trace::lock_acquired(&self.class, LockKind::Spin, 0);
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Returns the lock's contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("value", &&*g).finish(),
            None => f.write_str("SpinLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`SpinLock`]; releases the lock on drop.
#[must_use = "dropping the guard immediately releases the lock"]
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard holds the lock, so no other reference exists.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: The guard holds the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        pk_trace::lock_released(&self.lock.class, LockKind::Spin);
        pk_lockdep::release(&self.lock.class);
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_exclusive_access() {
        let lock = SpinLock::new(0u32);
        {
            let mut g = lock.lock();
            *g += 1;
            assert!(lock.try_lock().is_none());
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
        assert_eq!(*lock.lock(), 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let lock = Arc::new(SpinLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
        assert_eq!(lock.stats().acquisitions(), 40_001);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = SpinLock::new(String::from("a"));
        lock.get_mut().push('b');
        assert_eq!(lock.into_inner(), "ab");
    }

    #[test]
    fn debug_formats() {
        let lock = SpinLock::new(5);
        assert!(format!("{lock:?}").contains('5'));
        let _g = lock.lock();
        assert!(format!("{lock:?}").contains("locked"));
    }
}
