//! FIFO ticket lock.

use crate::stats::LockStats;
use pk_lockdep::{ClassCell, ClassId, LockKind};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// A FIFO ticket lock protecting a `T`.
///
/// Linux spinlocks of the paper's era (2.6.35) are ticket locks: arrivals
/// take a ticket and wait until the "now serving" counter reaches it.
/// Fairness prevents starvation, but all waiters still spin on the single
/// now-serving word, so the lock remains non-scalable under contention —
/// each handoff invalidates every waiter's cache line.
///
/// # Examples
///
/// ```
/// let lock = pk_sync::TicketLock::new(0);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct TicketLock<T: ?Sized> {
    stats: LockStats,
    class: ClassCell,
    next_ticket: AtomicU64,
    now_serving: AtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: As for `SpinLock` — the lock serializes access to `value`.
unsafe impl<T: ?Sized + Send> Send for TicketLock<T> {}
// SAFETY: Mutation only happens through the exclusive guard.
unsafe impl<T: ?Sized + Send> Sync for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// Creates an unlocked ticket lock containing `value`.
    pub const fn new(value: T) -> Self {
        Self {
            stats: LockStats::new(),
            class: ClassCell::new(),
            next_ticket: AtomicU64::new(0),
            now_serving: AtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> TicketLock<T> {
    /// Assigns this lock to a `pk-lockdep` class (no-op unless the
    /// `lockdep` feature is enabled).
    pub fn set_class(&self, class: ClassId) {
        self.class.set_class(class);
    }

    /// Acquires the lock, waiting in FIFO order.
    #[track_caller]
    pub fn lock(&self) -> TicketGuard<'_, T> {
        pk_lockdep::acquire(&self.class, LockKind::Ticket, false);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u64;
        while self.now_serving.load(Ordering::Acquire) != ticket {
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        self.stats.record_acquisition(spins);
        pk_trace::lock_acquired(&self.class, LockKind::Ticket, spins);
        TicketGuard { lock: self }
    }

    /// Attempts to take the lock only if no one is waiting or holding it.
    #[track_caller]
    pub fn try_lock(&self) -> Option<TicketGuard<'_, T>> {
        let serving = self.now_serving.load(Ordering::Acquire);
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.stats.record_acquisition(0);
            pk_lockdep::acquire(&self.class, LockKind::Ticket, true);
            pk_trace::lock_acquired(&self.class, LockKind::Ticket, 0);
            Some(TicketGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns the lock's contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Returns how many tickets are waiting (including the holder).
    pub fn queue_depth(&self) -> u64 {
        self.next_ticket
            .load(Ordering::Relaxed)
            .saturating_sub(self.now_serving.load(Ordering::Relaxed))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TicketLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("TicketLock").field("value", &&*g).finish(),
            None => f.write_str("TicketLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for TicketLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`TicketLock`]; advances `now_serving` on drop.
#[must_use = "dropping the guard immediately releases the lock"]
pub struct TicketGuard<'a, T: ?Sized> {
    lock: &'a TicketLock<T>,
}

impl<T: ?Sized> Deref for TicketGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard holds the lock, so no other reference exists.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for TicketGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: The guard holds the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for TicketGuard<'_, T> {
    fn drop(&mut self) {
        pk_trace::lock_released(&self.lock.class, LockKind::Ticket);
        pk_lockdep::release(&self.lock.class);
        self.lock.now_serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serializes_increments() {
        let lock = Arc::new(TicketLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = TicketLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn queue_depth_counts_holder() {
        let lock = TicketLock::new(());
        assert_eq!(lock.queue_depth(), 0);
        let g = lock.lock();
        assert_eq!(lock.queue_depth(), 1);
        drop(g);
        assert_eq!(lock.queue_depth(), 0);
    }

    #[test]
    fn fifo_order_is_respected() {
        // Take the lock, queue two waiters in a known arrival order, and
        // check they are served in that order.
        let lock = Arc::new(TicketLock::new(Vec::new()));
        let first = lock.lock();
        let mut handles = Vec::new();
        for id in 0..2 {
            // Ensure arrival order by waiting until the previous waiter is
            // queued before spawning the next.
            let lock2 = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                lock2.lock().push(id);
            }));
            while lock.queue_depth() < 2 + id as u64 {
                std::thread::yield_now();
            }
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), vec![0, 1]);
    }
}
