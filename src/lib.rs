//! MOSBENCH-rs: a Rust reproduction of *An Analysis of Linux Scalability
//! to Many Cores* (Boyd-Wickizer et al., OSDI 2010).
//!
//! This umbrella crate re-exports every workspace crate under one roof so
//! examples and downstream users can depend on a single package:
//!
//! * [`sloppy`] — sloppy counters, the paper's new technique (§4.3), plus
//!   the comparison counters (SNZI, distributed, approximate).
//! * [`percpu`] / [`sync`] — per-CPU infrastructure and the lock zoo.
//! * [`vfs`] / [`net`] / [`mm`] / [`proc`] — the kernel subsystems the
//!   paper's 16 fixes live in, each with stock and PK variants.
//! * [`kernel`] — the `Kernel` facade with per-fix [`kernel::KernelConfig`]
//!   toggles (stock vs PK presets).
//! * [`sim`] — the deterministic 48-core machine simulator used to
//!   regenerate the paper's figures.
//! * [`mapreduce`] — the Metis-like MapReduce library (§3.7).
//! * [`workloads`] — the seven MOSBENCH application models (§3, §5).
//! * [`fault`] — the deterministic fault-injection plane wired through
//!   every subsystem (seeded schedules, typed errors, bounded retry).

pub use pk_fault as fault;
pub use pk_kernel as kernel;
pub use pk_mapreduce as mapreduce;
pub use pk_mm as mm;
pub use pk_net as net;
pub use pk_percpu as percpu;
pub use pk_proc as proc;
pub use pk_sim as sim;
pub use pk_sloppy as sloppy;
pub use pk_sync as sync;
pub use pk_vfs as vfs;
pub use pk_workloads as workloads;
