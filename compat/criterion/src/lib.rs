//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Benchmarks keep their exact source shape (`criterion_group!`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`) but run
//! against a simple wall-clock harness: warm up, then time batches
//! until the measurement window closes, and report the mean ns/iter
//! and the best (minimum) batch as a noise floor. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt;
use std::hint;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use hint::black_box;

pub mod measurement {
    /// Wall-clock time measurement (the only one supported).
    pub struct WallTime;
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` iterations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
            sample_size: 20,
        }
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            config: self.config.clone(),
            group: name.into(),
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config.clone();
        run_benchmark(&config, None, &id.into(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    config: Config,
    group: String,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.config, Some(&self.group), &id.into(), f);
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F>(config: &Config, group: Option<&str>, id: &BenchmarkId, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full_name = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };

    // Warm up and size the batch so one batch is ~1/sample_size of the
    // measurement window.
    let mut batch = 1u64;
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_nanos(50);
    while warm_up_start.elapsed() < config.warm_up_time {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / batch as u32;
        }
        batch = batch.saturating_mul(2).min(1 << 24);
    }
    let target_batch_time = config.measurement_time / config.sample_size as u32;
    let batch =
        (target_batch_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    let measure_start = Instant::now();
    let mut samples = 0usize;
    while samples < config.sample_size && measure_start.elapsed() < config.measurement_time * 2 {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
        best = best.min(b.elapsed / batch as u32);
        samples += 1;
    }

    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!(
        "{full_name}: {mean_ns:>10.1} ns/iter (best {} ns)",
        best.as_nanos()
    );
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a benchmark binary, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
