//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the subset of proptest it uses: range/tuple/vec strategies,
//! `prop_map`, `prop_oneof!`, `any::<T>()`, and the `proptest!` macro.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (every
//!   generated argument is `Debug`-printed) but is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so a failure reproduces on every run and CI never
//!   flakes on a fresh seed.
//! - Default case count is 64 (not 256) to keep `cargo test` fast; use
//!   `ProptestConfig::with_cases` to raise it per test.

pub mod test_runner {
    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Error type test bodies may early-return with `return Ok(())` /
    /// `Err(...)`, mirroring `proptest::test_runner::TestCaseError`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xoshiro256** generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test name so every run of a given
        /// test draws the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then splitmix64 state expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `new_value` draws a
    /// concrete value directly and no shrinking occurs.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn new_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// `options` must be nonempty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.next_u64() as u128 % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Strategy for the full domain of `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Returns the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements
    /// from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespaced strategies (`prop::bool::ANY`, ...).
pub mod prop {
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// The full-domain bool strategy.
        pub struct BoolAny;

        /// Mirrors `proptest::bool::ANY`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each argument is drawn from its strategy for
/// every generated case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __inputs = || {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!("\n  ", stringify!($arg), " = "));
                            s.push_str(&format!("{:?}", $arg));
                        )+
                        s
                    };
                    let _ = &__inputs;
                    $crate::__with_case_context(__case, __inputs(), || {
                        $body
                        Ok(())
                    });
                }
            }
        )*
    };
}

#[doc(hidden)]
pub fn __with_case_context<F>(case: u32, inputs: String, f: F)
where
    F: FnOnce() -> Result<(), test_runner::TestCaseError>,
{
    // Report the case description on failure: with no shrinking, the
    // generated inputs plus the deterministic seed are the whole
    // reproduction recipe.
    let run = std::panic::AssertUnwindSafe(f);
    match std::panic::catch_unwind(run) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => panic!("proptest: case #{case} failed: {e}\ninputs:{inputs}"),
        Err(e) => {
            eprintln!("proptest: failing case #{case} with inputs:{inputs}");
            std::panic::resume_unwind(e);
        }
    }
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..200 {
            let v = (3..9usize).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::collection::vec(0..5u8, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let s = prop_oneof![(0..1u8).prop_map(|_| 0u8), (0..1u8).prop_map(|_| 1u8)];
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0..10i64, ys in crate::collection::vec(0..4u8, 1..5)) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(ys.iter().filter(|&&y| y < 4).count(), ys.len());
        }
    }
}
