//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `bytes` API it actually uses: an
//! immutable, cheaply cloneable byte buffer. Static slices are stored
//! without allocating; owned data is reference-counted so `clone()` is
//! an `Arc` bump, matching the cost model the real crate provides.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone, Default)]
enum Repr {
    #[default]
    Empty,
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer without allocating.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Empty }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Empty => &[],
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(v.into()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_agree() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..4], &[1, 1, 1, 1]);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
