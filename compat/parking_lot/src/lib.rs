//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()`, `read()`, and `write()` return guards directly instead of
//! `Result`s. A poisoned std lock means a thread panicked while holding
//! it; parking_lot semantics are to carry on, so we do the same by
//! unwrapping into the inner guard either way.

use std::sync::{self, TryLockError};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_try_lock() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
