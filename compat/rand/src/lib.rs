//! Offline, API-compatible subset of the `rand` crate.
//!
//! Provides the `Rng`/`SeedableRng` traits and a `SmallRng` backed by
//! xoshiro256**, which is the same generator family the real
//! `rand::rngs::SmallRng` uses on 64-bit targets. Determinism matters
//! more than distribution quality here: the discrete-event simulator
//! seeds it explicitly so that `(net, cores, ops, seed)` always
//! reproduces the same run.

use std::ops::Range;

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator.
pub trait Sample: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe core of a generator: produce the next 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    ///
    /// For `f64` the result is uniform in `[0, 1)`, like the real crate's
    /// `Standard` distribution.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

impl Sample for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits, as in rand's Standard distribution.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types supporting uniform range sampling.
pub trait UniformRange: Sized {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, per the xoshiro authors'
            // recommendation, so similar seeds diverge immediately.
            let mut state = seed;
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
        }
    }
}
