//! Cross-crate integration: the assembled kernel behaving as one system.

use mosbench::kernel::{FixId, Kernel, KernelConfig, FIXES};
use mosbench::percpu::CoreId;
use mosbench::proc::Pid;
use mosbench::vfs::{InodeKind, VfsError, Whence};

/// The full Exim-shaped pipeline — forks, spool churn, mailbox appends,
/// logging — must leave the system clean on both kernels.
#[test]
fn mail_pipeline_leaves_no_residue() {
    for cfg in [KernelConfig::stock(4), KernelConfig::pk(4)] {
        let k = Kernel::new(cfg);
        let core = CoreId(1);
        k.vfs().mkdir_p("/var/spool", core).unwrap();
        k.vfs().mkdir_p("/var/mail", core).unwrap();
        for msg in 0..25 {
            let conn = k.fork(Pid(1), core).unwrap();
            let spool = format!("/var/spool/m{msg}");
            k.vfs().write_file(&spool, b"body", core).unwrap();
            let mbox = k.vfs().create(&format!("/var/mail/u{msg}"), core).unwrap();
            mbox.append(b"body").unwrap();
            k.vfs().close(&mbox, core);
            k.vfs().unlink(&spool, core).unwrap();
            k.exit(conn, core).unwrap();
        }
        assert_eq!(k.procs().len(), 1, "all processes reaped");
        assert_eq!(k.vfs().superblock().open_files(), 0, "all files closed");
        assert_eq!(
            k.vfs().stat("/var/spool", core).unwrap().kind,
            InodeKind::Dir
        );
        // The spool directory is empty again.
        assert_eq!(
            k.vfs().stat("/var/spool/m0", core).unwrap_err(),
            VfsError::NotFound
        );
    }
}

/// Every one of the 16 fixes can be enabled in isolation without
/// changing functional behaviour — the fixes are performance-only.
#[test]
fn each_fix_is_semantically_invisible() {
    let run = |cfg: KernelConfig| -> Vec<u8> {
        let k = Kernel::new(cfg);
        let core = CoreId(0);
        k.vfs().mkdir_p("/d/e", core).unwrap();
        k.vfs().write_file("/d/e/f", b"hello world", core).unwrap();
        let file = k.vfs().open("/d/e/f", core).unwrap();
        file.lseek(-5, Whence::End).unwrap();
        let tail = file.read(5).unwrap();
        k.vfs().close(&file, core);
        k.vfs().rename("/d/e/f", "/d/g", core).unwrap();
        let mut out = k.vfs().read_file("/d/g", core).unwrap();
        out.extend(tail);
        k.vfs().unlink("/d/g", core).unwrap();
        out
    };
    let baseline = run(KernelConfig::stock(4));
    assert_eq!(baseline, b"hello worldworld");
    for fix in FIXES {
        let cfg = KernelConfig::stock(4).with_fix(fix.id, true);
        assert_eq!(run(cfg), baseline, "fix {:?} changed behaviour", fix.id);
        // And disabling just one from PK.
        let cfg = KernelConfig::pk(4).with_fix(fix.id, false);
        assert_eq!(
            run(cfg),
            baseline,
            "removing {:?} changed behaviour",
            fix.id
        );
    }
}

/// The lseek fix specifically: same results, different instrumentation.
#[test]
fn lseek_fix_changes_only_the_path_taken() {
    let stock = Kernel::new(KernelConfig::stock(2));
    let pk = Kernel::new(KernelConfig::stock(2).with_fix(FixId::AtomicLseek, true));
    for k in [&stock, &pk] {
        let core = CoreId(0);
        k.vfs().write_file("/t", b"0123456789", core).unwrap();
        let f = k.vfs().open("/t", core).unwrap();
        assert_eq!(f.lseek(0, Whence::End).unwrap(), 10);
        k.vfs().close(&f, core);
    }
    let s = stock.vfs().stats();
    let p = pk.vfs().stats();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(s.lseek_mutex_acquisitions.load(Relaxed), 1);
    assert_eq!(s.lseek_atomic_reads.load(Relaxed), 0);
    assert_eq!(p.lseek_mutex_acquisitions.load(Relaxed), 0);
    assert_eq!(p.lseek_atomic_reads.load(Relaxed), 1);
}

/// Network + VFS under one kernel: an HTTP-ish accept/stat/read flow.
#[test]
fn accept_and_serve_across_subsystems() {
    let k = Kernel::new(KernelConfig::pk(4));
    let core = CoreId(2);
    k.vfs().mkdir_p("/www", core).unwrap();
    k.vfs()
        .write_file("/www/i.html", &[b'x'; 300], core)
        .unwrap();
    k.net().listen(80);
    let flow = mosbench::net::FlowHash {
        src_ip: 9,
        src_port: 1234,
        dst_ip: 1,
        dst_port: 80,
    };
    assert!(k.net().incoming_connection(80, flow));
    let steered = CoreId(k.net().nic().steer(&flow));
    let conn = k.net().accept(80, steered).expect("backlogged connection");
    assert!(conn.local);
    let st = k.vfs().stat("/www/i.html", steered).unwrap();
    assert_eq!(st.size, 300);
    let f = k.vfs().open("/www/i.html", steered).unwrap();
    assert_eq!(f.read_at(0, 300).unwrap().len(), 300);
    k.vfs().close(&f, steered);
}

/// Remount read-only interacts correctly with in-flight opens from any
/// core (the reason the open-file lists exist at all).
#[test]
fn remount_read_only_scans_per_core_lists() {
    let k = Kernel::new(KernelConfig::pk(8));
    k.vfs().write_file("/f", b"x", CoreId(0)).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|c| k.vfs().open("/f", CoreId(c)).unwrap())
        .collect();
    assert_eq!(
        k.vfs().superblock().remount_read_only(),
        Err(VfsError::Busy),
        "files open on other cores must block remount"
    );
    for (c, f) in handles.iter().enumerate() {
        // Close half on a different core (the expensive cross-core case).
        k.vfs().close(f, CoreId((c + 4) % 8));
    }
    k.vfs().superblock().remount_read_only().unwrap();
    assert_eq!(
        k.vfs().write_file("/g", b"y", CoreId(1)).unwrap_err(),
        VfsError::ReadOnly
    );
}

/// Per-fix lowering reaches the right subsystem: the config matrix is
/// wired through end to end.
#[test]
fn fix_lowering_reaches_subsystems() {
    let cfg = KernelConfig::stock(48)
        .with_fix(FixId::SloppyDentryRefs, true)
        .with_fix(FixId::LocalDmaBuffers, true)
        .with_fix(FixId::SuperPageFineLocking, true);
    assert!(cfg.vfs().sloppy_dentry_refs);
    assert!(!cfg.vfs().lockfree_dlookup);
    assert!(cfg.net().local_dma_alloc);
    assert!(!cfg.net().percore_accept_queues);
    assert!(cfg.mm().per_mapping_superpage_mutex);
    assert!(!cfg.mm().nocache_superpage_zeroing);
    assert_eq!(cfg.enabled_count(), 3);
}
