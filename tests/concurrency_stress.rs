//! Real-thread stress across the substrates: the concurrency layer must
//! stay correct under genuine parallel hammering, not just the model.

use mosbench::kernel::{Kernel, KernelConfig};
use mosbench::percpu::CoreId;
use mosbench::sloppy::SloppyCounter;
use mosbench::vfs::VfsError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn sloppy_counter_under_thread_churn() {
    let c = Arc::new(SloppyCounter::new(8));
    let acquired = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..8 {
            let c = Arc::clone(&c);
            let acquired = Arc::clone(&acquired);
            s.spawn(move || {
                for i in 0..20_000u64 {
                    let core = CoreId(t);
                    c.acquire(core, 1 + (i % 3) as i64);
                    acquired.fetch_add(1 + i % 3, Ordering::Relaxed);
                    // Release on a rotating core: cross-core migration.
                    c.release(CoreId((t + (i % 8) as usize) % 8), 1 + (i % 3) as i64);
                }
            });
        }
    });
    assert_eq!(c.in_use(), 0);
    assert_eq!(c.reconcile(), 0);
    assert!(acquired.load(Ordering::Relaxed) > 0);
}

#[test]
fn vfs_parallel_create_read_unlink_across_kernels() {
    for cfg in [KernelConfig::stock(8), KernelConfig::pk(8)] {
        let k = Arc::new(Kernel::new(cfg));
        k.vfs().mkdir_p("/stress", CoreId(0)).unwrap();
        let errors = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..8 {
                let k = Arc::clone(&k);
                let errors = Arc::clone(&errors);
                s.spawn(move || {
                    let core = CoreId(t);
                    for i in 0..100 {
                        let path = format!("/stress/t{t}-{i}");
                        if k.vfs().write_file(&path, b"data", core).is_err()
                            || k.vfs().read_file(&path, core).as_deref() != Ok(b"data")
                            || k.vfs().unlink(&path, core).is_err()
                        {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(errors.load(Ordering::Relaxed), 0);
        assert_eq!(k.vfs().superblock().open_files(), 0);
        // The directory is empty again: one inode for /, one for /stress.
        assert_eq!(k.vfs().tmpfs().inode_count(), 2);
    }
}

#[test]
fn racing_creates_of_the_same_name_yield_one_winner() {
    let k = Arc::new(Kernel::new(KernelConfig::pk(8)));
    let wins = Arc::new(AtomicU64::new(0));
    let losses = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..8 {
            let k = Arc::clone(&k);
            let wins = Arc::clone(&wins);
            let losses = Arc::clone(&losses);
            s.spawn(move || match k.vfs().create("/unique", CoreId(t)) {
                Ok(f) => {
                    wins.fetch_add(1, Ordering::Relaxed);
                    k.vfs().close(&f, CoreId(t));
                }
                Err(VfsError::Exists) => {
                    losses.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("unexpected error: {e}"),
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), 1);
    assert_eq!(losses.load(Ordering::Relaxed), 7);
}

#[test]
fn parallel_lookups_with_concurrent_renames_never_see_garbage() {
    let k = Arc::new(Kernel::new(KernelConfig::pk(8)));
    let core0 = CoreId(0);
    k.vfs().mkdir_p("/dir", core0).unwrap();
    for i in 0..16 {
        k.vfs()
            .write_file(&format!("/dir/f{i}"), format!("{i}").as_bytes(), core0)
            .unwrap();
    }
    std::thread::scope(|s| {
        // Readers: every successful read returns the file's own content.
        for t in 0..6 {
            let k = Arc::clone(&k);
            s.spawn(move || {
                for round in 0..300 {
                    let i = (t * 11 + round) % 16;
                    match k.vfs().read_file(&format!("/dir/f{i}"), CoreId(t)) {
                        Ok(data) => assert_eq!(data, format!("{i}").as_bytes()),
                        Err(VfsError::NotFound) => {} // mid-rename
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            });
        }
        // A renamer parks dentry generations continuously.
        let k2 = Arc::clone(&k);
        s.spawn(move || {
            for round in 0..100 {
                let i = round % 16;
                let a = format!("/dir/f{i}");
                let b = format!("/dir/tmp{i}");
                if k2.vfs().rename(&a, &b, CoreId(7)).is_ok() {
                    k2.vfs().rename(&b, &a, CoreId(7)).unwrap();
                }
            }
        });
    });
    // Everything is back in place.
    for i in 0..16 {
        assert_eq!(
            k.vfs().read_file(&format!("/dir/f{i}"), core0).unwrap(),
            format!("{i}").as_bytes()
        );
    }
}

#[test]
fn network_stack_parallel_clients_balance_accounting() {
    use bytes::Bytes;
    use mosbench::net::SockAddr;
    let k = Arc::new(Kernel::new(KernelConfig::pk(4)));
    let socks: Vec<_> = (0..4)
        .map(|c| k.net().udp_bind(9000 + c as u16, CoreId(c)).unwrap())
        .collect();
    std::thread::scope(|s| {
        for t in 0..4 {
            let k = Arc::clone(&k);
            s.spawn(move || {
                for i in 0..200u32 {
                    k.net()
                        .udp_send(
                            CoreId(t),
                            SockAddr::new(100 + i, 5000),
                            SockAddr::new(1, 9000 + ((t as u32 + i) % 4) as u16),
                            Bytes::from_static(b"payload!"),
                        )
                        .expect("800 packets fit the 4096-deep queues");
                }
            });
        }
    });
    // Drain everything.
    let mut received = 0;
    for c in 0..4 {
        k.net().process_rx(CoreId(c), usize::MAX);
    }
    for (c, sock) in socks.iter().enumerate() {
        while let Some(d) = sock.recv() {
            k.net().release(CoreId(c), d.skb);
            received += 1;
        }
    }
    assert_eq!(received, 800);
    assert_eq!(k.net().proto().usage(mosbench::net::Protocol::Udp), 0);
}
