//! End-to-end checks that the harness reproduces every figure's headline
//! claims, and that regeneration is fully deterministic.

use mosbench::workloads::{
    apache, exim, gmake, memcached, metis, pedsort, postgres, summary, KernelChoice,
};

/// The paper's one-sentence summary of Figure 3: "except for gmake, all
/// applications trigger scalability bottlenecks inside a recent Linux
/// kernel" and "most of the applications scale significantly better with
/// our modifications."
#[test]
fn figure3_headline() {
    let bars = summary::figure3(48);
    for b in &bars {
        if b.app == "gmake" {
            assert!(b.stock > 0.6, "gmake scales well even stock: {}", b.stock);
        } else {
            assert!(
                b.stock < 0.5,
                "{} must bottleneck on the stock kernel: {}",
                b.app,
                b.stock
            );
            assert!(
                b.pk > 1.5 * b.stock,
                "{} must improve significantly: {} → {}",
                b.app,
                b.stock,
                b.pk
            );
        }
    }
}

/// §7 "past 48 cores": the Figure-3 claims re-evaluated at 96, 192,
/// and 1024 cores on matching topologies. Stock degrades monotonically
/// with scale for every application; gmake — the one workload that
/// scaled at 48 — collapses by 192 cores (its global page freelist is
/// the generation-2 bottleneck); and at 1024 cores PK's fixes are
/// worth at least an order of magnitude on every workload.
#[test]
fn figure3_claims_past_48_cores() {
    use mosbench::sim::MachineSpec;
    let scales = [
        (8usize, 6usize, 48usize),
        (16, 6, 96),
        (16, 12, 192),
        (64, 16, 1024),
    ];
    let sweeps: Vec<_> = scales
        .iter()
        .map(|&(s, c, cores)| {
            let machine = MachineSpec::with_topology(s, c).expect("valid topology");
            (cores, summary::figure3_on(cores, machine))
        })
        .collect();
    // At the paper machine the topology-parameterized path must agree
    // with the hardwired Figure-3 pairings bar for bar.
    for (a, b) in summary::figure3(48).iter().zip(sweeps[0].1.iter()) {
        assert_eq!(a.app, b.app);
        assert_eq!(a.stock, b.stock, "{}: stock pairing drifted", a.app);
        assert_eq!(a.pk, b.pk, "{}: pk pairing drifted", a.app);
    }
    for (i, (cores, bars)) in sweeps.iter().enumerate() {
        for (j, b) in bars.iter().enumerate() {
            // PK never loses to stock, at any scale.
            assert!(
                b.pk >= b.stock,
                "{} at {cores}: pk {} < stock {}",
                b.app,
                b.pk,
                b.stock
            );
            // Stock scalability only degrades as the machine grows.
            if i > 0 {
                let prev = &sweeps[i - 1].1[j];
                assert!(
                    b.stock <= prev.stock,
                    "{} stock improved from {} to {cores} cores",
                    b.app,
                    sweeps[i - 1].0
                );
            }
            // Past 48 cores every app but gmake is collapsed on stock;
            // gmake holds out until its page freelist saturates at 192.
            if *cores >= 96 && b.app != "gmake" {
                assert!(b.stock < 0.2, "{} at {cores}: stock {}", b.app, b.stock);
            }
            if *cores >= 192 {
                assert!(b.stock < 0.1, "{} at {cores}: stock {}", b.app, b.stock);
            }
            // At the largest scale the generation-2 fixes are worth at
            // least an order of magnitude everywhere.
            if *cores == 1024 {
                assert!(
                    b.pk > 10.0 * b.stock,
                    "{} at {cores}: pk {} vs stock {}",
                    b.app,
                    b.pk,
                    b.stock
                );
                assert!(b.pk > 0.01, "{} at {cores}: pk ratio {}", b.app, b.pk);
            }
        }
    }
    // The gmake exception is generation-bound: it scales at 48 and 96,
    // and is collapsed by 192.
    let gmake = |i: usize| sweeps[i].1.iter().find(|b| b.app == "gmake").unwrap().stock;
    assert!(gmake(0) > 0.6, "gmake scales at 48: {}", gmake(0));
    assert!(gmake(1) > 0.5, "gmake still scales at 96: {}", gmake(1));
    assert!(gmake(2) < 0.05, "gmake collapses by 192: {}", gmake(2));
}

/// Abstract of the paper: per-core stock throughput at 48 cores is
/// "much less work per core with 48 cores than with one core."
#[test]
fn stock_kernels_do_less_work_per_core() {
    for (name, sweep) in [
        ("exim", exim::figure4(KernelChoice::Stock)),
        ("memcached", memcached::figure5(KernelChoice::Stock)),
        ("apache", apache::figure6(KernelChoice::Stock)),
        (
            "postgres",
            postgres::figure(postgres::PgVariant::Stock, true),
        ),
    ] {
        let r = sweep.last().unwrap().per_core_per_sec / sweep[0].per_core_per_sec;
        assert!(r < 0.5, "{name}: stock ratio {r}");
    }
}

/// Figure-by-figure crossover claims.
#[test]
fn crossover_positions() {
    // Exim stock collapses in the teens of cores.
    let exim_stock = exim::figure4(KernelChoice::Stock);
    let peak = exim_stock
        .iter()
        .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
        .unwrap();
    assert!(
        (8..=24).contains(&peak.cores),
        "exim stock total peaks mid-teens: {}",
        peak.cores
    );
    // memcached PK's per-core knee is at/before 16 cores (the card).
    let mc_pk = memcached::figure5(KernelChoice::Pk);
    let knee = mc_pk
        .iter()
        .max_by(|a, b| a.per_core_per_sec.total_cmp(&b.per_core_per_sec))
        .unwrap();
    assert!(knee.cores <= 16);
    // Apache PK total throughput peaks near 36 (RX FIFO overflow).
    let ap_pk = apache::figure6(KernelChoice::Pk);
    let ap_peak = ap_pk
        .iter()
        .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
        .unwrap();
    assert!((32..=40).contains(&ap_peak.cores));
    // PostgreSQL stock+modPG collapses in the mid-30s (lseek).
    let pg = postgres::figure(postgres::PgVariant::StockModPg, true);
    let pg_peak = pg
        .iter()
        .max_by(|a, b| a.total_per_sec.total_cmp(&b.total_per_sec))
        .unwrap();
    assert!((24..=44).contains(&pg_peak.cores));
    // gmake speedup ≈35× on both kernels.
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        let g = gmake::figure9(choice);
        let speedup = g.last().unwrap().total_per_sec / g[0].total_per_sec;
        assert!((32.0..38.0).contains(&speedup));
    }
    // pedsort: procs beat threads everywhere, including one core.
    let th = pedsort::figure10(pedsort::PedsortVariant::Threads);
    let pr = pedsort::figure10(pedsort::PedsortVariant::Procs);
    for (a, b) in th.iter().zip(pr.iter()) {
        assert!(
            b.per_core_per_sec > a.per_core_per_sec,
            "at {} cores",
            a.cores
        );
    }
    // Metis 2 MB beats 4 KB everywhere and hits DRAM at 48.
    let small = metis::figure11(metis::MetisVariant::StockSmallPages);
    let big = metis::figure11(metis::MetisVariant::PkSuperPages);
    for (a, b) in small.iter().zip(big.iter()) {
        assert!(
            b.per_core_per_sec > a.per_core_per_sec,
            "at {} cores",
            a.cores
        );
    }
    assert!(big.last().unwrap().hw_capped);
}

/// Figure 12: with PK, "none are limited by Linux-induced bottlenecks."
#[test]
fn figure12_no_kernel_bottlenecks_remain() {
    for row in summary::figure12() {
        let o = &row.observed;
        for kernel_lock in ["vfsmount", "lseek", "d_lock", "open-file", "region-list"] {
            assert!(
                !o.contains(kernel_lock),
                "{}: kernel bottleneck '{kernel_lock}' survived PK: {o}",
                row.app
            );
        }
    }
}

/// Leave-one-out: removing an application's dominant fix from PK
/// collapses it again (§5.2: Exim's gains come "primarily [from]
/// improvements to the vfsmount table").
#[test]
fn dominant_fix_is_load_bearing() {
    use mosbench::kernel::{FixId, KernelConfig};
    use mosbench::sim::{CoreSweep, WorkloadModel};
    let ratio = |m: &dyn WorkloadModel| CoreSweep::figure3_ratio(m, 48);
    let pk = ratio(&exim::EximModel::new(KernelChoice::Pk));
    let without_vfsmount = ratio(&exim::EximModel::with_config(
        KernelConfig::pk(48).with_fix(FixId::PerCoreMountCache, false),
    ));
    assert!(without_vfsmount < 0.2 * pk, "{without_vfsmount} vs {pk}");
    // And enabling it alone nearly recovers PK's ratio.
    let only_vfsmount = ratio(&exim::EximModel::with_config(
        KernelConfig::stock(48).with_fix(FixId::PerCoreMountCache, true),
    ));
    assert!(only_vfsmount > 0.9 * pk, "{only_vfsmount} vs {pk}");
}

/// The whole evaluation is deterministic: two runs are identical.
#[test]
fn regeneration_is_deterministic() {
    let a = summary::figure3(48);
    let b = summary::figure3(48);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.app, y.app);
        assert!((x.stock - y.stock).abs() == 0.0);
        assert!((x.pk - y.pk).abs() == 0.0);
    }
    let s1 = exim::figure4(KernelChoice::Pk);
    let s2 = exim::figure4(KernelChoice::Pk);
    for (p, q) in s1.iter().zip(s2.iter()) {
        assert_eq!(p.per_core_per_sec, q.per_core_per_sec);
        assert_eq!(p.system_usec, q.system_usec);
    }
}

/// Sanity: at one core, every model's user+system time equals the
/// inverse of its throughput (no hidden cycles).
#[test]
fn one_core_time_accounting_balances() {
    use mosbench::sim::{CoreSweep, MachineSpec, WorkloadModel};
    let machine = MachineSpec::paper();
    let models: Vec<Box<dyn WorkloadModel>> = vec![
        Box::new(exim::EximModel::new(KernelChoice::Pk)),
        Box::new(memcached::MemcachedModel::new(KernelChoice::Pk)),
        Box::new(apache::ApacheModel::new(KernelChoice::Pk)),
        Box::new(gmake::GmakeModel::new(KernelChoice::Pk)),
    ];
    for m in models {
        let p = CoreSweep::point(m.as_ref(), 1);
        let time_per_op_sec = (p.user_usec + p.system_usec) * 1e-6;
        let throughput_time = 1.0 / p.per_core_per_sec;
        let err = (time_per_op_sec - throughput_time).abs() / throughput_time;
        assert!(
            err < 1e-9,
            "{}: {} vs {}",
            m.name(),
            time_per_op_sec,
            throughput_time
        );
        let _ = machine;
    }
}
