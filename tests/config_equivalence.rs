//! Property tests across crates: random operation sequences behave
//! identically under every kernel configuration — the fixes are
//! performance-only, never semantic.

use mosbench::kernel::{Kernel, KernelConfig};
use mosbench::percpu::CoreId;
use mosbench::vfs::{VfsError, Whence};
use proptest::prelude::*;

/// A random VFS operation.
#[derive(Debug, Clone)]
enum Op {
    Create { slot: u8, core: u8 },
    Write { slot: u8, core: u8, byte: u8 },
    Read { slot: u8, core: u8 },
    SeekEnd { slot: u8, core: u8 },
    Unlink { slot: u8, core: u8 },
    Rename { from: u8, to: u8, core: u8 },
    Stat { slot: u8, core: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Create { slot, core }),
        (0..8u8, 0..4u8, any::<u8>()).prop_map(|(slot, core, byte)| Op::Write { slot, core, byte }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Read { slot, core }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::SeekEnd { slot, core }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Unlink { slot, core }),
        (0..8u8, 0..8u8, 0..4u8).prop_map(|(from, to, core)| Op::Rename { from, to, core }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Stat { slot, core }),
    ]
}

/// Applies `ops` to a fresh kernel and returns a trace of observable
/// results (errors included).
fn run_trace(cfg: KernelConfig, ops: &[Op]) -> Vec<String> {
    let k = Kernel::new(cfg);
    let root = CoreId(0);
    k.vfs().mkdir_p("/w", root).unwrap();
    let path = |slot: u8| format!("/w/file{slot}");
    let mut trace = Vec::with_capacity(ops.len());
    for op in ops {
        let entry = match *op {
            Op::Create { slot, core } => match k.vfs().create(&path(slot), CoreId(core as usize)) {
                Ok(f) => {
                    k.vfs().close(&f, CoreId(core as usize));
                    format!("create {slot} ok")
                }
                Err(e) => format!("create {slot} {e}"),
            },
            Op::Write { slot, core, byte } => {
                match k.vfs().open(&path(slot), CoreId(core as usize)) {
                    Ok(f) => {
                        f.append(&[byte]).unwrap();
                        k.vfs().close(&f, CoreId(core as usize));
                        format!("write {slot} ok")
                    }
                    Err(e) => format!("write {slot} {e}"),
                }
            }
            Op::Read { slot, core } => {
                match k.vfs().read_file(&path(slot), CoreId(core as usize)) {
                    Ok(data) => format!("read {slot} {data:?}"),
                    Err(e) => format!("read {slot} {e}"),
                }
            }
            Op::SeekEnd { slot, core } => match k.vfs().open(&path(slot), CoreId(core as usize)) {
                Ok(f) => {
                    let pos = f.lseek(0, Whence::End).unwrap();
                    k.vfs().close(&f, CoreId(core as usize));
                    format!("seek {slot} {pos}")
                }
                Err(e) => format!("seek {slot} {e}"),
            },
            Op::Unlink { slot, core } => match k.vfs().unlink(&path(slot), CoreId(core as usize)) {
                Ok(()) => format!("unlink {slot} ok"),
                Err(e) => format!("unlink {slot} {e}"),
            },
            Op::Rename { from, to, core } => {
                match k
                    .vfs()
                    .rename(&path(from), &path(to), CoreId(core as usize))
                {
                    Ok(()) => format!("rename {from}->{to} ok"),
                    Err(e) => format!("rename {from}->{to} {e}"),
                }
            }
            Op::Stat { slot, core } => match k.vfs().stat(&path(slot), CoreId(core as usize)) {
                Ok(st) => format!("stat {slot} size={}", st.size),
                Err(e) => format!("stat {slot} {e}"),
            },
        };
        trace.push(entry);
    }
    // Final invariant: no open files leaked by the trace runner.
    assert_eq!(k.vfs().superblock().open_files(), 0);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stock, PK, and two half-way configurations produce identical
    /// observable traces for any operation sequence.
    #[test]
    fn all_configs_trace_identically(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let reference = run_trace(KernelConfig::stock(4), &ops);
        let pk = run_trace(KernelConfig::pk(4), &ops);
        prop_assert_eq!(&reference, &pk);
        let half_a = KernelConfig::stock(4)
            .with_fix(mosbench::kernel::FixId::SloppyDentryRefs, true)
            .with_fix(mosbench::kernel::FixId::LockFreeDlookup, true)
            .with_fix(mosbench::kernel::FixId::AtomicLseek, true);
        prop_assert_eq!(&reference, &run_trace(half_a, &ops));
        let half_b = KernelConfig::pk(4)
            .with_fix(mosbench::kernel::FixId::PerCoreMountCache, false)
            .with_fix(mosbench::kernel::FixId::PerCoreOpenLists, false);
        prop_assert_eq!(&reference, &run_trace(half_b, &ops));
    }

    /// Unlinking everything always restores an empty namespace.
    #[test]
    fn namespace_returns_to_empty(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let k = Kernel::new(KernelConfig::pk(4));
        let core = CoreId(0);
        k.vfs().mkdir_p("/w", core).unwrap();
        run_ops_loosely(&k, &ops);
        // Sweep: unlink whatever exists.
        for slot in 0..8u8 {
            let _ = k.vfs().unlink(&format!("/w/file{slot}"), core);
        }
        for slot in 0..8u8 {
            prop_assert_eq!(
                k.vfs().stat(&format!("/w/file{slot}"), core).unwrap_err(),
                VfsError::NotFound
            );
        }
        prop_assert_eq!(k.vfs().tmpfs().inode_count(), 2); // root + /w
    }
}

/// An operation for the reclamation-discipline differential oracle:
/// dcache, mount-table, and socket-table traffic — the paths whose
/// write sides retire objects through RCU.
#[derive(Debug, Clone)]
enum XOp {
    Create { slot: u8, core: u8 },
    Unlink { slot: u8, core: u8 },
    Read { slot: u8, core: u8 },
    Mount { idx: u8 },
    Umount { idx: u8 },
    Resolve { idx: u8, core: u8 },
    UdpBind { port: u8, core: u8 },
    Listen { port: u8 },
}

fn xop_strategy() -> impl Strategy<Value = XOp> {
    prop_oneof![
        (0..6u8, 0..4u8).prop_map(|(slot, core)| XOp::Create { slot, core }),
        (0..6u8, 0..4u8).prop_map(|(slot, core)| XOp::Unlink { slot, core }),
        (0..6u8, 0..4u8).prop_map(|(slot, core)| XOp::Read { slot, core }),
        (0..4u8).prop_map(|idx| XOp::Mount { idx }),
        (0..4u8).prop_map(|idx| XOp::Umount { idx }),
        (0..4u8, 0..4u8).prop_map(|(idx, core)| XOp::Resolve { idx, core }),
        (0..6u8, 0..4u8).prop_map(|(port, core)| XOp::UdpBind { port, core }),
        (0..6u8).prop_map(|port| XOp::Listen { port }),
    ]
}

/// Applies `ops` to a fresh kernel under `cfg` and returns the
/// observable-result trace.
fn run_xtrace(cfg: KernelConfig, ops: &[XOp]) -> Vec<String> {
    let k = Kernel::new(cfg);
    let root = CoreId(0);
    k.vfs().mkdir_p("/w", root).unwrap();
    let path = |slot: u8| format!("/w/file{slot}");
    let mnt = |idx: u8| format!("/mnt{idx}");
    let mut trace = Vec::with_capacity(ops.len());
    for op in ops {
        let entry = match *op {
            XOp::Create { slot, core } => {
                match k.vfs().create(&path(slot), CoreId(core as usize)) {
                    Ok(f) => {
                        k.vfs().close(&f, CoreId(core as usize));
                        format!("create {slot} ok")
                    }
                    Err(e) => format!("create {slot} {e}"),
                }
            }
            XOp::Unlink { slot, core } => {
                match k.vfs().unlink(&path(slot), CoreId(core as usize)) {
                    Ok(()) => format!("unlink {slot} ok"),
                    Err(e) => format!("unlink {slot} {e}"),
                }
            }
            XOp::Read { slot, core } => {
                match k.vfs().read_file(&path(slot), CoreId(core as usize)) {
                    Ok(data) => format!("read {slot} {}b", data.len()),
                    Err(e) => format!("read {slot} {e}"),
                }
            }
            XOp::Mount { idx } => {
                let m = k.vfs().mounts().mount(&mnt(idx));
                format!("mount {idx} {}", m.mount_point)
            }
            XOp::Umount { idx } => match k.vfs().mounts().umount(&mnt(idx)) {
                Some(m) => format!("umount {idx} {}", m.mount_point),
                None => format!("umount {idx} none"),
            },
            XOp::Resolve { idx, core } => {
                let p = format!("{}/x", mnt(idx));
                match k.vfs().mounts().resolve(&p, CoreId(core as usize)) {
                    Some(m) => {
                        let entry = format!("resolve {idx} {}", m.mount_point);
                        m.put(CoreId(core as usize));
                        entry
                    }
                    None => format!("resolve {idx} none"),
                }
            }
            XOp::UdpBind { port, core } => {
                match k
                    .net()
                    .udp_bind(2000 + u16::from(port), CoreId(core as usize))
                {
                    Some(_) => format!("bind {port} ok"),
                    None => format!("bind {port} taken"),
                }
            }
            XOp::Listen { port } => {
                k.net().listen(2000 + u16::from(port));
                let owner = k.net().owner_of(2000 + u16::from(port));
                format!("listen {port} owner={owner:?}")
            }
        };
        trace.push(entry);
    }
    assert_eq!(k.vfs().superblock().open_files(), 0);
    trace
}

/// The four discipline × kernel corners the oracle compares.
fn discipline_corners() -> [KernelConfig; 4] {
    [
        KernelConfig::stock(4).with_deferred_reclamation(false),
        KernelConfig::stock(4).with_deferred_reclamation(true),
        KernelConfig::pk(4).with_deferred_reclamation(false),
        KernelConfig::pk(4).with_deferred_reclamation(true),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differential oracle: blocking `synchronize()` and deferred
    /// `call_rcu` reclamation produce identical observable results for
    /// any dcache/mount/socket sequence, under stock and PK alike —
    /// the discipline changes *when* memory is freed, never what a
    /// caller sees.
    #[test]
    fn reclamation_discipline_is_unobservable(
        ops in proptest::collection::vec(xop_strategy(), 1..50),
    ) {
        let reference = run_xtrace(discipline_corners()[0], &ops);
        for cfg in &discipline_corners()[1..] {
            prop_assert_eq!(&reference, &run_xtrace(*cfg, &ops));
        }
    }
}

/// Pinned-seed replay: the same script renders byte-identical traces
/// across every discipline corner and across repeated runs.
#[test]
fn pinned_seed_traces_are_byte_identical() {
    // Deterministic script from a fixed LCG seed: no proptest state.
    let mut state: u64 = 0x5eed_cafe;
    let mut next = |bound: u8| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % u64::from(bound)) as u8
    };
    let mut ops = Vec::new();
    for _ in 0..120 {
        ops.push(match next(8) {
            0 => XOp::Create {
                slot: next(6),
                core: next(4),
            },
            1 => XOp::Unlink {
                slot: next(6),
                core: next(4),
            },
            2 => XOp::Read {
                slot: next(6),
                core: next(4),
            },
            3 => XOp::Mount { idx: next(4) },
            4 => XOp::Umount { idx: next(4) },
            5 => XOp::Resolve {
                idx: next(4),
                core: next(4),
            },
            6 => XOp::UdpBind {
                port: next(6),
                core: next(4),
            },
            _ => XOp::Listen { port: next(6) },
        });
    }
    let reference = run_xtrace(discipline_corners()[0], &ops).join("\n");
    assert!(!reference.is_empty());
    for cfg in discipline_corners() {
        for _ in 0..2 {
            assert_eq!(
                reference.as_bytes(),
                run_xtrace(cfg, &ops).join("\n").as_bytes(),
                "trace diverged under {cfg:?}"
            );
        }
    }
}

/// Applies ops ignoring results (helper for the sweep property).
fn run_ops_loosely(k: &Kernel, ops: &[Op]) {
    let path = |slot: u8| format!("/w/file{slot}");
    for op in ops {
        match *op {
            Op::Create { slot, core } => {
                if let Ok(f) = k.vfs().create(&path(slot), CoreId(core as usize)) {
                    k.vfs().close(&f, CoreId(core as usize));
                }
            }
            Op::Write { slot, core, byte } => {
                if let Ok(f) = k.vfs().open(&path(slot), CoreId(core as usize)) {
                    let _ = f.append(&[byte]);
                    k.vfs().close(&f, CoreId(core as usize));
                }
            }
            Op::Rename { from, to, core } => {
                let _ = k
                    .vfs()
                    .rename(&path(from), &path(to), CoreId(core as usize));
            }
            Op::Unlink { slot, core } => {
                let _ = k.vfs().unlink(&path(slot), CoreId(core as usize));
            }
            _ => {}
        }
    }
}
