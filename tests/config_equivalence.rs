//! Property tests across crates: random operation sequences behave
//! identically under every kernel configuration — the fixes are
//! performance-only, never semantic.

use mosbench::kernel::{Kernel, KernelConfig};
use mosbench::percpu::CoreId;
use mosbench::vfs::{VfsError, Whence};
use proptest::prelude::*;

/// A random VFS operation.
#[derive(Debug, Clone)]
enum Op {
    Create { slot: u8, core: u8 },
    Write { slot: u8, core: u8, byte: u8 },
    Read { slot: u8, core: u8 },
    SeekEnd { slot: u8, core: u8 },
    Unlink { slot: u8, core: u8 },
    Rename { from: u8, to: u8, core: u8 },
    Stat { slot: u8, core: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Create { slot, core }),
        (0..8u8, 0..4u8, any::<u8>()).prop_map(|(slot, core, byte)| Op::Write { slot, core, byte }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Read { slot, core }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::SeekEnd { slot, core }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Unlink { slot, core }),
        (0..8u8, 0..8u8, 0..4u8).prop_map(|(from, to, core)| Op::Rename { from, to, core }),
        (0..8u8, 0..4u8).prop_map(|(slot, core)| Op::Stat { slot, core }),
    ]
}

/// Applies `ops` to a fresh kernel and returns a trace of observable
/// results (errors included).
fn run_trace(cfg: KernelConfig, ops: &[Op]) -> Vec<String> {
    let k = Kernel::new(cfg);
    let root = CoreId(0);
    k.vfs().mkdir_p("/w", root).unwrap();
    let path = |slot: u8| format!("/w/file{slot}");
    let mut trace = Vec::with_capacity(ops.len());
    for op in ops {
        let entry = match *op {
            Op::Create { slot, core } => match k.vfs().create(&path(slot), CoreId(core as usize)) {
                Ok(f) => {
                    k.vfs().close(&f, CoreId(core as usize));
                    format!("create {slot} ok")
                }
                Err(e) => format!("create {slot} {e}"),
            },
            Op::Write { slot, core, byte } => {
                match k.vfs().open(&path(slot), CoreId(core as usize)) {
                    Ok(f) => {
                        f.append(&[byte]).unwrap();
                        k.vfs().close(&f, CoreId(core as usize));
                        format!("write {slot} ok")
                    }
                    Err(e) => format!("write {slot} {e}"),
                }
            }
            Op::Read { slot, core } => {
                match k.vfs().read_file(&path(slot), CoreId(core as usize)) {
                    Ok(data) => format!("read {slot} {data:?}"),
                    Err(e) => format!("read {slot} {e}"),
                }
            }
            Op::SeekEnd { slot, core } => match k.vfs().open(&path(slot), CoreId(core as usize)) {
                Ok(f) => {
                    let pos = f.lseek(0, Whence::End).unwrap();
                    k.vfs().close(&f, CoreId(core as usize));
                    format!("seek {slot} {pos}")
                }
                Err(e) => format!("seek {slot} {e}"),
            },
            Op::Unlink { slot, core } => match k.vfs().unlink(&path(slot), CoreId(core as usize)) {
                Ok(()) => format!("unlink {slot} ok"),
                Err(e) => format!("unlink {slot} {e}"),
            },
            Op::Rename { from, to, core } => {
                match k
                    .vfs()
                    .rename(&path(from), &path(to), CoreId(core as usize))
                {
                    Ok(()) => format!("rename {from}->{to} ok"),
                    Err(e) => format!("rename {from}->{to} {e}"),
                }
            }
            Op::Stat { slot, core } => match k.vfs().stat(&path(slot), CoreId(core as usize)) {
                Ok(st) => format!("stat {slot} size={}", st.size),
                Err(e) => format!("stat {slot} {e}"),
            },
        };
        trace.push(entry);
    }
    // Final invariant: no open files leaked by the trace runner.
    assert_eq!(k.vfs().superblock().open_files(), 0);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stock, PK, and two half-way configurations produce identical
    /// observable traces for any operation sequence.
    #[test]
    fn all_configs_trace_identically(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let reference = run_trace(KernelConfig::stock(4), &ops);
        let pk = run_trace(KernelConfig::pk(4), &ops);
        prop_assert_eq!(&reference, &pk);
        let half_a = KernelConfig::stock(4)
            .with_fix(mosbench::kernel::FixId::SloppyDentryRefs, true)
            .with_fix(mosbench::kernel::FixId::LockFreeDlookup, true)
            .with_fix(mosbench::kernel::FixId::AtomicLseek, true);
        prop_assert_eq!(&reference, &run_trace(half_a, &ops));
        let half_b = KernelConfig::pk(4)
            .with_fix(mosbench::kernel::FixId::PerCoreMountCache, false)
            .with_fix(mosbench::kernel::FixId::PerCoreOpenLists, false);
        prop_assert_eq!(&reference, &run_trace(half_b, &ops));
    }

    /// Unlinking everything always restores an empty namespace.
    #[test]
    fn namespace_returns_to_empty(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let k = Kernel::new(KernelConfig::pk(4));
        let core = CoreId(0);
        k.vfs().mkdir_p("/w", core).unwrap();
        run_ops_loosely(&k, &ops);
        // Sweep: unlink whatever exists.
        for slot in 0..8u8 {
            let _ = k.vfs().unlink(&format!("/w/file{slot}"), core);
        }
        for slot in 0..8u8 {
            prop_assert_eq!(
                k.vfs().stat(&format!("/w/file{slot}"), core).unwrap_err(),
                VfsError::NotFound
            );
        }
        prop_assert_eq!(k.vfs().tmpfs().inode_count(), 2); // root + /w
    }
}

/// Applies ops ignoring results (helper for the sweep property).
fn run_ops_loosely(k: &Kernel, ops: &[Op]) {
    let path = |slot: u8| format!("/w/file{slot}");
    for op in ops {
        match *op {
            Op::Create { slot, core } => {
                if let Ok(f) = k.vfs().create(&path(slot), CoreId(core as usize)) {
                    k.vfs().close(&f, CoreId(core as usize));
                }
            }
            Op::Write { slot, core, byte } => {
                if let Ok(f) = k.vfs().open(&path(slot), CoreId(core as usize)) {
                    let _ = f.append(&[byte]);
                    k.vfs().close(&f, CoreId(core as usize));
                }
            }
            Op::Rename { from, to, core } => {
                let _ = k
                    .vfs()
                    .rename(&path(from), &path(to), CoreId(core as usize));
            }
            Op::Unlink { slot, core } => {
                let _ = k.vfs().unlink(&path(slot), CoreId(core as usize));
            }
            _ => {}
        }
    }
}
