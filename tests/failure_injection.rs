//! Failure injection: drive the error paths end-to-end and verify the
//! system degrades predictably instead of corrupting state.

use mosbench::kernel::{Kernel, KernelConfig};
use mosbench::mm::{AddressSpace, FaultError, MmConfig, MmStats, NumaAllocator, PageSize};
use mosbench::percpu::CoreId;
use mosbench::vfs::VfsError;
use std::sync::Arc;

/// Physical memory exhaustion mid-workload: faults report OOM, the
/// allocator stays consistent, and freeing memory unblocks progress.
#[test]
fn oom_during_fault_storm() {
    let stats = Arc::new(MmStats::new());
    let mut cfg = MmConfig::pk(4);
    cfg.numa_nodes = 2;
    cfg.pages_per_node = 8; // tiny machine: 16 pages total
    let alloc = Arc::new(NumaAllocator::new(cfg, Arc::clone(&stats)));
    let asp = AddressSpace::new(cfg, Arc::clone(&alloc), stats);
    let region = asp.mmap(32 * 4096, PageSize::Base4K).unwrap();
    let mut populated = 0;
    let mut oom_at = None;
    for p in 0..32 {
        match asp.page_fault(region, p, 0) {
            Ok(true) => populated += 1,
            Ok(false) => unreachable!("no racing faults here"),
            Err(FaultError::Oom(_)) => {
                oom_at = Some(p);
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(populated, 16, "exactly the physical capacity");
    assert_eq!(oom_at, Some(16));
    // Freeing the region returns every page.
    asp.munmap(region, 0).unwrap();
    assert_eq!(alloc.free_pages(0) + alloc.free_pages(1), 16);
    // And a fresh mapping faults fine again.
    let r2 = asp.mmap(4096, PageSize::Base4K).unwrap();
    assert!(asp.page_fault(r2, 0, 1).unwrap());
}

/// Remounting read-only mid-delivery: in-flight writes fail cleanly with
/// `EROFS`, reads keep working, and going read-write resumes service.
#[test]
fn read_only_remount_mid_workload() {
    let k = Kernel::new(KernelConfig::pk(4));
    let core = CoreId(0);
    k.vfs().mkdir_p("/spool", core).unwrap();
    k.vfs().write_file("/spool/m1", b"queued", core).unwrap();
    k.vfs().superblock().remount_read_only().unwrap();
    assert_eq!(
        k.vfs().write_file("/spool/m2", b"x", core).unwrap_err(),
        VfsError::ReadOnly
    );
    assert_eq!(
        k.vfs().unlink("/spool/m1", core).unwrap_err(),
        VfsError::ReadOnly
    );
    // Reads still work; nothing was corrupted.
    assert_eq!(k.vfs().read_file("/spool/m1", core).unwrap(), b"queued");
    k.vfs().superblock().remount_read_write();
    k.vfs().write_file("/spool/m2", b"x", core).unwrap();
    k.vfs().unlink("/spool/m1", core).unwrap();
}

/// NIC receive-queue overflow: packets drop (counted), accounting stays
/// balanced, and the stack keeps serving after the burst.
#[test]
fn rx_overflow_burst_then_recovery() {
    use bytes::Bytes;
    use mosbench::net::SockAddr;
    let k = Kernel::new(KernelConfig::pk(2));
    let sock = k.net().udp_bind(9999, CoreId(0)).unwrap();
    let mut accepted = 0u64;
    let mut dropped = 0u64;
    for i in 0..6_000u32 {
        match k.net().udp_send(
            CoreId(1),
            SockAddr::new(i, 1),
            SockAddr::new(1, 9999),
            Bytes::from_static(b"burst"),
        ) {
            Ok(()) => accepted += 1,
            Err(mosbench::net::NetError::Backpressure) => dropped += 1,
            Err(e) => panic!("unexpected drop reason: {e}"),
        }
    }
    assert!(dropped > 0, "burst must overflow the 4096-deep queue");
    assert_eq!(accepted + dropped, 6_000);
    // Drain: every accepted packet is deliverable. Refused sends release
    // their buffer and protocol charge at the refusal, so after the
    // drain the accounting balances to zero.
    k.net().process_rx(CoreId(0), usize::MAX);
    let mut got = 0u64;
    while let Some(d) = sock.recv() {
        k.net().release(CoreId(0), d.skb);
        got += 1;
    }
    assert_eq!(got, accepted);
    assert_eq!(
        k.net().proto().usage(mosbench::net::Protocol::Udp),
        0,
        "dropped packets must not leak protocol charges"
    );
    // Service continues normally after the burst.
    k.net()
        .udp_send(
            CoreId(1),
            SockAddr::new(7, 7),
            SockAddr::new(1, 9999),
            Bytes::from_static(b"after"),
        )
        .unwrap();
    k.net().process_rx(CoreId(0), usize::MAX);
    assert!(sock.recv().is_some());
}

/// Process-table misuse: forking from a dead parent, double exits, and
/// reaping strangers all fail without damaging the table.
#[test]
fn process_lifecycle_misuse() {
    use mosbench::proc::{Pid, ProcError};
    let k = Kernel::new(KernelConfig::pk(2));
    let child = k.fork(Pid(1), CoreId(0)).unwrap();
    k.exit(child, CoreId(0)).unwrap();
    // The child is gone: further operations on it fail.
    let err = k.fork(child, CoreId(0)).unwrap_err();
    assert_eq!(
        err,
        mosbench::kernel::KernelError::Proc(ProcError::NoSuchProcess)
    );
    assert!(!err.is_transient(), "a dead parent is not worth retrying");
    assert_eq!(
        k.exit(child, CoreId(0)).unwrap_err(),
        mosbench::kernel::KernelError::Proc(ProcError::NoSuchProcess)
    );
    assert_eq!(k.procs().exec(child).unwrap_err(), ProcError::NoSuchProcess);
    assert_eq!(k.procs().len(), 1);
    // The table still works.
    let again = k.fork(Pid(1), CoreId(1)).unwrap();
    k.exit(again, CoreId(1)).unwrap();
}

/// Dentry teardown vs lookup race, forced serially: a dealloc'd dentry
/// can never be revived by the lock-free path.
#[test]
fn dead_dentry_is_not_revived() {
    use mosbench::vfs::{Dcache, DentryKey, InodeId, VfsConfig, VfsStats};
    let cfg = VfsConfig::pk(4);
    let cache = Dcache::new(16, cfg, Arc::new(VfsStats::new()));
    let key = DentryKey::new(InodeId(1), "victim");
    let d = cache.insert(key.clone(), InodeId(2), CoreId(0)).unwrap();
    d.put(CoreId(0)); // drop caller ref; cache-only
    assert_eq!(cache.shrink(1, CoreId(0)), 1);
    // The evicted object is dead and unhashed: both protocols report a
    // definitive miss.
    assert_eq!(d.compare_lockfree(&key, CoreId(1)), Some(false));
    assert!(!d.compare_locked(&key, CoreId(1)));
    assert!(cache.lookup(&key, CoreId(1)).is_none());
}

/// Sloppy counter misuse: deallocating twice, getting after death, and
/// the invariant surviving an error storm.
#[test]
fn sloppy_refcount_error_paths() {
    use mosbench::sloppy::{DeallocError, SloppyRefCount};
    let rc = SloppyRefCount::new(4);
    rc.put(CoreId(0));
    rc.try_dealloc().unwrap();
    assert_eq!(rc.try_dealloc().unwrap_err(), DeallocError::AlreadyDead);
    for core in 0..4 {
        assert_eq!(rc.get(CoreId(core)).unwrap_err(), DeallocError::AlreadyDead);
    }
    assert_eq!(rc.references(), 0, "failed gets never leak references");
}

/// mmap misuse: zero-length mappings, double unmap, faults past the end.
#[test]
fn mmap_misuse() {
    use mosbench::mm::{MmapError, RegionId};
    let k = Kernel::new(KernelConfig::pk(2));
    let asp = k.new_address_space();
    assert_eq!(
        asp.mmap(0, PageSize::Base4K).unwrap_err(),
        MmapError::EmptyMapping
    );
    let r = asp.mmap(4096, PageSize::Base4K).unwrap();
    assert_eq!(asp.page_fault(r, 5, 0).unwrap_err(), FaultError::Segfault);
    asp.munmap(r, 0).unwrap();
    assert_eq!(asp.munmap(r, 0).unwrap_err(), MmapError::NoSuchRegion);
    assert_eq!(
        asp.page_fault(r, 0, 0).unwrap_err(),
        FaultError::Segfault,
        "faulting an unmapped region is a segfault"
    );
    assert_eq!(
        asp.munmap(RegionId(424242), 0).unwrap_err(),
        MmapError::NoSuchRegion
    );
}
